"""The VERIFIER driver: Algorithm 1 of the paper.

Iterative domain splitting around the delta-complete solver, driven by an
explicit work queue (no Python recursion):

* UNSAT on a box            -> the condition is *verified* there;
* delta-SAT, model checks   -> a *counterexample* (still split, to isolate
  out exactly                  the violating subregions);
* delta-SAT, spurious model -> *inconclusive* (split);
* budget exhausted          -> *timeout* (split);
* box below threshold t     -> stop (line 1-2 of Algorithm 1); the parent
                               verdict stands for that area.

The per-call budget plays the role of the paper's two-hour dReal limit; an
optional *global* budget models the finite total compute of an evaluation
campaign -- once it is exhausted, every remaining box is recorded as a
timeout without solving, which is precisely what the all-``?`` SCAN column
of Table I looks like.

Queue entries carry the box, its depth and its width, so the processing
order is a config knob: the default ``"dfs"`` order replays the recursive
traversal of Algorithm 1 exactly (bit-identical region trees, budget
consumption and indices -- ``tests/verifier/test_workqueue.py`` pins
this), while ``"widest"`` is a priority order that spends the global
budget on the widest unknown boxes first.  Results stream out through an
optional per-record callback, which is how the campaign store checkpoints
progress.
"""

from __future__ import annotations

import heapq
import math
import time
from dataclasses import dataclass
from typing import Callable

from ..expr.evaluator import evaluate
from ..solver.box import Box
from ..solver.icp import Budget, ICPSolver, SolverStats, SolverStatus
from .encoder import CompiledProblem, EncodedProblem
from .regions import Outcome, RegionRecord, VerificationReport


@dataclass(frozen=True)
class VerifierConfig:
    """Tuning knobs for Algorithm 1.

    ``split_threshold`` is the paper's t = 0.05 (boxes narrower than this
    are not split further).  ``per_call_budget`` bounds each solver call;
    ``global_step_budget`` bounds the whole verification run (None for
    unlimited).  ``split_on_counterexample`` reproduces the paper's choice
    of splitting even after a valid counterexample, to isolate violating
    subregions; disabling it is an ablation.
    """

    split_threshold: float = 0.05
    per_call_budget: int = 400
    per_call_seconds: float | None = None
    global_step_budget: int | None = 200_000
    delta: float = 1e-5
    precision: float = 1e-3
    split_on_counterexample: bool = True
    split_on_timeout: bool = True
    #: specialise the formula to each box before solving (Section VI-A
    #: scalability extension): decidable Ite guards fold away, so piecewise
    #: functionals (SCAN's alpha switches) collapse to a single analytic
    #: piece on boxes that stay on one side of the switch.  Costs one
    #: rebuild per box; pays off on Ite-heavy formulas.
    specialize_boxes: bool = False
    #: solver execution strategy (see :class:`ICPSolver`): the batched
    #: frontier loop by default; "tape"/"walk" select the per-box paths
    #: (all bit-identical -- these are perf/ablation knobs, and workers of
    #: the parallel drivers inherit them through the pickled config)
    solver_backend: str = "batch"
    batch_size: int = 256
    #: minimum frontier width before the batched executors use the vector
    #: kernels (None = module default / ``REPRO_VECTOR_MIN``); like
    #: ``batch_size`` it is a bit-identical perf knob, excluded from
    #: :meth:`semantic_key`
    vector_min: int | None = None
    #: work-queue discipline of the iterative driver.  ``"dfs"`` (default)
    #: replays Algorithm 1's recursive pre-order exactly -- bit-identical
    #: region trees and budget consumption.  ``"widest"`` is a priority
    #: queue keyed on (box width, depth, insertion order): the widest --
    #: i.e. least resolved -- boxes are solved first, so an exhausted
    #: global budget degrades breadth-first instead of starving whole
    #: subtrees.
    queue_order: str = "dfs"

    def __post_init__(self):
        # reject nonsense at construction (the CampaignConfig pattern):
        # a bad knob used to surface only deep inside the solver loop
        if not self.split_threshold > 0.0:
            raise ValueError(
                f"split_threshold must be > 0, got {self.split_threshold}"
            )
        if self.per_call_budget < 1:
            raise ValueError(
                f"per_call_budget must be >= 1, got {self.per_call_budget}"
            )
        if self.per_call_seconds is not None and not self.per_call_seconds > 0:
            raise ValueError(
                f"per_call_seconds must be > 0 or None, got {self.per_call_seconds}"
            )
        # 0 is a meaningful degenerate budget (everything times out
        # immediately); only negatives are nonsense
        if self.global_step_budget is not None and self.global_step_budget < 0:
            raise ValueError(
                f"global_step_budget must be >= 0 or None, got {self.global_step_budget}"
            )
        if not self.delta >= 0.0:
            raise ValueError(f"delta must be >= 0, got {self.delta}")
        if not self.precision > 0.0:
            raise ValueError(f"precision must be > 0, got {self.precision}")
        if self.solver_backend not in ("batch", "tape", "walk"):
            raise ValueError(
                f"solver_backend must be 'batch', 'tape' or 'walk', "
                f"got {self.solver_backend!r}"
            )
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.vector_min is not None and self.vector_min < 0:
            raise ValueError(
                f"vector_min must be >= 0 or None, got {self.vector_min}"
            )
        if self.queue_order not in ("dfs", "widest"):
            raise ValueError(
                f"queue_order must be 'dfs' or 'widest', got {self.queue_order!r}"
            )

    def semantic_key(self) -> tuple:
        """The config fields that determine verification *outcomes*.

        Used by the campaign store's content-hash keys: two configs with
        the same semantic key produce bit-identical reports, so stored
        cells stay valid across changes to the pure performance knobs
        (``solver_backend``, ``batch_size`` and ``vector_min`` are proven
        bit-identical by the solver's differential test corpus and are
        deliberately excluded).
        """
        return (
            self.split_threshold,
            self.per_call_budget,
            self.per_call_seconds,
            self.global_step_budget,
            self.delta,
            self.precision,
            self.split_on_counterexample,
            self.split_on_timeout,
            self.specialize_boxes,
            self.queue_order,
        )

    def make_solver(self) -> ICPSolver:
        return ICPSolver(
            delta=self.delta,
            precision=self.precision,
            backend=self.solver_backend,
            batch_size=self.batch_size,
            vector_min=self.vector_min,
        )

    def make_budget(self) -> Budget:
        return Budget(
            max_steps=self.per_call_budget, max_seconds=self.per_call_seconds
        )


class _WorkQueue:
    """Explicit scheduling queue replacing Algorithm 1's call stack.

    Entries are ``(box, depth, parent record)``; every box additionally
    carries its width as the scheduling priority.  ``"dfs"`` is a LIFO
    that, with children pushed in reverse split order, replays the
    recursive pre-order traversal exactly.  ``"widest"`` is a max-heap on
    width (ties: shallowest first, then FIFO): the widest (least
    resolved) unknown boxes are solved first.
    """

    __slots__ = ("order", "_stack", "_heap", "_seq")

    def __init__(self, order: str):
        if order not in ("dfs", "widest"):
            raise ValueError(f"unknown queue_order {order!r} (use 'dfs' or 'widest')")
        self.order = order
        self._stack: list[tuple[Box, int, RegionRecord | None]] = []
        self._heap: list[tuple[float, int, int, Box, RegionRecord | None]] = []
        self._seq = 0

    def push(self, box: Box, depth: int, parent: RegionRecord | None) -> None:
        if self.order == "dfs":
            self._stack.append((box, depth, parent))
        else:
            heapq.heappush(self._heap, (-box.max_width(), depth, self._seq, box, parent))
            self._seq += 1

    def push_children(
        self, children: list[Box], depth: int, parent: RegionRecord
    ) -> None:
        if self.order == "dfs":
            # reversed so the LIFO pops them in split order, exactly as the
            # recursion descended
            for child in reversed(children):
                self._stack.append((child, depth, parent))
        else:
            for child in children:
                self.push(child, depth, parent)

    def pop(self) -> tuple[Box, int, RegionRecord | None]:
        if self.order == "dfs":
            return self._stack.pop()
        _, depth, _, box, parent = heapq.heappop(self._heap)
        return box, depth, parent

    def __bool__(self) -> bool:
        return bool(self._stack) or bool(self._heap)


#: bound on the per-verifier specialised-formula interning table; one entry
#: per observed Ite branch combination, so real formulas stay far below it,
#: but a pathological campaign can no longer grow it without limit
_SPECIALIZED_CACHE_MAX = 512


class Verifier:
    """Drives the solver over an iteratively split domain (Algorithm 1)."""

    def __init__(self, config: VerifierConfig | None = None, solver: ICPSolver | None = None):
        self.config = config or VerifierConfig()
        self.solver = solver or self.config.make_solver()
        # interning table for specialised formulas: hash-consing makes equal
        # specialisations share residual objects, so keying on residual ids
        # dedupes them -- and keeps the solver's per-formula contractor
        # cache effective (it is keyed on formula identity).  Cleared per
        # top-level verify() and bounded, so long campaigns cannot grow it
        # without limit.
        self._specialized_cache: dict[tuple, object] = {}
        #: solver-internals totals of the last verify()/solve_root() run:
        #: contract/classify outcomes and batched-kernel dispatch counts,
        #: summed over every solver call -- the campaign worker surfaces
        #: them as per-unit span attributes (see repro.obs.trace)
        self.stats_totals = SolverStats()

    def verify(
        self,
        problem: EncodedProblem | CompiledProblem,
        domain: Box | None = None,
        *,
        depth_offset: int = 0,
        on_record: Callable[[RegionRecord], None] | None = None,
    ) -> VerificationReport:
        """Run Algorithm 1 on one encoded (or tape-compiled) pair.

        ``depth_offset`` shifts recorded depths, so a scheduler handing out
        subdomains of a pre-split domain gets records whose depths match
        the equivalent single-domain run.  ``on_record`` is called with
        each :class:`RegionRecord` as soon as it is solved -- the result
        *stream* consumed by campaign checkpointing; the records still
        accumulate in the returned report.
        """
        functional_name, condition_id = self._problem_names(problem)
        domain = domain if domain is not None else problem.domain
        report = VerificationReport(
            functional_name=functional_name,
            condition_id=condition_id,
            domain=domain,
            records=[],
        )
        self._specialized_cache.clear()
        self.stats_totals = SolverStats()
        t_start = time.monotonic()
        self._steps_left = (
            self.config.global_step_budget
            if self.config.global_step_budget is not None
            else math.inf
        )

        # -- the work-queue loop (Algorithm 1, de-recursed) -------------------
        queue = _WorkQueue(self.config.queue_order)
        queue.push(domain, depth_offset, None)
        while queue:
            box, depth, parent = queue.pop()
            if box.max_width() < self.config.split_threshold:  # Alg. 1, lines 1-2
                continue
            record = self._solve_box(problem, box, depth, report)
            if parent is not None:
                parent.children.append(record.index)
            if on_record is not None:
                on_record(record)
            if self._should_split(record.outcome):
                # Alg. 1, lines 14-15
                queue.push_children(box.split_all(), depth + 1, record)

        report.elapsed_seconds = time.monotonic() - t_start
        report.budget_exhausted = self._steps_left <= 0
        return report

    def solve_root(
        self,
        problem: EncodedProblem | CompiledProblem,
        box: Box,
        depth: int = 0,
    ) -> tuple[RegionRecord | None, list[Box] | None]:
        """Solve exactly one box and report whether it would split.

        This is the campaign scheduler's *spill* primitive: instead of
        descending locally, a worker solves the root of its work unit and
        hands the split children back for re-enqueueing on the shared
        queue.  Returns ``(record, children)``; ``record`` is None when the
        box is below the split threshold (Algorithm 1 lines 1-2 -- nothing
        to solve), ``children`` is None when the verdict is terminal.
        """
        self._problem_names(problem)  # validates specialize_boxes pairing
        if box.max_width() < self.config.split_threshold:
            return None, None
        self._specialized_cache.clear()
        self.stats_totals = SolverStats()
        self._steps_left = (
            self.config.global_step_budget
            if self.config.global_step_budget is not None
            else math.inf
        )
        scratch = VerificationReport(
            functional_name="", condition_id="", domain=box, records=[]
        )
        record = self._solve_box(problem, box, depth, scratch)
        children = box.split_all() if self._should_split(record.outcome) else None
        return record, children

    def _problem_names(
        self, problem: EncodedProblem | CompiledProblem
    ) -> tuple[str, str]:
        if isinstance(problem, CompiledProblem):
            if self.config.specialize_boxes:
                raise ValueError(
                    "specialize_boxes needs expression-level residuals; "
                    "pass the EncodedProblem instead of a CompiledProblem"
                )
            return problem.functional_name, problem.condition_id
        return problem.functional.name, problem.condition.cid

    def _should_split(self, outcome: Outcome) -> bool:
        if outcome is Outcome.VERIFIED:
            return False
        if outcome is Outcome.COUNTEREXAMPLE:
            return self.config.split_on_counterexample
        if outcome is Outcome.TIMEOUT:
            return self.config.split_on_timeout
        return True

    def _solve_box(
        self,
        problem: EncodedProblem,
        box: Box,
        depth: int,
        report: VerificationReport,
    ) -> RegionRecord:
        index = len(report.records)

        if self._steps_left <= 0:
            # global campaign budget exhausted: everything left times out
            record = RegionRecord(index, depth, box, Outcome.TIMEOUT)
            report.records.append(record)
            return record

        budget = Budget(
            max_steps=int(min(self.config.per_call_budget, self._steps_left)),
            max_seconds=self.config.per_call_seconds,
        )
        formula = problem.negation
        if self.config.specialize_boxes and not isinstance(problem, CompiledProblem):
            formula = self._specialized(formula, box)
        result = self.solver.solve(formula, box, budget)
        self.stats_totals.merge(result.stats)
        steps = result.stats.boxes_processed
        self._steps_left -= steps
        report.total_solver_steps += steps

        if result.status is SolverStatus.UNSAT:
            outcome, model = Outcome.VERIFIED, None
        elif result.status is SolverStatus.DELTA_SAT:
            if self._is_valid_counterexample(problem, result.model):
                outcome, model = Outcome.COUNTEREXAMPLE, result.model
            else:
                outcome, model = Outcome.INCONCLUSIVE, result.model
        else:
            outcome, model = Outcome.TIMEOUT, None

        record = RegionRecord(index, depth, box, outcome, model, solver_steps=steps)
        report.records.append(record)
        return record

    def _specialized(self, formula, box: Box):
        """Fold box-decidable Ite guards out of every atom's residual.

        Returns the original formula object when nothing folds.  Distinct
        boxes on the same side of every switch specialise to identical
        residuals (hash-consing makes them the *same* objects), so the
        result is interned by residual identities -- keeping the solver's
        per-formula contractor cache (keyed on formula identity) effective
        and bounding this cache to one entry per branch combination.
        """
        from ..expr.simplify import specialize
        from ..solver.constraint import Atom, Conjunction

        new_atoms = []
        changed = False
        for atom in formula.atoms:
            residual = specialize(atom.residual, box)
            if residual is not atom.residual:
                changed = True
                new_atoms.append(Atom(residual, atom.op))
            else:
                new_atoms.append(atom)
        if not changed:
            return formula
        key = tuple((id(a.residual), a.op) for a in new_atoms)
        cached = self._specialized_cache.get(key)
        if cached is None:
            if len(self._specialized_cache) >= _SPECIALIZED_CACHE_MAX:
                # drop the oldest interned specialisation (dict insertion
                # order); losing an entry only costs a re-intern later
                self._specialized_cache.pop(next(iter(self._specialized_cache)))
            cached = Conjunction(atoms=tuple(new_atoms))
            self._specialized_cache[key] = cached
        return cached

    @staticmethod
    def _is_valid_counterexample(
        problem: EncodedProblem | CompiledProblem, model: dict[str, float] | None
    ) -> bool:
        """The ``valid(x)`` check of Algorithm 1 (line 8).

        Plug the model back into the *original* condition psi with plain
        floating-point arithmetic; only a definite violation counts (NaN
        from out-of-domain evaluation is treated as inconclusive).
        """
        if model is None:
            return False
        if isinstance(problem, CompiledProblem):
            return problem.is_violation(model)
        gap = evaluate(problem.psi.lhs, model) - evaluate(problem.psi.rhs, model)
        if math.isnan(gap):
            return False
        return not problem.psi.holds(gap)


def verify_pair(
    functional,
    condition,
    config: VerifierConfig | None = None,
    domain: Box | None = None,
) -> VerificationReport:
    """Convenience one-call API: encode and verify a DFA-condition pair."""
    from .encoder import encode

    problem = encode(functional, condition)
    return Verifier(config).verify(problem, domain=domain)
