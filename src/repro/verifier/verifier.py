"""The VERIFIER driver: Algorithm 1 of the paper.

Recursive domain splitting around the delta-complete solver:

* UNSAT on a box            -> the condition is *verified* there;
* delta-SAT, model checks   -> a *counterexample* (still split, to isolate
  out exactly                  the violating subregions);
* delta-SAT, spurious model -> *inconclusive* (split);
* budget exhausted          -> *timeout* (split);
* box below threshold t     -> stop (line 1-2 of Algorithm 1); the parent
                               verdict stands for that area.

The per-call budget plays the role of the paper's two-hour dReal limit; an
optional *global* budget models the finite total compute of an evaluation
campaign -- once it is exhausted, every remaining box is recorded as a
timeout without solving, which is precisely what the all-``?`` SCAN column
of Table I looks like.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

from ..expr.evaluator import evaluate
from ..solver.box import Box
from ..solver.icp import Budget, ICPSolver, SolverStatus
from .encoder import CompiledProblem, EncodedProblem
from .regions import Outcome, RegionRecord, VerificationReport


@dataclass(frozen=True)
class VerifierConfig:
    """Tuning knobs for Algorithm 1.

    ``split_threshold`` is the paper's t = 0.05 (boxes narrower than this
    are not split further).  ``per_call_budget`` bounds each solver call;
    ``global_step_budget`` bounds the whole verification run (None for
    unlimited).  ``split_on_counterexample`` reproduces the paper's choice
    of splitting even after a valid counterexample, to isolate violating
    subregions; disabling it is an ablation.
    """

    split_threshold: float = 0.05
    per_call_budget: int = 400
    per_call_seconds: float | None = None
    global_step_budget: int | None = 200_000
    delta: float = 1e-5
    precision: float = 1e-3
    split_on_counterexample: bool = True
    split_on_timeout: bool = True
    #: specialise the formula to each box before solving (Section VI-A
    #: scalability extension): decidable Ite guards fold away, so piecewise
    #: functionals (SCAN's alpha switches) collapse to a single analytic
    #: piece on boxes that stay on one side of the switch.  Costs one
    #: rebuild per box; pays off on Ite-heavy formulas.
    specialize_boxes: bool = False
    #: solver execution strategy (see :class:`ICPSolver`): the batched
    #: frontier loop by default; "tape"/"walk" select the per-box paths
    #: (all bit-identical -- these are perf/ablation knobs, and workers of
    #: the parallel drivers inherit them through the pickled config)
    solver_backend: str = "batch"
    batch_size: int = 256

    def make_solver(self) -> ICPSolver:
        return ICPSolver(
            delta=self.delta,
            precision=self.precision,
            backend=self.solver_backend,
            batch_size=self.batch_size,
        )

    def make_budget(self) -> Budget:
        return Budget(
            max_steps=self.per_call_budget, max_seconds=self.per_call_seconds
        )


class Verifier:
    """Drives the solver over a recursively split domain (Algorithm 1)."""

    def __init__(self, config: VerifierConfig | None = None, solver: ICPSolver | None = None):
        self.config = config or VerifierConfig()
        self.solver = solver or self.config.make_solver()
        # interning table for specialised formulas: hash-consing makes equal
        # specialisations share residual objects, so keying on residual ids
        # dedupes them -- and keeps the solver's per-formula contractor
        # cache effective (it is keyed on formula identity)
        self._specialized_cache: dict[tuple, object] = {}

    def verify(
        self,
        problem: EncodedProblem | CompiledProblem,
        domain: Box | None = None,
    ) -> VerificationReport:
        """Run Algorithm 1 on one encoded (or tape-compiled) pair."""
        if isinstance(problem, CompiledProblem):
            functional_name, condition_id = problem.functional_name, problem.condition_id
            if self.config.specialize_boxes:
                raise ValueError(
                    "specialize_boxes needs expression-level residuals; "
                    "pass the EncodedProblem instead of a CompiledProblem"
                )
        else:
            functional_name, condition_id = problem.functional.name, problem.condition.cid
        domain = domain if domain is not None else problem.domain
        report = VerificationReport(
            functional_name=functional_name,
            condition_id=condition_id,
            domain=domain,
            records=[],
        )
        t_start = time.monotonic()
        self._steps_left = (
            self.config.global_step_budget
            if self.config.global_step_budget is not None
            else math.inf
        )
        self._visit(problem, domain, depth=0, parent=None, report=report)
        report.elapsed_seconds = time.monotonic() - t_start
        report.budget_exhausted = self._steps_left <= 0
        return report

    # -- recursion ----------------------------------------------------------------
    def _visit(
        self,
        problem: EncodedProblem,
        box: Box,
        depth: int,
        parent: RegionRecord | None,
        report: VerificationReport,
    ) -> None:
        if box.max_width() < self.config.split_threshold:  # Alg. 1, lines 1-2
            return

        record = self._solve_box(problem, box, depth, report)
        if parent is not None:
            parent.children.append(record.index)

        if record.outcome is Outcome.VERIFIED:
            return
        if (
            record.outcome is Outcome.COUNTEREXAMPLE
            and not self.config.split_on_counterexample
        ):
            return
        if record.outcome is Outcome.TIMEOUT and not self.config.split_on_timeout:
            return

        for child in box.split_all():  # Alg. 1, lines 14-15
            self._visit(problem, child, depth + 1, record, report)

    def _solve_box(
        self,
        problem: EncodedProblem,
        box: Box,
        depth: int,
        report: VerificationReport,
    ) -> RegionRecord:
        index = len(report.records)

        if self._steps_left <= 0:
            # global campaign budget exhausted: everything left times out
            record = RegionRecord(index, depth, box, Outcome.TIMEOUT)
            report.records.append(record)
            return record

        budget = Budget(
            max_steps=int(min(self.config.per_call_budget, self._steps_left)),
            max_seconds=self.config.per_call_seconds,
        )
        formula = problem.negation
        if self.config.specialize_boxes and not isinstance(problem, CompiledProblem):
            formula = self._specialized(formula, box)
        result = self.solver.solve(formula, box, budget)
        steps = result.stats.boxes_processed
        self._steps_left -= steps
        report.total_solver_steps += steps

        if result.status is SolverStatus.UNSAT:
            outcome, model = Outcome.VERIFIED, None
        elif result.status is SolverStatus.DELTA_SAT:
            if self._is_valid_counterexample(problem, result.model):
                outcome, model = Outcome.COUNTEREXAMPLE, result.model
            else:
                outcome, model = Outcome.INCONCLUSIVE, result.model
        else:
            outcome, model = Outcome.TIMEOUT, None

        record = RegionRecord(index, depth, box, outcome, model, solver_steps=steps)
        report.records.append(record)
        return record

    def _specialized(self, formula, box: Box):
        """Fold box-decidable Ite guards out of every atom's residual.

        Returns the original formula object when nothing folds.  Distinct
        boxes on the same side of every switch specialise to identical
        residuals (hash-consing makes them the *same* objects), so the
        result is interned by residual identities -- keeping the solver's
        per-formula contractor cache (keyed on formula identity) effective
        and bounding this cache to one entry per branch combination.
        """
        from ..expr.simplify import specialize
        from ..solver.constraint import Atom, Conjunction

        new_atoms = []
        changed = False
        for atom in formula.atoms:
            residual = specialize(atom.residual, box)
            if residual is not atom.residual:
                changed = True
                new_atoms.append(Atom(residual, atom.op))
            else:
                new_atoms.append(atom)
        if not changed:
            return formula
        key = tuple((id(a.residual), a.op) for a in new_atoms)
        cached = self._specialized_cache.get(key)
        if cached is None:
            cached = Conjunction(atoms=tuple(new_atoms))
            self._specialized_cache[key] = cached
        return cached

    @staticmethod
    def _is_valid_counterexample(
        problem: EncodedProblem | CompiledProblem, model: dict[str, float] | None
    ) -> bool:
        """The ``valid(x)`` check of Algorithm 1 (line 8).

        Plug the model back into the *original* condition psi with plain
        floating-point arithmetic; only a definite violation counts (NaN
        from out-of-domain evaluation is treated as inconclusive).
        """
        if model is None:
            return False
        if isinstance(problem, CompiledProblem):
            return problem.is_violation(model)
        gap = evaluate(problem.psi.lhs, model) - evaluate(problem.psi.rhs, model)
        if math.isnan(gap):
            return False
        return not problem.psi.holds(gap)


def verify_pair(
    functional,
    condition,
    config: VerifierConfig | None = None,
    domain: Box | None = None,
) -> VerificationReport:
    """Convenience one-call API: encode and verify a DFA-condition pair."""
    from .encoder import encode

    problem = encode(functional, condition)
    return Verifier(config).verify(problem, domain=domain)
