"""Campaign engine: a work-stealing scheduler over one shared process pool.

The paper's evaluation (Table I) is a *campaign*: an arbitrary set of
(functional x condition x subdomain) verification tasks under finite
budgets.  This module replaces the two disjoint static-partition drivers
that used to run such workloads with one scheduler:

* every cell's work is cut into **units** -- a subdomain box plus its own
  slice of the global step budget -- and all units of all cells share a
  single process pool.  Units are dispatched in small chunks and workers
  *pull* the next chunk as they finish, so a cell that turns out to be
  SCAN-sized no longer starves workers that were pre-assigned cheap
  chunks (dynamic work-stealing, in contrast to pre-partitioned
  ``pool.map`` fan-out);
* splits discovered at runtime can be **re-enqueued**: with
  ``steal_depth > 0`` a worker near the top of the tree solves only its
  unit's root box and hands the split children back to the scheduler as
  fresh units, so one pair's widening search tree spreads across the
  whole pool instead of staying on the worker that found it;
* finished cells are stitched back into the exact region tree the
  sequential verifier would have produced (same records, indices, child
  links and step counts -- the differential corpus in
  ``tests/verifier/test_campaign.py`` pins this) and, when a
  :mod:`store <repro.verifier.store>` is attached, persisted immediately
  under a content-hash key.  A re-run with ``resume=True`` turns every
  unchanged cell into a cache hit, which is what makes long campaigns
  survivable: kill the process at any point and only in-flight cells are
  recomputed.

``verify_pairs_parallel`` and ``verify_domain_parallel`` in
:mod:`repro.verifier.parallel` are thin wrappers over this engine.
"""

from __future__ import annotations

import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable

from ..conditions.catalog import get_condition
from ..functionals.registry import get_functional
from ..obs.metrics import REGISTRY
from ..obs.trace import SpanRecorder, current_tracer
from ..solver.box import Box
from .encoder import CompiledProblem, EncodedProblem, compile_problem, encode
from .regions import RegionRecord, VerificationReport
from .store import SCHEMA_VERSION, CampaignStore, open_store
from .verifier import Verifier, VerifierConfig

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "dedupe_pairs",
    "drive_chunks",
    "effective_workers",
    "pair_content_key",
    "run_campaign",
]


@dataclass(frozen=True)
class CampaignConfig:
    """Validated bundle of the campaign's scheduling knobs.

    The knobs themselves have always existed as ``run_campaign`` keyword
    arguments; this type exists to reject nonsense *loudly* -- a negative
    ``steal_depth`` used to flow silently into the engine and simply
    disable spilling, and a negative ``max_workers`` crashed deep inside
    ``ProcessPoolExecutor``.  ``run_campaign`` constructs one from its
    arguments, so every entry point (CLI, service, tests) shares the
    same one-line errors.
    """

    max_workers: int | None = None
    presplit_levels: int = 0
    steal_depth: int = 0
    unit_chunk_size: int = 1

    def __post_init__(self):
        if self.max_workers is not None and self.max_workers < 0:
            raise ValueError(
                f"max_workers must be >= 0, got {self.max_workers}"
            )
        if self.presplit_levels < 0:
            raise ValueError(
                f"presplit_levels must be >= 0, got {self.presplit_levels}"
            )
        if self.steal_depth < 0:
            raise ValueError(f"steal_depth must be >= 0, got {self.steal_depth}")
        if self.unit_chunk_size < 1:
            raise ValueError(
                f"unit_chunk_size must be >= 1, got {self.unit_chunk_size}"
            )


def effective_workers(
    max_workers: int | None, executor: ProcessPoolExecutor | None = None
) -> int:
    """The pool width a campaign will actually run on.

    The scheduling policy sizes per-pair pre-splits against this: a
    shared executor answers with its own width, ``None`` means the CPU
    count (the executor default), and ``0``/``1`` mean in-process.
    """
    if executor is not None:
        return getattr(executor, "_max_workers", None) or (os.cpu_count() or 1)
    if max_workers is None:
        return os.cpu_count() or 1
    return max(1, max_workers)


def pair_content_key(
    functional,
    condition,
    config: VerifierConfig,
    *,
    presplit_levels: int = 0,
    steal_depth: int = 0,
    compiled: CompiledProblem | None = None,
) -> str:
    """Store key of one (functional, condition) campaign cell.

    This is the key :func:`run_campaign` files completed cells under, and
    the key the verification service coalesces concurrent requests on --
    both must derive it identically or the service would recompute cells
    the campaign already stored (or worse, serve one request's cell to a
    semantically different one).  It covers the compiled tapes
    bit-for-bit, the semantic verifier config, the scheduling knobs that
    alter report *contents* (budget division across pre-split/spilled
    units) and the pair's registry key, so two registry entries that
    happen to encode to identical tapes stay separate cells.

    ``compiled`` lets callers that already paid the encode + tape-compile
    (the service's key cache, the campaign's payload build) reuse it.
    """
    if isinstance(functional, str):
        functional = get_functional(functional)
    if isinstance(condition, str):
        condition = get_condition(condition)
    if compiled is None:
        compiled = compile_problem(encode(functional, condition))
    return compiled.content_hash(
        extra=(
            *config.semantic_key(),
            presplit_levels,
            steal_depth,
            functional.name,
            condition.cid,
        )
    )


def _pinned_plan(
    store, base_key: str, presplit_levels: int, steal_depth: int
) -> tuple[int, int]:
    """Pin a policy's split plan in the store, first writer wins.

    Planned knobs enter the content key, and the plan itself depends on
    the store's timing history -- so replanning against a warmer store
    would silently re-key (and recompute) cells an earlier adaptive run
    already persisted.  The first adaptive run against a store records
    its plan per pair under the pair's *base*-knob key; every later run
    replays that record, keeping ``--adaptive --resume`` runs full store
    hits with byte-identical artifacts.
    """
    plan_key = "sched-plan:" + base_key
    record = store.get_payload(plan_key)
    if record is not None:
        return int(record["presplit_levels"]), int(record["steal_depth"])
    store.put_payload(
        plan_key,
        {
            "v": SCHEMA_VERSION,
            "kind": "sched-plan",
            "presplit_levels": presplit_levels,
            "steal_depth": steal_depth,
        },
    )
    return presplit_levels, steal_depth


# ---------------------------------------------------------------------------
# the shared chunk-dispatch loop
# ---------------------------------------------------------------------------

def drive_chunks(
    chunks: Iterable[tuple],
    worker: Callable,
    absorb: Callable,
    *,
    max_workers: int | None = None,
    executor: ProcessPoolExecutor | None = None,
    prefer_pool: bool = False,
    tracer=None,
    chunk_trace: Callable | None = None,
) -> None:
    """Run ``(tag, args)`` chunks over one shared work-pulling pool.

    This is the campaign engine's scheduling core, shared by the
    verification campaign and the numerics campaign: every chunk of every
    cell goes into a single queue, ``worker(args)`` runs in a worker
    process (it must be a picklable module-level function), and
    ``absorb(tag, out)`` runs in the parent as results land -- returning
    an iterable of *new* chunks to enqueue (spilled splits), so workers
    pull fresh work the moment they finish instead of being pre-assigned
    static shards.

    ``max_workers`` <= 1 (with no ``executor``) runs everything
    in-process through the identical worker/absorb code path -- fully
    deterministic, no pickling.  A single seed chunk also stays
    in-process unless ``prefer_pool`` says spills are expected to fan it
    out.  An ``executor`` passed in is shared, not owned: the caller
    keeps its lifecycle, so several campaigns can run over one pool.

    KeyboardInterrupt is *not* caught here -- callers decide what a
    partial campaign means.  On the way out an owned pool is shut down
    with its queue cancelled; on a shared pool this run's still-queued
    chunks are cancelled (chunks already executing run to completion,
    their results discarded).

    With an enabled ``tracer`` (default: the ambient
    :func:`~repro.obs.trace.current_tracer`) every chunk gets a
    ``dispatch`` span covering submit to result arrival -- queue wait
    plus worker execution -- and the span's pickled
    :class:`~repro.obs.trace.SpanContext` is appended to the chunk's
    args tuple so the worker's own spans parent under it.
    ``chunk_trace(tag)`` names the parent span and a label (the campaign
    scheduler passes each cell's span and pair name), so stolen
    re-enqueues stay attached to their cell no matter which worker picks
    them up.  Tracing off costs one ``enabled`` check per chunk.
    """
    queue: deque = deque(chunks)
    tracer = tracer if tracer is not None else current_tracer()
    tracing = tracer.enabled

    def begin_dispatch(tag, args):
        parent, label = chunk_trace(tag) if chunk_trace is not None else (None, None)
        name = f"dispatch:{label}" if label else "dispatch"
        span = tracer.begin(name, "dispatch", parent)
        return span, args + (tracer.context(span),)

    in_process = executor is None and (
        (max_workers is not None and max_workers <= 1)
        or (len(queue) <= 1 and not prefer_pool)
    )
    if in_process:
        # same worker code path, no pool and no pickling
        while queue:
            tag, args = queue.popleft()
            if tracing:
                span, args = begin_dispatch(tag, args)
                out = worker(args)
                tracer.finish(span)
            else:
                out = worker(args)
            queue.extend(absorb(tag, out))
        return
    owns_executor = executor is None
    if owns_executor:
        executor = ProcessPoolExecutor(max_workers=max_workers)
    futures: dict = {}
    spans: dict = {}
    try:
        # submit everything: the pool's internal queue IS the shared work
        # queue -- idle workers pull the next chunk as they finish, and
        # spilled splits join the queue as they appear
        for tag, args in queue:
            if tracing:
                span, args = begin_dispatch(tag, args)
            future = executor.submit(worker, args)
            futures[future] = tag
            if tracing:
                spans[future] = span
        while futures:
            done, _ = wait(futures, return_when=FIRST_COMPLETED)
            for future in done:
                tag = futures.pop(future)
                span = spans.pop(future, None)
                if span is not None:
                    tracer.finish(span)
                for new_tag, args in absorb(tag, future.result()):
                    if tracing:
                        span, args = begin_dispatch(new_tag, args)
                    new_future = executor.submit(worker, args)
                    futures[new_future] = new_tag
                    if tracing:
                        spans[new_future] = span
    finally:
        if owns_executor:
            executor.shutdown(wait=False, cancel_futures=True)
        else:
            # a shared pool outlives this campaign: drop our queued chunks
            # so an abandoned run does not keep burning the caller's
            # workers (chunks already running finish and are discarded)
            for future in futures:
                future.cancel()


# ---------------------------------------------------------------------------
# task normalisation
# ---------------------------------------------------------------------------

def dedupe_pairs(pairs) -> list[tuple[tuple[str, str], object, object]]:
    """Resolve and de-duplicate (functional, condition) pairs, in order.

    Accepts functional/condition objects or their registry names.  Passing
    the same pair twice is de-duplicated up front (the duplicate would
    only recompute and overwrite an identical result); passing *distinct*
    objects that collide on the same (name, cid) key is an error -- the
    old drivers silently kept whichever finished last.
    """
    resolved: dict[tuple[str, str], tuple[object, object]] = {}
    order: list[tuple[str, str]] = []
    for functional, condition in pairs:
        if isinstance(functional, str):
            functional = get_functional(functional)
        if isinstance(condition, str):
            condition = get_condition(condition)
        key = (functional.name, condition.cid)
        if key in resolved:
            prev_f, prev_c = resolved[key]
            if prev_f is not functional or prev_c is not condition:
                raise ValueError(
                    f"conflicting duplicate pair {key}: two distinct "
                    "functional/condition objects share the same key"
                )
            continue
        resolved[key] = (functional, condition)
        order.append(key)
    return [(key, *resolved[key]) for key in order]


# ---------------------------------------------------------------------------
# work units
# ---------------------------------------------------------------------------

@dataclass
class _Unit:
    """One schedulable piece of a cell: a box plus its budget slice."""

    uid: int
    bounds: dict[str, tuple[float, float]] | None  # None = the cell's domain
    depth: int
    budget: int | None
    mode: str  # "tree" = run the full subtree; "root" = solve one box, spill splits
    children_uids: list[int] = field(default_factory=list)
    record: RegionRecord | None = None          # root-mode result
    report: VerificationReport | None = None    # tree-mode result
    done: bool = False


class _Cell:
    """Bookkeeping for one (functional, condition) pair in the campaign.

    ``presplit_levels``/``steal_depth`` are per-cell since the adaptive
    policy (:mod:`.costmodel`) tunes them per pair; without a policy every
    cell carries the campaign's global knobs.  They participate in the
    cell's content key exactly like the globals did.
    """

    def __init__(
        self, key, domain, payload, content_key,
        *, presplit_levels=0, steal_depth=0,
    ):
        self.key = key
        self.domain = domain            # the pair's full input box
        self.payload = payload          # what worker processes receive
        self.content_key = content_key  # store key (None without a store)
        self.presplit_levels = presplit_levels
        self.steal_depth = steal_depth
        self.units: dict[int, _Unit] = {}
        self.top_uids: list[int] = []
        self.open_units = 0
        self.compile_seconds = 0.0      # summed worker-side compile time
        self.span = None                # parent-side cell span (tracing only)


def _materialize(payload) -> EncodedProblem | CompiledProblem:
    if isinstance(payload, tuple):
        functional_name, condition_id = payload
        return encode(get_functional(functional_name), get_condition(condition_id))
    return payload


#: per-worker persistent compile cache: (problem identity, solver-relevant
#: config) -> (problem, solver).  Workers are long-lived across chunks, so
#: without this every chunk of the same cell re-materialises the problem
#: (name payloads re-run the whole symbolic encode) and rebuilds a fresh
#: solver whose contractor cache -- keyed on formula *identity* -- starts
#: cold, re-walking every atom into tapes.  Content addressing makes the
#: reuse sound: name payloads key on the registry pair, compiled payloads
#: on the tapes' stable content hash (two unpickled copies of the same
#: problem hash identically), and the solver key pins every config field
#: :meth:`VerifierConfig.make_solver` consumes.
_WORKER_CACHE: dict = {}
_WORKER_CACHE_MAX = 64


def _worker_compile(payload, config):
    """Materialise (problem, solver) through the per-worker cache.

    Returns ``(problem, solver, compile_seconds)``; a warm hit reuses the
    resident pair and reports ~zero compile time.
    """
    if isinstance(payload, tuple):
        problem_key: object = payload
    else:
        problem_key = payload.content_hash()
    key = (
        problem_key,
        config.delta,
        config.precision,
        config.solver_backend,
        config.batch_size,
        config.vector_min,
    )
    hit = _WORKER_CACHE.pop(key, None)
    if hit is not None:
        _WORKER_CACHE[key] = hit  # LRU refresh
        problem, solver = hit
        if solver is None:
            solver = config.make_solver()
        return problem, solver, 0.0
    start = time.perf_counter()
    problem = _materialize(payload)
    solver = config.make_solver()
    elapsed = time.perf_counter() - start
    if len(_WORKER_CACHE) >= _WORKER_CACHE_MAX:
        _WORKER_CACHE.pop(next(iter(_WORKER_CACHE)))
    # a specialising config mints fresh per-box formulas every verify, and
    # the solver's contractor cache is keyed on formula identity -- keeping
    # that solver resident would grow it without bound, so only the
    # materialised problem is cached and the solver stays per-chunk
    _WORKER_CACHE[key] = (problem, None if config.specialize_boxes else solver)
    return problem, solver, elapsed


def _campaign_worker_warm(hold_seconds: float = 0.0):
    """Pool warm-up task: import the worker's module graph eagerly.

    Submitted once per worker at pool start (the service pool, see
    ``service/scheduler.py``), so a worker's first real chunk pays
    neither module imports nor lazy registry loads.  ``hold_seconds``
    keeps the task resident long enough that every pool worker forks and
    runs its own copy -- an executor hands queued tasks to already-idle
    workers instead of spawning new ones.
    """
    get_functional  # the imports at module top are the actual warm-up
    if hold_seconds > 0.0:
        time.sleep(hold_seconds)
    return os.getpid()


def _campaign_worker(args):
    """Run one chunk of units (same cell) in a worker process.

    The payload is materialised through the persistent per-worker compile
    cache (:data:`_WORKER_CACHE`) and one solver is shared by every unit,
    so the solver's contractor cache -- keyed on formula identity, and
    every unit solves the *same* resident problem object -- stays warm
    across the whole chunk *and across chunks of the same cell*.
    (Specialised Ite-folded formulas are the exception: their interning
    table is deliberately cleared per top-level verify, i.e. per unit, to
    bound memory on long campaigns, trading one re-specialisation per
    subdomain.)  Tree-mode units run the full iterative verifier on their
    box; root-mode units solve exactly one box and return the split
    children for re-enqueueing.  Returns ``(compile_seconds, results)``
    -- with a fourth dispatch-args element (a pickled
    :class:`~repro.obs.trace.SpanContext`), the worker additionally
    records a pid-stamped span tree (chunk / compile / per-unit solve,
    solver-internals totals attached) and returns it as a third element
    for the parent's absorb to reattach to the trace.
    """
    payload, config, items = args[0], args[1], args[2]
    recorder = SpanRecorder(args[3]) if len(args) > 3 else None
    if recorder is None:
        chunk_span = None
        problem, solver, compile_seconds = _worker_compile(payload, config)
    else:
        pair = _payload_pair(payload)
        chunk_span = recorder.begin(
            "chunk", "chunk", units=len(items),
            functional=pair[0], condition=pair[1],
        )
        compile_span = recorder.begin(
            "compile", "compile", parent=chunk_span,
            functional=pair[0], condition=pair[1],
        )
        problem, solver, compile_seconds = _worker_compile(payload, config)
        recorder.finish(
            compile_span,
            cache_hit=compile_seconds == 0.0,
            compile_seconds=compile_seconds,
        )
    out = []
    for uid, bounds, depth, budget, mode in items:
        unit_config = replace(config, global_step_budget=budget)
        verifier = Verifier(unit_config, solver=solver)
        box = Box.from_bounds(bounds) if bounds is not None else problem.domain
        solve_span = None
        if recorder is not None:
            solve_span = recorder.begin(
                f"solve:{uid}", "solve", parent=chunk_span,
                functional=pair[0], condition=pair[1],
                uid=uid, mode=mode, depth=depth,
            )
        if mode == "root":
            record, children = verifier.solve_root(problem, box, depth)
            child_bounds = None
            if children is not None:
                child_bounds = [
                    {name: (iv.lo, iv.hi) for name, iv in child.items()}
                    for child in children
                ]
            out.append((uid, mode, (record, child_bounds)))
            steps = record.solver_steps if record is not None else 0
        else:
            report = verifier.verify(problem, domain=box, depth_offset=depth)
            out.append((uid, mode, report))
            steps = report.total_solver_steps
        if solve_span is not None:
            recorder.finish(
                solve_span, steps=steps, **verifier.stats_totals.as_attrs()
            )
    if recorder is None:
        return compile_seconds, out
    recorder.finish(chunk_span)
    return compile_seconds, out, recorder.records


def _payload_pair(payload) -> tuple[str, str]:
    """The (functional, condition) names a worker payload identifies."""
    if isinstance(payload, tuple):
        return payload
    return payload.functional_name, payload.condition_id


# ---------------------------------------------------------------------------
# result object
# ---------------------------------------------------------------------------

@dataclass
class CampaignResult:
    """Everything a campaign run produced.

    ``reports`` maps ``(functional_name, condition_id)`` to the stitched
    report.  ``store_hits`` / ``computed`` record which cells were served
    from the store versus solved this run; ``interrupted`` is True when
    the run was cut short (SIGINT) -- completed cells are still present
    (and persisted, when a store is attached).
    """

    reports: dict[tuple[str, str], VerificationReport] = field(default_factory=dict)
    store_hits: list[tuple[str, str]] = field(default_factory=list)
    computed: list[tuple[str, str]] = field(default_factory=list)
    cell_keys: dict[tuple[str, str], str] = field(default_factory=dict)
    interrupted: bool = False

    def __getitem__(self, key: tuple[str, str]) -> VerificationReport:
        return self.reports[key]

    def __len__(self) -> int:
        return len(self.reports)

    def __contains__(self, key) -> bool:
        return key in self.reports

    def items(self):
        return self.reports.items()


# ---------------------------------------------------------------------------
# the scheduler
# ---------------------------------------------------------------------------

#: campaign-engine counters in the process-wide registry: recorded with
#: or without a server attached, scraped through /v1/metrics when one is
_CELLS_COUNTER = REGISTRY.counter(
    "repro_campaign_cells_resolved_total",
    "Campaign cells resolved, by how they resolved.",
)
_CHUNKS_COUNTER = REGISTRY.counter(
    "repro_campaign_chunks_total",
    "Work chunks dispatched by the campaign engine.",
)


class _Scheduler:
    def __init__(self, config, unit_chunk_size, store, on_cell, result,
                 tracer=None, campaign_span=None):
        self.config = config
        self.unit_chunk_size = unit_chunk_size
        self.store = store
        self.on_cell = on_cell
        self.result = result
        self.tracer = tracer if tracer is not None else current_tracer()
        self.campaign_span = campaign_span
        self._next_uid = 0

    # -- unit construction -------------------------------------------------
    def _mode(self, cell: _Cell, depth: int) -> str:
        return "root" if depth < cell.steal_depth else "tree"

    def _new_unit(self, cell: _Cell, bounds, depth, budget) -> _Unit:
        unit = _Unit(
            uid=self._next_uid,
            bounds=bounds,
            depth=depth,
            budget=budget,
            mode=self._mode(cell, depth),
        )
        self._next_uid += 1
        cell.units[unit.uid] = unit
        cell.open_units += 1
        return unit

    def top_units(self, cell: _Cell) -> list[_Unit]:
        """Build a cell's initial units (the shared queue's seed).

        ``cell.presplit_levels`` forced splits produce ``2**(levels*dims)``
        sibling units whose records have no parent, exactly like the old
        ``verify_domain_parallel`` merge; the per-unit budget is the
        global budget divided evenly.  With no pre-split the cell is one
        unit holding the full domain and the full budget.
        """
        domain = cell.domain
        presplit_levels = cell.presplit_levels
        if presplit_levels <= 0:
            units = [self._new_unit(cell, None, 0, self.config.global_step_budget)]
        else:
            subdomains = [domain]
            for _ in range(presplit_levels):
                subdomains = [
                    child for box in subdomains for child in box.split_all()
                ]
            if self.config.global_step_budget is not None:
                per_budget = max(1, self.config.global_step_budget // len(subdomains))
            else:
                per_budget = None
            units = [
                self._new_unit(
                    cell,
                    {name: (iv.lo, iv.hi) for name, iv in box.items()},
                    presplit_levels,
                    per_budget,
                )
                for box in subdomains
            ]
        cell.top_uids = [u.uid for u in units]
        return units

    def chunk(self, cell: _Cell, units: list[_Unit]) -> list[tuple]:
        """Pack units into dispatchable chunks of ``unit_chunk_size``.

        Chunks carry no tracing state themselves: with tracing on,
        :func:`drive_chunks` appends each dispatch span's context to the
        args at submit time, so spilled re-enqueues (which build fresh
        chunks through this same method) get their own dispatch span
        parented under the cell.
        """
        chunks = []
        for i in range(0, len(units), self.unit_chunk_size):
            group = units[i : i + self.unit_chunk_size]
            items = [(u.uid, u.bounds, u.depth, u.budget, u.mode) for u in group]
            chunks.append((cell, (cell.payload, self.config, items)))
        _CHUNKS_COUNTER.inc(len(chunks))
        return chunks

    # -- result absorption -------------------------------------------------
    def absorb(self, cell: _Cell, worker_out) -> list[tuple]:
        """Record a chunk's results; return new chunks spilled splits need."""
        new_chunks = []
        if len(worker_out) == 3:
            compile_seconds, unit_results, span_records = worker_out
            # reattach the worker's pid-stamped spans; records name their
            # own parents, so out-of-order completion needs no bookkeeping
            self.tracer.emit_records(span_records)
        else:
            compile_seconds, unit_results = worker_out
        cell.compile_seconds += compile_seconds
        for uid, mode, payload in unit_results:
            unit = cell.units[uid]
            unit.done = True
            cell.open_units -= 1
            if mode == "root":
                record, child_bounds = payload
                unit.record = record
                if child_bounds:
                    spent = record.solver_steps if record is not None else 0
                    if unit.budget is None:
                        child_budget = None
                    else:
                        child_budget = max(0, unit.budget - spent) // len(child_bounds)
                    children = [
                        self._new_unit(cell, bounds, unit.depth + 1, child_budget)
                        for bounds in child_bounds
                    ]
                    unit.children_uids = [c.uid for c in children]
                    new_chunks.extend(self.chunk(cell, children))
            else:
                unit.report = payload
        if cell.open_units == 0:
            self.finish_cell(cell)
        return new_chunks

    def finish_cell(self, cell: _Cell) -> None:
        report = _stitch_cell(cell)
        self.result.reports[cell.key] = report
        self.result.computed.append(cell.key)
        _CELLS_COUNTER.inc(result="computed")
        if self.store is not None and cell.content_key is not None:
            self.store.put(cell.content_key, report)
        if cell.span is not None:
            self.tracer.finish(
                cell.span,
                units=len(cell.units),
                steps=report.total_solver_steps,
                regions=len(report.records),
                compile_seconds=cell.compile_seconds,
            )
        if self.on_cell is not None:
            self.on_cell(cell.key, report, False)

    def open_cell(self, cell: _Cell) -> None:
        """Start the cell's parent-side span (one per *computed* cell)."""
        if self.tracer.enabled:
            cell.span = self.tracer.begin(
                f"cell:{cell.key[0]}/{cell.key[1]}", "cell", self.campaign_span,
                functional=cell.key[0], condition=cell.key[1],
            )


def _stitch_cell(cell: _Cell) -> VerificationReport:
    """Reassemble a cell's unit results into the sequential region tree.

    Units are emitted in deterministic pre-order over the unit tree --
    completion order never matters -- so the stitched report is
    bit-identical to the equivalent in-process run: record indices,
    depths, child links and step counts all line up.
    """
    records: list[RegionRecord] = []
    totals = {"steps": 0, "elapsed": 0.0, "exhausted": False}

    # iterative pre-order over the unit tree (a LIFO with children pushed
    # reversed), mirroring the verifier's own queue discipline -- stitching
    # must not reintroduce a recursion limit the engine removed
    stack: list[tuple[int, RegionRecord | None]] = [
        (uid, None) for uid in reversed(cell.top_uids)
    ]
    while stack:
        uid, parent = stack.pop()
        unit = cell.units[uid]
        if unit.mode == "root":
            rec = unit.record
            if rec is None:
                continue
            stitched = RegionRecord(
                index=len(records),
                depth=rec.depth,
                box=rec.box,
                outcome=rec.outcome,
                model=rec.model,
                children=[],
                solver_steps=rec.solver_steps,
            )
            records.append(stitched)
            if parent is not None:
                parent.children.append(stitched.index)
            totals["steps"] += rec.solver_steps
            if unit.budget is not None and rec.solver_steps >= unit.budget:
                totals["exhausted"] = True
            for child_uid in reversed(unit.children_uids):
                stack.append((child_uid, stitched))
            continue
        report = unit.report
        totals["steps"] += report.total_solver_steps
        totals["elapsed"] = max(totals["elapsed"], report.elapsed_seconds)
        totals["exhausted"] = totals["exhausted"] or report.budget_exhausted
        if not report.records:
            continue
        offset = len(records)
        if parent is not None:
            parent.children.append(offset)  # this unit's subtree root
        for r in report.records:
            records.append(
                RegionRecord(
                    index=r.index + offset,
                    depth=r.depth,
                    box=r.box,
                    outcome=r.outcome,
                    model=r.model,
                    children=[c + offset for c in r.children],
                    solver_steps=r.solver_steps,
                )
            )

    return VerificationReport(
        functional_name=cell.key[0],
        condition_id=cell.key[1],
        domain=cell.domain,
        records=records,
        total_solver_steps=totals["steps"],
        elapsed_seconds=totals["elapsed"],
        compile_seconds=cell.compile_seconds,
        budget_exhausted=totals["exhausted"],
    )


# ---------------------------------------------------------------------------
# the campaign driver
# ---------------------------------------------------------------------------

def run_campaign(
    pairs: Iterable,
    config: VerifierConfig | None = None,
    *,
    max_workers: int | None = None,
    presplit_levels: int = 0,
    steal_depth: int = 0,
    unit_chunk_size: int = 1,
    store: CampaignStore | str | os.PathLike | None = None,
    resume: bool = True,
    precompile: bool = True,
    executor: ProcessPoolExecutor | None = None,
    on_cell: Callable[[tuple[str, str], VerificationReport, bool], None] | None = None,
    policy=None,
    tracer=None,
) -> CampaignResult:
    """Run a verification campaign over (functional, condition) pairs.

    Parameters
    ----------
    pairs:
        Iterable of ``(functional, condition)`` -- objects or registry
        names.  Duplicates are de-duplicated; conflicting duplicates
        raise (see :func:`dedupe_pairs`).
    max_workers:
        Process-pool width.  ``0`` or ``1`` runs in-process (fully
        deterministic ordering, no pickling); ``None`` uses the CPU
        count.
    presplit_levels:
        Force-split every cell's domain this many levels up front so one
        pair fans out across the pool (``2**(levels*dims)`` units, global
        budget divided evenly -- the old ``verify_domain_parallel``
        semantics).
    steal_depth:
        Depth above which workers *spill* splits back to the shared
        queue instead of descending locally: a unit at ``depth <
        steal_depth`` solves only its root box and its children are
        re-enqueued as independent units (budget: the unit's remainder,
        divided evenly).  ``0`` disables spilling.
    unit_chunk_size:
        Units per dispatched job.  ``1`` maximises stealing granularity;
        larger chunks amortise payload pickling for many tiny units.
    store / resume:
        A :class:`~repro.verifier.store.CampaignStore` (or a path --
        opened, and closed again, by this call).  Completed cells are
        persisted immediately under their content-hash key; with
        ``resume=True`` cells whose key is already stored are returned
        from the store without solving.  Note that even a store *hit*
        pays the parent-side encode + tape-compile: the key must be
        derived from the **current** tapes, or a code change (functional,
        condition, simplifier, compiler) could serve stale results --
        soundness of the content addressing is bought with that encode.
    precompile:
        Ship tape-compiled problems to workers (encode once, in the
        parent).  With ``False`` -- or whenever
        ``config.specialize_boxes`` forces expression-level residuals --
        workers re-encode from registry names.
    executor:
        An existing pool to share across campaigns; the caller keeps
        ownership.  Incompatible with in-process mode.
    policy:
        A :class:`~repro.verifier.costmodel.SchedulingPolicy`.  When
        given, cells are dispatched longest-predicted-first (a pure
        permutation -- every stitched report is bit-identical to the
        static submission order) and ``presplit_levels``/``steal_depth``
        become *per-pair* floors tuned from predicted cost; the given
        globals act as minimums.  Per-pair knobs enter each cell's
        content key exactly like the globals, so the store stays sound;
        the model itself never touches any key.
    tracer:
        A :class:`~repro.obs.trace.Tracer` (default: the ambient
        :func:`~repro.obs.trace.current_tracer`, a no-op unless a trace
        sink was activated).  When enabled, the run emits a campaign
        span, one span per computed cell, per-chunk dispatch spans and
        the workers' pid-stamped chunk/compile/solve spans.  Tracing is
        purely observational: stitched reports, store contents and keys
        are byte-identical with tracing on or off.

    KeyboardInterrupt is caught: completed cells are kept (and already
    persisted), ``result.interrupted`` is set, and in-flight work is
    cancelled.
    """
    config = config or VerifierConfig()
    CampaignConfig(  # loud one-line validation of the tuning knobs
        max_workers=max_workers,
        presplit_levels=presplit_levels,
        steal_depth=steal_depth,
        unit_chunk_size=unit_chunk_size,
    )
    cells_spec = dedupe_pairs(pairs)

    plans = None
    if policy is not None:
        plans = policy.plan_pairs(
            cells_spec,
            workers=effective_workers(max_workers, executor),
            base_presplit=presplit_levels,
            base_steal=steal_depth,
        )

    owns_store = isinstance(store, (str, os.PathLike))
    if owns_store:
        store = open_store(store)

    tracer = tracer if tracer is not None else current_tracer()
    campaign_span = None
    if tracer.enabled:
        campaign_span = tracer.begin(
            "campaign", "campaign", pairs=len(cells_spec),
            workers=effective_workers(max_workers, executor),
        )
    result = CampaignResult()
    scheduler = _Scheduler(
        config, max(1, unit_chunk_size), store, on_cell, result,
        tracer, campaign_span,
    )

    try:
        # -- resolve cells: hash, serve store hits, build payloads ------------
        ship_names = config.specialize_boxes or not precompile
        work_cells: list[_Cell] = []
        for key, functional, condition in cells_spec:
            cell_presplit = presplit_levels
            cell_steal = steal_depth
            if plans is not None:
                cell_presplit = plans[key].presplit_levels
                cell_steal = plans[key].steal_depth
            content_key = None
            compiled = None
            if store is not None:
                # hashing needs the compiled tapes; compile once and reuse
                # the object as the worker payload below.  a key hit always
                # implies a bit-identical report (see pair_content_key)
                compiled = compile_problem(encode(functional, condition))
                if plans is not None:
                    cell_presplit, cell_steal = _pinned_plan(
                        store,
                        pair_content_key(
                            functional,
                            condition,
                            config,
                            presplit_levels=presplit_levels,
                            steal_depth=steal_depth,
                            compiled=compiled,
                        ),
                        cell_presplit,
                        cell_steal,
                    )
                content_key = pair_content_key(
                    functional,
                    condition,
                    config,
                    presplit_levels=cell_presplit,
                    steal_depth=cell_steal,
                    compiled=compiled,
                )
                result.cell_keys[key] = content_key
                if resume:
                    stored = store.get(content_key)
                    if stored is not None:
                        result.reports[key] = stored
                        result.store_hits.append(key)
                        _CELLS_COUNTER.inc(result="store_hit")
                        if on_cell is not None:
                            on_cell(key, stored, True)
                        continue
            if ship_names:
                # workers re-encode locally: the expensive symbolic encoding
                # runs in parallel instead of serially in the parent
                payload: object = key
            else:
                payload = compiled or compile_problem(encode(functional, condition))
            work_cells.append(
                _Cell(
                    key,
                    functional.domain(),
                    payload,
                    content_key,
                    presplit_levels=cell_presplit,
                    steal_depth=cell_steal,
                )
            )

        # -- order dispatch, seed the shared queue --------------------------
        if plans is not None:
            ranked = policy.order(
                [cell.key for cell in work_cells],
                {key: plan.predicted_seconds for key, plan in plans.items()},
            )
            rank = {key: position for position, key in enumerate(ranked)}
            work_cells.sort(key=lambda cell: rank[cell.key])
        chunks: deque = deque()
        for cell in work_cells:
            scheduler.open_cell(cell)
            chunks.extend(scheduler.chunk(cell, scheduler.top_units(cell)))

        drive_chunks(
            chunks,
            _campaign_worker,
            scheduler.absorb,
            max_workers=max_workers,
            executor=executor,
            # a single seed chunk still goes to the pool when spilling is
            # on: its runtime splits are what fan out across workers
            prefer_pool=any(cell.steal_depth > 0 for cell in work_cells),
            tracer=tracer,
            chunk_trace=lambda cell: (cell.span, f"{cell.key[0]}/{cell.key[1]}"),
        )
    except KeyboardInterrupt:
        result.interrupted = True
    finally:
        if campaign_span is not None:
            tracer.finish(
                campaign_span,
                computed=len(result.computed),
                store_hits=len(result.store_hits),
                interrupted=result.interrupted,
            )
        if owns_store:
            store.close()
    return result
