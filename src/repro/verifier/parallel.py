"""Process-parallel verification drivers.

Two axes of parallelism, both embarrassingly parallel and implemented with
``concurrent.futures`` (the standard fan-out idiom for CPU-bound Python,
since the solver is pure Python and GIL-bound):

* :func:`verify_pairs_parallel` -- one worker per DFA-condition pair
  (Table I is 31 independent jobs);
* :func:`verify_domain_parallel` -- split one pair's domain into top-level
  subboxes and run Algorithm 1 on each in parallel, then merge the
  records (the recursion of Algorithm 1 is trivially parallel below the
  first split).

Expression DAGs are interned per process and deliberately never pickled.
Jobs instead ship either a (functional name, condition id) pair that the
worker re-encodes locally, or -- the fast path -- a
:class:`~repro.verifier.encoder.CompiledProblem`: instruction tapes are
flat picklable data, so the parent encodes/compiles *once* and workers
skip symbolic encoding entirely.  ``verify_domain_parallel`` always ships
tapes (it encodes in the parent anyway); ``verify_pairs_parallel`` makes it
opt-in via ``precompile`` because parent-side encoding of many pairs is
itself serial work.

``verify_domain_parallel`` additionally *chunks* the subdomains: each job
carries the payload once plus a whole list of boxes, so unpickling cost is
per chunk (not per subdomain) and the worker-side solver -- the batched
frontier ICP by default -- reuses its warm contractor caches across every
box of the chunk.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace

from ..conditions.catalog import get_condition
from ..functionals.registry import get_functional
from ..solver.box import Box
from .encoder import CompiledProblem, compile_problem, encode
from .regions import RegionRecord, VerificationReport
from .verifier import Verifier, VerifierConfig


def _verify_job(args) -> tuple[tuple[str, str], VerificationReport]:
    key, reports = _verify_chunk((args[0], args[1], [args[2]]))
    return key, reports[0]


def _verify_chunk(args) -> tuple[tuple[str, str], list[VerificationReport]]:
    """Verify a whole chunk of subdomains against one shipped problem.

    The payload (tapes or a pair to re-encode) is deserialized *once* per
    chunk, and one :class:`Verifier` -- hence one solver with its warm
    per-formula contractor cache -- runs every box in the chunk, instead
    of paying the unpickle + cache-rebuild cost per subdomain.
    """
    payload, config, bounds_list = args
    if isinstance(payload, CompiledProblem):
        problem = payload
        key = (problem.functional_name, problem.condition_id)
    else:
        functional_name, condition_id = payload
        functional = get_functional(functional_name)
        condition = get_condition(condition_id)
        problem = encode(functional, condition)
        key = (functional_name, condition_id)
    verifier = Verifier(config)
    reports = [
        verifier.verify(
            problem, domain=Box.from_bounds(bounds) if bounds is not None else None
        )
        for bounds in bounds_list
    ]
    return key, reports


def verify_pairs_parallel(
    pairs,
    config: VerifierConfig | None = None,
    max_workers: int | None = None,
    precompile: bool = False,
) -> dict[tuple[str, str], VerificationReport]:
    """Verify many (functional, condition) pairs across worker processes.

    With ``precompile=True`` the parent encodes and tape-compiles every
    pair up front and ships flat tapes to the workers; otherwise each
    worker re-encodes its own pair (parallelising the symbolic encoding,
    which pays off when encoding itself is the bottleneck, e.g. SCAN).
    """
    config = config or VerifierConfig()
    if precompile:
        if config.specialize_boxes:
            raise ValueError(
                "precompile=True is incompatible with specialize_boxes: box "
                "specialisation needs expression-level residuals in the worker"
            )
        jobs = [(compile_problem(encode(f, c)), config, None) for f, c in pairs]
    else:
        jobs = [((f.name, c.cid), config, None) for f, c in pairs]
    results: dict[tuple[str, str], VerificationReport] = {}
    if max_workers == 1 or len(jobs) == 1:
        for job in jobs:
            key, report = _verify_job(job)
            results[key] = report
        return results
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        for key, report in pool.map(_verify_job, jobs):
            results[key] = report
    return results


def verify_domain_parallel(
    functional,
    condition,
    config: VerifierConfig | None = None,
    levels: int = 1,
    max_workers: int | None = None,
    chunk_size: int | None = None,
) -> VerificationReport:
    """Run Algorithm 1 on one pair with the domain pre-split for fan-out.

    ``levels`` applications of the all-dimension split produce
    ``2**(levels * dims)`` independent subdomains.  The merged report is
    equivalent to a sequential run whose first ``levels`` recursion levels
    were forced to split (the per-subdomain global budget is the full
    budget divided by the number of subdomains, keeping total work
    comparable).

    The pair is encoded *once* here and shipped to workers as compiled
    tapes -- workers no longer re-run the symbolic encoder per subdomain
    (unless ``config.specialize_boxes`` forces expression-level residuals).
    Subdomains are shipped in *chunks* of ``chunk_size`` boxes per job
    (default: spread evenly, four chunks per worker), so the payload is
    pickled once per chunk and each worker's solver keeps its warm
    contractor cache across the boxes of a chunk.
    """
    config = config or VerifierConfig()
    problem = encode(functional, condition)
    domain = problem.domain

    subdomains = [domain]
    for _ in range(levels):
        subdomains = [child for box in subdomains for child in box.split_all()]

    if config.global_step_budget is not None:
        per_budget = max(1, config.global_step_budget // len(subdomains))
        worker_config = replace(config, global_step_budget=per_budget)
    else:
        worker_config = config

    if config.specialize_boxes:
        payload: object = (functional.name, condition.cid)
    else:
        payload = compile_problem(problem)

    all_bounds = [
        {name: (iv.lo, iv.hi) for name, iv in box.items()} for box in subdomains
    ]
    if chunk_size is None:
        workers = max_workers or os.cpu_count() or 1
        chunk_size = max(1, -(-len(all_bounds) // (workers * 4)))
    chunks = [
        all_bounds[i : i + chunk_size] for i in range(0, len(all_bounds), chunk_size)
    ]
    jobs = [(payload, worker_config, chunk) for chunk in chunks]

    reports: list[VerificationReport] = []
    if max_workers == 1 or len(jobs) == 1:
        for job in jobs:
            reports.extend(_verify_chunk(job)[1])
    else:
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            for _, chunk_reports in pool.map(_verify_chunk, jobs):
                reports.extend(chunk_reports)

    merged = VerificationReport(
        functional_name=functional.name,
        condition_id=condition.cid,
        domain=domain,
        records=[],
    )
    for report in reports:
        offset = len(merged.records)
        for record in report.records:
            merged.records.append(
                RegionRecord(
                    index=record.index + offset,
                    depth=record.depth + levels,
                    box=record.box,
                    outcome=record.outcome,
                    model=record.model,
                    children=[c + offset for c in record.children],
                    solver_steps=record.solver_steps,
                )
            )
        merged.total_solver_steps += report.total_solver_steps
        merged.elapsed_seconds = max(merged.elapsed_seconds, report.elapsed_seconds)
        merged.budget_exhausted = merged.budget_exhausted or report.budget_exhausted
    return merged
