"""Process-parallel verification drivers.

Both drivers are now thin wrappers over the campaign engine
(:mod:`repro.verifier.campaign`), which schedules every work unit through
one shared process pool with dynamic work-stealing -- workers pull the
next chunk from a shared queue as they finish, instead of being handed a
static partition up front:

* :func:`verify_pairs_parallel` -- one campaign cell per DFA-condition
  pair (Table I is 31 independent jobs);
* :func:`verify_domain_parallel` -- one pair with the domain pre-split
  into ``2**(levels * dims)`` subdomain units that fan out across the
  pool; the merged report is stitched back into the equivalent
  sequential region tree.

Expression DAGs are interned per process and deliberately never pickled.
Cells ship either a (functional name, condition id) pair that the worker
re-encodes locally, or -- the fast path -- tape-compiled problems:
instruction tapes are flat picklable data, so the parent encodes/compiles
*once* and workers skip symbolic encoding entirely.  Subdomain units are
dispatched in chunks so the payload is unpickled once per chunk and the
worker-side solver keeps its warm contractor caches across every box of
the chunk.
"""

from __future__ import annotations

import os

from .campaign import run_campaign
from .regions import VerificationReport
from .verifier import VerifierConfig


def verify_pairs_parallel(
    pairs,
    config: VerifierConfig | None = None,
    max_workers: int | None = None,
    precompile: bool = False,
) -> dict[tuple[str, str], VerificationReport]:
    """Verify many (functional, condition) pairs across worker processes.

    With ``precompile=True`` the parent encodes and tape-compiles every
    pair up front and ships flat tapes to the workers; otherwise each
    worker re-encodes its own pair (parallelising the symbolic encoding,
    which pays off when encoding itself is the bottleneck, e.g. SCAN).

    Passing the same pair twice is de-duplicated up front; two *distinct*
    functional/condition objects colliding on one (name, cid) key raise
    ``ValueError`` instead of silently overwriting each other's result.
    """
    config = config or VerifierConfig()
    if precompile and config.specialize_boxes:
        raise ValueError(
            "precompile=True is incompatible with specialize_boxes: box "
            "specialisation needs expression-level residuals in the worker"
        )
    result = run_campaign(
        pairs,
        config,
        max_workers=max_workers,
        precompile=precompile,
    )
    if result.interrupted:
        # the campaign engine absorbs SIGINT for resumability; this driver
        # has no store, so a partial dict would just masquerade as complete
        raise KeyboardInterrupt
    return result.reports


def verify_domain_parallel(
    functional,
    condition,
    config: VerifierConfig | None = None,
    levels: int = 1,
    max_workers: int | None = None,
    chunk_size: int | None = None,
) -> VerificationReport:
    """Run Algorithm 1 on one pair with the domain pre-split for fan-out.

    ``levels`` applications of the all-dimension split produce
    ``2**(levels * dims)`` independent subdomain units.  The merged report
    is equivalent to a sequential run whose first ``levels`` recursion
    levels were forced to split (the per-unit global budget is the full
    budget divided by the number of subdomains, keeping total work
    comparable).

    Units are dispatched in chunks of ``chunk_size`` (default: four
    chunks per worker) through the campaign engine's shared queue, so a
    worker that drew cheap subdomains pulls more work instead of idling
    behind a static partition.
    """
    config = config or VerifierConfig()
    n_units = 2 ** (levels * len(functional.variables))
    if chunk_size is None:
        workers = max_workers or os.cpu_count() or 1
        chunk_size = max(1, -(-n_units // (workers * 4)))
    result = run_campaign(
        [(functional, condition)],
        config,
        max_workers=max_workers,
        presplit_levels=levels,
        unit_chunk_size=chunk_size,
    )
    if result.interrupted:
        raise KeyboardInterrupt
    return result.reports[(functional.name, condition.cid)]
