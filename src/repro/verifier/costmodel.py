"""Cost-model-driven adaptive scheduling for campaign workloads.

Every campaign cell lands in the store with ``elapsed_seconds`` and
``compile_seconds``, and until now nothing read them back: chunks
dispatched in submission order and ``presplit_levels``/``steal_depth``
were single global knobs regardless of how skewed a (functional x
condition) pair set is.  This module closes that loop:

* :class:`CostModel` -- a persistence-backed cost predictor.  Warmed
  from a :class:`~repro.verifier.store.CampaignStore`'s timing history
  (per (functional, condition) aggregates via
  :meth:`~repro.verifier.store.CampaignStore.iter_timings`), with a
  deterministic structural **prior** for cold starts: lifted operation
  counts x a log-compressed domain volume.  Predictions are pure
  functions of the store bytes and the registry -- byte-stable across
  processes -- and they never enter ``semantic_key``/content hashes:
  a warmer model may *order* work differently, never change results.
* :class:`SchedulingPolicy` -- turns predictions into scheduling
  decisions: (a) **longest-predicted-first** chunk dispatch order, a
  pure permutation of the static submission order (the stitched reports
  are bit-identical; ``tests/verifier/test_costmodel.py`` pins it);
  (b) per-pair ``presplit_levels``/``steal_depth``: pairs predicted
  expensive relative to the campaign's median are pre-split deep enough
  that work-stealing has grain to pull, cheap pairs stay whole and skip
  the split overhead.  Per-pair knobs flow into each cell's content key
  exactly like the global knobs always have (they alter report layout,
  see :func:`~repro.verifier.campaign.pair_content_key`), so the store
  stays sound; classification output (Table I symbols) is unchanged and
  the adaptive-makespan benchmark pins the rendered tables byte-identical
  to the static path.

The service's QoS lanes (``service/scheduler.py``) are the third
consumer: interactive jobs preempt batch sweeps at cell granularity.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field

from ..conditions.catalog import get_condition
from ..functionals.registry import get_functional

__all__ = [
    "CostModel",
    "PairTiming",
    "SchedulingPolicy",
    "SplitPlan",
    "aggregate_timings",
]

#: bump when the prior's functional form changes (predictions are
#: advisory -- this version never enters any content hash; it only keys
#: caches of predictions, should anyone build one)
PRIOR_VERSION = 1

#: per-axis domain widths are clamped before entering the volume feature:
#: a half-open physical axis (rs up to 1e4) must not drown the operation
#: count that actually dominates solve cost
_WIDTH_CLAMP = 64.0

#: prior scale, seconds per (operation x log-volume) unit -- the absolute
#: magnitude only matters when mixing prior and learned predictions in
#: one ranking, so it is set to the observed order of magnitude of the
#: quick-budget campaigns rather than tuned per machine
_PRIOR_SECONDS_PER_UNIT = 2e-4


# ---------------------------------------------------------------------------
# timing aggregation
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PairTiming:
    """Aggregate of one (functional, condition) pair's stored cells."""

    count: int
    total_seconds: float
    mean_seconds: float
    p99_seconds: float
    compile_seconds: float
    total_solver_steps: int

    @property
    def compile_share(self) -> float:
        """Fraction of wall time spent compiling (0 when nothing ran)."""
        if self.total_seconds <= 0.0:
            return 0.0
        return min(1.0, self.compile_seconds / self.total_seconds)


def _p99(sorted_values: list[float]) -> float:
    """Nearest-rank p99 over an ascending list (deterministic)."""
    rank = max(1, math.ceil(0.99 * len(sorted_values)))
    return sorted_values[rank - 1]


def aggregate_timings(rows) -> dict[tuple[str, str], PairTiming]:
    """Fold :meth:`CampaignStore.iter_timings` rows into per-pair stats.

    Sums run in store order and quantiles over sorted copies, so the
    result is a pure function of the store contents -- two processes
    reading the same file produce bit-identical aggregates.
    """
    elapsed: dict[tuple[str, str], list[float]] = {}
    compile_s: dict[tuple[str, str], float] = {}
    steps: dict[tuple[str, str], int] = {}
    for row in rows:
        key = (row["functional"], row["condition"])
        elapsed.setdefault(key, []).append(row["elapsed_seconds"])
        compile_s[key] = compile_s.get(key, 0.0) + row["compile_seconds"]
        steps[key] = steps.get(key, 0) + row["total_solver_steps"]
    out: dict[tuple[str, str], PairTiming] = {}
    for key, values in elapsed.items():
        ascending = sorted(values)
        out[key] = PairTiming(
            count=len(values),
            total_seconds=math.fsum(values),
            mean_seconds=math.fsum(values) / len(values),
            p99_seconds=_p99(ascending),
            compile_seconds=compile_s[key],
            total_solver_steps=steps[key],
        )
    return out


# ---------------------------------------------------------------------------
# the predictor
# ---------------------------------------------------------------------------

class CostModel:
    """Predict a campaign cell's wall-clock cost from history or a prior.

    ``history`` maps ``(functional_name, condition_id)`` to
    :class:`PairTiming`; :meth:`from_store` builds it from a campaign
    store's verify-cell timings.  Pairs without history fall back to the
    structural prior.  All predictions are deterministic floats -- no
    clocks, no randomness -- so scheduling decisions derived from a given
    store are reproducible across processes and machines.
    """

    def __init__(self, history: dict[tuple[str, str], PairTiming] | None = None):
        self.history: dict[tuple[str, str], PairTiming] = dict(history or {})

    @classmethod
    def from_store(cls, store) -> "CostModel":
        """Warm a model from a store (object, or a path opened read-only).

        A path that does not exist yet yields a cold model (all-prior
        predictions) without creating the file -- ``--adaptive`` before
        the first ``--store`` run must not litter empty stores around.
        """
        from .store import CampaignStore, open_store

        if isinstance(store, CampaignStore):
            return cls(aggregate_timings(store.iter_timings()))
        if store is None or not os.path.exists(str(store)):
            return cls()
        opened = open_store(store)
        try:
            return cls(aggregate_timings(opened.iter_timings()))
        finally:
            opened.close()

    def stats(self, functional_name: str, condition_id: str) -> PairTiming | None:
        return self.history.get((functional_name, condition_id))

    # -- verification pairs ------------------------------------------------
    def predict_pair(self, functional, condition) -> float:
        """Predicted seconds for one (functional, condition) verify cell."""
        functional, condition = _resolve(functional, condition)
        timing = self.history.get((functional.name, condition.cid))
        if timing is not None and timing.count > 0:
            return timing.mean_seconds
        return self.prior_pair(functional, condition)

    def prior_pair(self, functional, condition) -> float:
        """Deterministic cold-start prior: operation count x log-volume.

        Features: the functional's lifted operation counts (the paper's
        size metric -- SCAN-sized pairs dominate exactly because their
        expressions are big), the clamped domain volume (more box to
        split), and a small bump for exchange-touching conditions (they
        pull in the exchange component on X+C functionals).
        """
        functional, condition = _resolve(functional, condition)
        ops = sum(functional.complexity().values()) or 1
        if condition.requires_exchange and functional.has_exchange:
            ops += functional.complexity().get("exchange", 0)
        return _PRIOR_SECONDS_PER_UNIT * ops * _log_volume(functional.domain())

    # -- numerics cells ----------------------------------------------------
    #: relative weight of each analysis kind: sensitivity sweeps a dense
    #: grid, hazards run budgeted solver searches per site, continuity
    #: bisects a sparse boundary sample
    CHECK_WEIGHT = {"continuity": 1.0, "hazards": 2.0, "sensitivity": 4.0}

    def predict_cell(
        self, functional, component: str, check: str, semantics: str
    ) -> float:
        """Predicted seconds for one numerics analysis cell.

        Analysis payloads deliberately carry no timings (they are
        compared bit-exactly between the campaign and the sequential
        path), so this is prior-only: the same structural features as
        :meth:`prior_pair`, scaled by the check kind.
        """
        if isinstance(functional, str):
            functional = get_functional(functional)
        weight = self.CHECK_WEIGHT.get(check, 1.0)
        ops = sum(functional.complexity().values()) or 1
        return _PRIOR_SECONDS_PER_UNIT * weight * ops * _log_volume(
            functional.domain()
        )


def _resolve(functional, condition):
    if isinstance(functional, str):
        functional = get_functional(functional)
    if isinstance(condition, str):
        condition = get_condition(condition)
    return functional, condition


def _log_volume(domain) -> float:
    volume = 1.0
    for _name, interval in domain.items():
        volume *= 1.0 + min(interval.hi - interval.lo, _WIDTH_CLAMP)
    return 1.0 + math.log2(volume)


# ---------------------------------------------------------------------------
# the policy
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SplitPlan:
    """One pair's scheduling decision: predicted cost + effective knobs."""

    predicted_seconds: float
    presplit_levels: int
    steal_depth: int


@dataclass(frozen=True)
class SchedulingPolicy:
    """Cost-model-driven replacement for the static scheduling knobs.

    ``adaptive_order`` sorts cell dispatch longest-predicted-first (a
    pure permutation -- reports stay bit-identical to submission order).
    ``adaptive_split`` picks ``presplit_levels``/``steal_depth`` per
    pair: a pair predicted at least ``expensive_ratio`` x the campaign's
    median cost (and above ``min_split_seconds`` absolute) is pre-split
    deep enough that ``2**(levels*dims)`` units cover the worker pool,
    and given ``steal_depth >= 1`` so runtime splits near the root spill
    back to the shared queue; everything else stays whole.  With one
    worker (or in-process) splitting is pure overhead, so every pair
    keeps the campaign's base knobs.

    Decisions are deterministic functions of (model, pair set, worker
    count) -- no clocks -- and therefore reproducible.
    """

    model: CostModel = field(default_factory=CostModel)
    adaptive_order: bool = True
    adaptive_split: bool = True
    expensive_ratio: float = 4.0
    min_split_seconds: float = 0.05
    max_presplit: int = 2
    max_steal_depth: int = 2

    def plan_pairs(
        self,
        entries,
        *,
        workers: int,
        base_presplit: int = 0,
        base_steal: int = 0,
    ) -> dict[tuple[str, str], SplitPlan]:
        """Scheduling decisions for ``entries`` of (key, functional, condition).

        ``workers`` is the effective pool width the campaign will run
        on.  The returned map carries every pair's predicted cost even
        when ``adaptive_split`` is off (ordering still wants it).
        """
        predicted = {
            key: self.model.predict_pair(functional, condition)
            for key, functional, condition in entries
        }
        split_on = self.adaptive_split and workers > 1 and len(predicted) > 0
        threshold = math.inf
        if split_on:
            costs = sorted(predicted.values())
            median = costs[(len(costs) - 1) // 2]
            threshold = max(self.expensive_ratio * median, self.min_split_seconds)
        plans: dict[tuple[str, str], SplitPlan] = {}
        for key, functional, _condition in entries:
            cost = predicted[key]
            if split_on and cost >= threshold:
                dims = max(1, len(functional.domain()))
                levels = max(1, math.ceil(math.log2(max(2, workers)) / dims))
                plans[key] = SplitPlan(
                    predicted_seconds=cost,
                    presplit_levels=max(base_presplit, min(levels, self.max_presplit)),
                    steal_depth=max(base_steal, min(1 + levels, self.max_steal_depth)),
                )
            else:
                plans[key] = SplitPlan(
                    predicted_seconds=cost,
                    presplit_levels=base_presplit,
                    steal_depth=base_steal,
                )
        return plans

    def order(self, keys, predicted_seconds: dict) -> list:
        """Longest-predicted-first, submission order breaking ties.

        ``predicted_seconds`` maps each key to a float cost.  A stable
        sort on the negated prediction: equal predictions keep their
        relative submission order, so a cold (all-prior) model over a
        uniform pair set degenerates to exactly the static order.
        """
        if not self.adaptive_order:
            return list(keys)
        return sorted(keys, key=lambda key: -predicted_seconds[key])
