"""Vosko-Wilk(-Nusair) RPA parametrisation of LDA correlation.

This is the ``LDA_C_VWN_RPA`` functional from LibXC: the Pade fit of the
random-phase-approximation correlation energy of the uniform gas
(paramagnetic branch, zeta = 0).  An LDA, so the only input is rs.
"""

from __future__ import annotations

from ..pysym.intrinsics import atan, log, sqrt

# RPA fit parameters (paramagnetic), VWN 1980
A_VWN = 0.0310907
B_VWN = 13.0720
C_VWN = 42.7198
X0_VWN = -0.409286


def eps_c_vwn_rpa(rs):
    """VWN RPA correlation energy per particle (zeta = 0), in Hartree."""
    x = sqrt(rs)
    X = x * x + B_VWN * x + C_VWN
    X0 = X0_VWN * X0_VWN + B_VWN * X0_VWN + C_VWN
    Q = sqrt(4.0 * C_VWN - B_VWN * B_VWN)
    at = atan(Q / (2.0 * x + B_VWN))
    return A_VWN * (
        log(x * x / X)
        + (2.0 * B_VWN / Q) * at
        - (B_VWN * X0_VWN / X0)
        * (log((x - X0_VWN) * (x - X0_VWN) / X) + (2.0 * (B_VWN + 2.0 * X0_VWN) / Q) * at)
    )
