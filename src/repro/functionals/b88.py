"""Becke 1988 exchange (B88), the empirical GGA exchange of BLYP/B3LYP.

B88 corrects the LDA exchange with a term enforcing the exact -1/r
asymptotics of the exchange energy density, with a single parameter
beta = 0.0042 fitted to Hartree-Fock exchange energies of noble-gas
atoms -- the empirical design style of Section I of the paper.

In reduced variables (zeta = 0) the per-spin gradient variable is
``x = |grad n_sigma| / n_sigma^(4/3) = 2 (6 pi^2)^(1/3) s`` and

    F_x(s) = 1 + (beta / A_x) x^2 / (1 + 6 beta x asinh(x)),

with A_x = (3/2)(3/(4 pi))^(1/3) the per-spin LDA exchange constant.
The small-s expansion F_x = 1 + 0.2743 s^2 + ... reproduces the PW91
gradient coefficient, which the unit tests check.

``asinh`` is not a solver primitive; the model code writes it as
``log(x + sqrt(x^2 + 1))``, which the symbolic executor inlines -- the
same treatment the paper's XCEncoder applies to Maple's ``arcsinh``.
"""

from __future__ import annotations

from ..pysym.intrinsics import log, pi, sqrt
from .lda_x import eps_x_unif

#: Becke's fitted gradient-correction strength
BETA_B88 = 0.0042

#: per-spin gradient variable in terms of s (zeta = 0): x = XS_B88 * s
XS_B88 = 2.0 * (6.0 * pi**2) ** (1.0 / 3.0)

#: per-spin LDA exchange constant A_x = (3/2)(3/(4 pi))^(1/3)
AX_SPIN = 1.5 * (3.0 / (4.0 * pi)) ** (1.0 / 3.0)


def asinh(u):
    """Inverse hyperbolic sine in solver primitives."""
    return log(u + sqrt(u * u + 1.0))


def fx_b88(s):
    """B88 exchange enhancement factor F_x(s)."""
    x = XS_B88 * s
    return 1.0 + (BETA_B88 / AX_SPIN) * x * x / (1.0 + 6.0 * BETA_B88 * x * asinh(x))


def eps_x_b88(rs, s):
    """B88 exchange energy per particle."""
    return eps_x_unif(rs) * fx_b88(s)
