"""Wigner's interpolation for LDA correlation.

The oldest correlation DFA (Wigner 1934, constants as in the common
modern restatement): a one-term Pade interpolation between the high- and
low-density limits of the uniform gas.  Included as the simplest possible
empirical LDA -- a useful smoke test for the whole pipeline (its
conditions are all decidable almost instantly) and a floor for the solver
complexity scale that SCAN tops.
"""

from __future__ import annotations

#: Wigner interpolation constants (Hartree / bohr units)
A_WIG = 0.44
B_WIG = 7.8


def eps_c_wigner(rs):
    """Wigner correlation energy per particle, in Hartree."""
    return -A_WIG / (rs + B_WIG)
