"""Armiento-Mattsson 2005 (AM05) GGA exchange and correlation (zeta = 0).

AM05 interpolates between the uniform gas and the Airy gas (surface-like)
regimes with the switching function X(s) = 1/(1 + alpha s^2).  The Airy
local-airy-approximation (LAA) exchange enhancement involves the Lambert W
function -- the transcendental that makes AM05's exchange-side conditions
(the Lieb-Oxford pair, EC4/EC5) the hard cases of Table I.

The raw LAA base term F_b = (pi/3) s / (xi (d + xi^2)^(1/4)) with
xi = ((3/2) W(s^(3/2) / (2 sqrt 6)))^(2/3) is a 0/0 at s = 0; we use the
equivalent regular form obtained from W e^W = z  =>  z / W = e^W:

    s / xi = ((4 sqrt 6 / 3) * e^(W(z)))^(2/3),   z = s^(3/2) / (2 sqrt 6),

which evaluates to (pi/3)/d^(1/4)-normalised 1 at s = 0 by construction of
the constant d.
"""

from __future__ import annotations

from ..pysym.intrinsics import exp, lambertw, sqrt
from .lda_x import eps_x_unif
from .pw92 import eps_c_pw92

ALPHA_AM05 = 2.804
C_AM05 = 0.7168
GAMMA_AM05 = 0.8098
D_AM05 = 28.23705740248932

_PI = 3.141592653589793
_TWO_SQRT6 = 2.0 * 6.0**0.5
_FOUR_SQRT6_OVER_3 = 4.0 * 6.0**0.5 / 3.0


def _xx(s):
    """AM05 interpolation index X(s) in [0, 1]."""
    return 1.0 / (1.0 + ALPHA_AM05 * s * s)


def fx_am05(s):
    """AM05 exchange enhancement factor."""
    z = s * sqrt(s) / _TWO_SQRT6
    w = lambertw(z)
    xi = (1.5 * w) ** (2.0 / 3.0)
    s_over_xi = (_FOUR_SQRT6_OVER_3 * exp(w)) ** (2.0 / 3.0)
    fb = (_PI / 3.0) * s_over_xi / ((D_AM05 + xi * xi) ** 0.25)
    cs2 = C_AM05 * s * s
    flaa = (cs2 + 1.0) / (cs2 / fb + 1.0)
    x = _xx(s)
    return x + (1.0 - x) * flaa


def eps_x_am05(rs, s):
    """AM05 exchange energy per particle."""
    return eps_x_unif(rs) * fx_am05(s)


def eps_c_am05(rs, s):
    """AM05 correlation energy per particle (zeta = 0)."""
    x = _xx(s)
    return eps_c_pw92(rs) * (x + (1.0 - x) * GAMMA_AM05)
