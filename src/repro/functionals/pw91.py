"""Perdew-Wang 1991 GGA exchange and correlation (zeta = 0).

PW91 is the direct predecessor of PBE: a non-empirical GGA derived from
the real-space cutoff of the exchange-correlation hole.  PBE was designed
as a simplification of it, so the two agree closely over the physical
range of (rs, s) -- a relation the unit tests exploit.  Its functional
form is considerably busier than PBE's (asinh terms in the exchange, a
second gradient term H1 with a Rasolt-Geldart coefficient function in the
correlation), which makes it a good mid-complexity data point between PBE
and SCAN on the solver-difficulty scale.

Forms follow the published PW91 appendix; ``asinh`` is spelled with
log/sqrt as in :mod:`repro.functionals.b88`.
"""

from __future__ import annotations

from ..pysym.intrinsics import exp, log, pi
from .b88 import asinh
from .lda_x import eps_x_unif
from .pw92 import eps_c_pw92
from .vars import T2C

# --- exchange constants (PW91 F_x Pade fit) -----------------------------------
AX1 = 0.19645
AX2 = 7.7956  # = 2 (6 pi^2)^(1/3), the per-spin x/s conversion
AX3 = 0.2743
AX4 = 0.1508
AX5 = 0.004

# --- correlation constants ------------------------------------------------------
ALPHA_C = 0.09
#: nu = (16 / pi) (3 pi^2)^(1/3)
NU_C = (16.0 / pi) * (3.0 * pi**2) ** (1.0 / 3.0)
CC0 = 0.004235
CX = -0.001667
#: beta of the H0 term, beta = nu * Cc(0)
BETA_C = NU_C * CC0


def fx_pw91(s):
    """PW91 exchange enhancement factor F_x(s)."""
    s2 = s * s
    a = AX1 * s * asinh(AX2 * s)
    num = 1.0 + a + (AX3 - AX4 * exp(-100.0 * s2)) * s2
    den = 1.0 + a + AX5 * s2 * s2
    return num / den


def eps_x_pw91(rs, s):
    """PW91 exchange energy per particle."""
    return eps_x_unif(rs) * fx_pw91(s)


def cc_pw91(rs):
    """Rasolt-Geldart gradient coefficient C_c(rs) (Pade fit).

    C_c(0) = 0.001667 + 0.002568 = 0.004235 = CC0.
    """
    num = 0.002568 + 0.023266 * rs + 7.389e-6 * rs * rs
    den = 1.0 + 8.723 * rs + 0.472 * rs * rs + 0.07389 * rs * rs * rs
    return 0.001667 + num / den


def eps_c_pw91(rs, s):
    """PW91 correlation energy per particle (zeta = 0).

    eps_c = eps_c^PW92 + H0 + H1 with

    * H0 the resummed gradient term (same shape as PBE's H, different
      constants: alpha = 0.09, beta = nu Cc(0)),
    * H1 = nu (Cc(rs) - Cc(0) - 3 Cx / 7) t^2 exp(-100 s^2), the
      short-wavelength correction PBE later dropped.
    """
    s2 = s * s
    eps_lda = eps_c_pw92(rs)
    t2 = T2C * s2 / rs
    A = (2.0 * ALPHA_C / BETA_C) / (
        exp(-2.0 * ALPHA_C * eps_lda / (BETA_C * BETA_C)) - 1.0
    )
    num = t2 + A * t2 * t2
    den = 1.0 + A * t2 + A * A * t2 * t2
    h0 = (BETA_C * BETA_C / (2.0 * ALPHA_C)) * log(
        1.0 + (2.0 * ALPHA_C / BETA_C) * num / den
    )
    h1 = NU_C * (cc_pw91(rs) - CC0 - 3.0 * CX / 7.0) * t2 * exp(-100.0 * s2)
    return eps_lda + h0 + h1
