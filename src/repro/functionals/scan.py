"""SCAN meta-GGA exchange and correlation (zeta = 0).

SCAN (Sun, Ruzsinszky & Perdew, PRL 2015) is "strongly constrained and
appropriately normed": built to satisfy all 17 known exact constraints.
It is also, by a wide margin, the most complex functional of the study --
the LibXC implementation exceeds a thousand operations -- and the paper
reports that the solver times out on *every* SCAN condition.

Inputs are (rs, s, alpha) with the iso-orbital indicator alpha treated as
an independent coordinate as in Pederson & Burke.  The switching functions
f_x(alpha) and f_c(alpha) are genuinely piecewise (different analytic forms
for alpha < 1 and alpha > 1, agreeing at alpha = 1): this is the
if-then-else case the paper's symbolic executor must handle.
"""

from __future__ import annotations

from ..pysym.intrinsics import exp, log, sqrt
from .lda_x import eps_x_unif
from .pw92 import eps_c_pw92
from .vars import T2C

# --- exchange constants ------------------------------------------------------
MU_AK = 10.0 / 81.0
K1 = 0.065
B2 = (5913.0 / 405000.0) ** 0.5
B1 = (511.0 / 13500.0) / (2.0 * B2)
B3 = 0.5
B4 = MU_AK**2 / K1 - 1606.0 / 18225.0 - B1**2
A1 = 4.9479
C1X = 0.667
C2X = 0.8
DX = 1.24
H0X = 1.174

# --- correlation constants -----------------------------------------------------
B1C = 0.0285764
B2C = 0.0889
B3C = 0.125541
C1C = 0.64
C2C = 1.5
DC = 0.7
GAMMA_C = 0.031090690869654895
BETA0 = 0.066724550603149220
CHI_INF = 0.12802585262625815  # zeta = 0


def f_alpha_x(alpha):
    """SCAN exchange switching function f_x(alpha) (piecewise).

    The switch point alpha = 1 (where both analytic branches tend to 0) is
    guarded explicitly, and the alpha > 1 branch is written as
    ``exp(-c2x/(alpha-1))`` (equal to the published ``exp(c2x/(1-alpha))``)
    so IEEE evaluation near the switch gives the correct limit 0 instead
    of overflowing -- the kind of ad-hoc numerical-robustness rewrite
    Section VI-C of the paper discusses.
    """
    if alpha == 1.0:
        return 0.0
    if alpha < 1.0:
        return exp(-C1X * alpha / (1.0 - alpha))
    return -DX * exp(-C2X / (alpha - 1.0))


def f_alpha_c(alpha):
    """SCAN correlation switching function f_c(alpha) (piecewise)."""
    if alpha == 1.0:
        return 0.0
    if alpha < 1.0:
        return exp(-C1C * alpha / (1.0 - alpha))
    return -DC * exp(-C2C / (alpha - 1.0))


def fx_scan(s, alpha):
    """SCAN exchange enhancement factor F_x(s, alpha)."""
    s2 = s * s
    # h1x: the GGA-like enhancement along alpha = 1
    wx = MU_AK * s2 * (1.0 + (B4 * s2 / MU_AK) * exp(-B4 * s2 / MU_AK))
    vx = B1 * s2 + B2 * (1.0 - alpha) * exp(-B3 * (1.0 - alpha) * (1.0 - alpha))
    x = wx + vx * vx
    h1x = 1.0 + K1 - K1 / (1.0 + x / K1)
    gx = 1.0 - exp(-A1 / (s ** 0.5))
    return (h1x + f_alpha_x(alpha) * (H0X - h1x)) * gx


def eps_x_scan(rs, s, alpha):
    """SCAN exchange energy per particle."""
    return eps_x_unif(rs) * fx_scan(s, alpha)


def eps_c_scan(rs, s, alpha):
    """SCAN correlation energy per particle (zeta = 0)."""
    s2 = s * s
    # -- single-orbital limit (alpha = 0 end), eps_c^0 = eps_c^LDA0 + H0
    eps_lda0 = -B1C / (1.0 + B2C * sqrt(rs) + B3C * rs)
    w0 = exp(-eps_lda0 / B1C) - 1.0
    ginf = (1.0 + 4.0 * CHI_INF * s2) ** (-0.25)
    h0 = B1C * log(1.0 + w0 * (1.0 - ginf))
    eps_c0 = eps_lda0 + h0

    # -- slowly-varying limit (alpha = 1 end), eps_c^1 = eps_c^PW92 + H1
    eps_lsda = eps_c_pw92(rs)
    w1 = exp(-eps_lsda / GAMMA_C) - 1.0
    beta_rs = BETA0 * (1.0 + 0.1 * rs) / (1.0 + 0.1778 * rs)
    t2 = T2C * s2 / rs
    y = beta_rs * t2 / (GAMMA_C * w1)
    gy = (1.0 + 4.0 * y) ** (-0.25)
    h1 = GAMMA_C * log(1.0 + w1 * (1.0 - gy))
    eps_c1 = eps_lsda + h1

    return eps_c1 + f_alpha_c(alpha) * (eps_c0 - eps_c1)
