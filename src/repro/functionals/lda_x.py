"""Uniform electron gas (LDA) exchange, the denominator of all enhancement
factors: F_xc = eps_xc / eps_x^unif (Equation 2 of the paper)."""

from __future__ import annotations

from .vars import CX_RS


def eps_x_unif(rs):
    """Exchange energy per particle of the uniform gas, in Hartree.

    eps_x^unif(n) = -(3/4) (3 n / pi)^(1/3)  ==  -CX_RS / rs.
    """
    return -CX_RS / rs
