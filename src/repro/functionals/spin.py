"""Spin-polarised substrate: LDA exchange/correlation at zeta != 0.

The paper verifies LibXC's *spin-resolved* implementations; our reduced
forms follow Pederson & Burke's zeta = 0 scans (DESIGN.md, deviation 1).
This module supplies the spin machinery itself so the gap is a choice of
scan axis, not a missing substrate:

* the relative spin polarisation ``zeta = (n_up - n_down) / n`` as a
  model-code input (:data:`ZETA`, domain [-1, 1]);
* **exact spin scaling of exchange**:
  ``eps_x(rs, zeta) = eps_x(rs) * ((1+zeta)^(4/3) + (1-zeta)^(4/3)) / 2``
  -- an identity of the exact functional, i.e. itself one of the "exact
  conditions" the paper's program targets;
* the **full PW92 correlation** ``eps_c(rs, zeta)``: the published
  three-fit interpolation (paramagnetic, ferromagnetic, spin stiffness)
  with the standard f(zeta) weight;
* the **VWN-style interpolation** helpers shared by that family.

Everything is plain liftable model code, so the delta-complete solver can
verify spin conditions too (the tests prove Ec non-positivity over the
full (rs, zeta) box with ICP).
"""

from __future__ import annotations

from ..expr.nodes import Var
from ..pysym.intrinsics import log, sqrt
from .lda_x import eps_x_unif

#: relative spin polarisation, in [-1, 1] (NOT tagged non-negative)
ZETA = Var("zeta")

#: f''(0) = 8 / (9 (2^(4/3) - 2)), the curvature normaliser of f(zeta)
FPP0 = 8.0 / (9.0 * (2.0 ** (4.0 / 3.0) - 2.0))

#: 2^(1/3) - the ferromagnetic exchange enhancement
TWO_13 = 2.0 ** (1.0 / 3.0)

# PW92 fit parameters: (A, alpha1, beta1, beta2, beta3, beta4)
# paramagnetic eps_c(rs, 0)
PW92_PARA = (0.031091, 0.21370, 7.5957, 3.5876, 1.6382, 0.49294)
# ferromagnetic eps_c(rs, 1)
PW92_FERRO = (0.015545, 0.20548, 14.1189, 6.1977, 3.3662, 0.62517)
# minus the spin stiffness, -alpha_c(rs)
PW92_STIFF = (0.016887, 0.11125, 10.357, 3.6231, 0.88026, 0.49671)


def f_zeta(zeta):
    """PW92/VWN spin interpolation weight f(zeta).

    f(zeta) = ((1+zeta)^(4/3) + (1-zeta)^(4/3) - 2) / (2^(4/3) - 2);
    f(0) = 0, f(+-1) = 1.  Enters both the exchange spin scaling (through
    its parent form) and the correlation interpolation.
    """
    opz = (1.0 + zeta) ** (4.0 / 3.0)
    omz = (1.0 - zeta) ** (4.0 / 3.0)
    return (opz + omz - 2.0) / (2.0 ** (4.0 / 3.0) - 2.0)


def exchange_spin_factor(zeta):
    """((1+zeta)^(4/3) + (1-zeta)^(4/3)) / 2: exact exchange spin scaling."""
    opz = (1.0 + zeta) ** (4.0 / 3.0)
    omz = (1.0 - zeta) ** (4.0 / 3.0)
    return 0.5 * (opz + omz)


def eps_x_unif_spin(rs, zeta):
    """Uniform-gas exchange energy per particle at polarisation zeta.

    Exact: follows from the spin-scaling identity
    E_x[n_up, n_down] = (E_x[2 n_up] + E_x[2 n_down]) / 2.
    """
    return eps_x_unif(rs) * exchange_spin_factor(zeta)


def _g_pw92(rs, A, alpha1, beta1, beta2, beta3, beta4):
    """The PW92 G function: -2A(1 + a1 rs) ln(1 + 1/(2A (b1 x + ...)))."""
    rs12 = sqrt(rs)
    rs32 = rs * rs12
    denom = 2.0 * A * (beta1 * rs12 + beta2 * rs + beta3 * rs32 + beta4 * rs * rs)
    return -2.0 * A * (1.0 + alpha1 * rs) * log(1.0 + 1.0 / denom)


def eps_c_pw92_para(rs):
    """PW92 paramagnetic branch eps_c(rs, 0) (same fit as pw92.eps_c_pw92)."""
    return _g_pw92(rs, 0.031091, 0.21370, 7.5957, 3.5876, 1.6382, 0.49294)


def eps_c_pw92_ferro(rs):
    """PW92 ferromagnetic branch eps_c(rs, 1)."""
    return _g_pw92(rs, 0.015545, 0.20548, 14.1189, 6.1977, 3.3662, 0.62517)


def minus_alpha_c_pw92(rs):
    """PW92 fit of -alpha_c(rs).

    The G form is negative with positive parameters, so PW92 fit the
    *negated* stiffness: alpha_c(rs) = -G(rs) > 0, which is what makes
    eps_c(rs, zeta) rise toward zero as |zeta| grows.
    """
    return _g_pw92(rs, 0.016887, 0.11125, 10.357, 3.6231, 0.88026, 0.49671)


def eps_c_pw92_spin(rs, zeta):
    """Full PW92 correlation energy per particle at polarisation zeta.

    eps_c(rs, zeta) = eps_c(rs, 0)
                    + alpha_c(rs) * f(zeta)/f''(0) * (1 - zeta^4)
                    + [eps_c(rs, 1) - eps_c(rs, 0)] * f(zeta) * zeta^4.
    """
    e0 = eps_c_pw92_para(rs)
    e1 = eps_c_pw92_ferro(rs)
    mac = minus_alpha_c_pw92(rs)
    f = f_zeta(zeta)
    z4 = zeta * zeta * zeta * zeta
    return e0 - mac * (f / FPP0) * (1.0 - z4) + (e1 - e0) * f * z4
