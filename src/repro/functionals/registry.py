"""Registry of the functionals evaluated in the paper (Section IV-A).

Five DFAs covering the rungs LDA / GGA / meta-GGA and both design
categories (empirical vs non-empirical):

* PBE      -- popular non-empirical GGA (exchange + correlation),
* SCAN     -- fully constrained non-empirical meta-GGA (X + C),
* LYP      -- empirical correlation GGA (key part of BLYP/B3LYP),
* AM05     -- non-empirical GGA designed for surfaces/solids (X + C),
* VWN RPA  -- LDA correlation (RPA parametrisation).

The registry is intentionally open: LibXC has 500+ functionals and the
paper's future-work section aims at covering them all; adding one here is
one model module plus one :func:`register` call.
"""

from __future__ import annotations

from .am05 import eps_c_am05, eps_x_am05
from .b88 import eps_x_b88
from .base import Functional
from .lyp import eps_c_lyp
from .pbe import eps_c_pbe, eps_x_pbe
from .pbe_variants import eps_c_pbesol, eps_c_revpbe, eps_x_pbesol, eps_x_revpbe
from .pw91 import eps_c_pw91, eps_x_pw91
from .pz81 import eps_c_pz81
from .rppscan import eps_c_rppscan, eps_x_rppscan
from .rscan import eps_c_rscan, eps_x_rscan
from .scan import eps_c_scan, eps_x_scan
from .vwn5 import eps_c_vwn5
from .vwn_rpa import eps_c_vwn_rpa
from .wigner import eps_c_wigner

_REGISTRY: dict[str, Functional] = {}


def register(functional: Functional) -> Functional:
    key = functional.name.lower()
    if key in _REGISTRY:
        raise ValueError(f"functional {functional.name!r} already registered")
    _REGISTRY[key] = functional
    return functional


def get_functional(name: str) -> Functional:
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown functional {name!r} (known: {known})") from None


def all_functionals() -> tuple[Functional, ...]:
    return tuple(_REGISTRY[k] for k in sorted(_REGISTRY))


def paper_functionals() -> tuple[Functional, ...]:
    """The five DFAs of the paper, in Table I column order."""
    return tuple(get_functional(n) for n in ("PBE", "LYP", "AM05", "SCAN", "VWN RPA"))


PBE = register(
    Functional(
        name="PBE",
        family="GGA",
        category="non-empirical",
        exchange_model=eps_x_pbe,
        correlation_model=eps_c_pbe,
    )
)

SCAN = register(
    Functional(
        name="SCAN",
        family="MGGA",
        category="non-empirical",
        exchange_model=eps_x_scan,
        correlation_model=eps_c_scan,
    )
)

LYP = register(
    Functional(
        name="LYP",
        family="GGA",
        category="empirical",
        correlation_model=eps_c_lyp,
    )
)

AM05 = register(
    Functional(
        name="AM05",
        family="GGA",
        category="non-empirical",
        exchange_model=eps_x_am05,
        correlation_model=eps_c_am05,
    )
)

VWN_RPA = register(
    Functional(
        name="VWN RPA",
        family="LDA",
        category="non-empirical",
        correlation_model=eps_c_vwn_rpa,
    )
)

# ---------------------------------------------------------------------------
# Beyond the paper's evaluation: the Section VI-A/VI-B outlook functionals.
# These demonstrate the "scale to 500+ functionals" workflow; none of them
# enters paper_functionals(), so the Table I / Table II harnesses are
# unchanged.
# ---------------------------------------------------------------------------

RSCAN = register(
    Functional(
        name="rSCAN",
        family="MGGA",
        category="non-empirical",
        exchange_model=eps_x_rscan,
        correlation_model=eps_c_rscan,
    )
)

RPPSCAN = register(
    Functional(
        name="r++SCAN",
        family="MGGA",
        category="non-empirical",
        exchange_model=eps_x_rppscan,
        correlation_model=eps_c_rppscan,
    )
)

PW91 = register(
    Functional(
        name="PW91",
        family="GGA",
        category="non-empirical",
        exchange_model=eps_x_pw91,
        correlation_model=eps_c_pw91,
    )
)

PBESOL = register(
    Functional(
        name="PBEsol",
        family="GGA",
        category="non-empirical",
        exchange_model=eps_x_pbesol,
        correlation_model=eps_c_pbesol,
    )
)

REVPBE = register(
    Functional(
        name="revPBE",
        family="GGA",
        category="empirical",  # kappa fitted to atomic exchange energies
        exchange_model=eps_x_revpbe,
        correlation_model=eps_c_revpbe,
    )
)

BLYP = register(
    Functional(
        name="BLYP",
        family="GGA",
        category="empirical",
        exchange_model=eps_x_b88,
        correlation_model=eps_c_lyp,
    )
)

PZ81 = register(
    Functional(
        name="PZ81",
        family="LDA",
        category="non-empirical",
        correlation_model=eps_c_pz81,
    )
)

VWN5 = register(
    Functional(
        name="VWN5",
        family="LDA",
        category="non-empirical",
        correlation_model=eps_c_vwn5,
    )
)

WIGNER = register(
    Functional(
        name="Wigner",
        family="LDA",
        category="empirical",
        correlation_model=eps_c_wigner,
    )
)
