"""Functional objects: lifted symbolic forms plus compiled numeric kernels.

A :class:`Functional` bundles a DFA's model code (plain Python, see the
sibling modules) with everything the verifier and the PB baseline need:

* symbolic expressions for eps_x / eps_c, lifted once by the symbolic
  executor (the XCEncoder front end),
* the exchange/correlation enhancement factors F_x, F_c, F_xc of
  Equation 2 of the paper (F = eps / eps_x^unif),
* compiled NumPy kernels for grid evaluation,
* the PB input domain for the functional's family.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable

from ..expr import builder as b
from ..expr.codegen import compile_numpy
from ..expr.nodes import Expr, Var
from ..pysym import lift
from ..solver.box import Box
from . import vars as V
from .lda_x import eps_x_unif


@dataclass(frozen=True)
class Functional:
    """A density functional approximation over reduced inputs.

    Attributes
    ----------
    name:
        Display name (as in Table I of the paper).
    family:
        ``"LDA"``, ``"GGA"`` or ``"MGGA"`` -- determines the input domain.
    category:
        ``"empirical"`` or ``"non-empirical"`` (design style, Section I).
    exchange_model / correlation_model:
        The Python model functions, taking the family's inputs in order
        (rs[, s[, alpha]]).  ``None`` when the component doesn't exist
        (LYP and VWN RPA are correlation-only in this study).
    """

    name: str
    family: str
    category: str
    exchange_model: Callable | None = None
    correlation_model: Callable | None = None

    def __post_init__(self):
        if self.family not in ("LDA", "GGA", "MGGA"):
            raise ValueError(f"unknown family {self.family!r}")
        if self.category not in ("empirical", "non-empirical"):
            raise ValueError(f"unknown category {self.category!r}")

    # -- inputs -----------------------------------------------------------------
    @property
    def variables(self) -> tuple[Var, ...]:
        if self.family == "LDA":
            return (V.RS,)
        if self.family == "GGA":
            return (V.RS, V.S)
        return (V.RS, V.S, V.ALPHA)

    def domain(self) -> Box:
        """The PB/paper input domain for this functional's family."""
        bounds: dict[str, tuple[float, float]] = {"rs": (V.RS_LO, V.RS_HI)}
        if self.family in ("GGA", "MGGA"):
            bounds["s"] = (V.S_LO, V.S_HI)
        if self.family == "MGGA":
            bounds["alpha"] = (V.ALPHA_LO, V.ALPHA_HI)
        return Box.from_bounds(bounds)

    @property
    def has_exchange(self) -> bool:
        return self.exchange_model is not None

    @property
    def has_correlation(self) -> bool:
        return self.correlation_model is not None

    # -- symbolic forms ------------------------------------------------------------
    def eps_x(self) -> Expr:
        """Lifted exchange energy per particle (symbolic)."""
        if not self.has_exchange:
            raise ValueError(f"{self.name} has no exchange component")
        return _lift_cached(self.exchange_model, self.variables)

    def eps_c(self) -> Expr:
        """Lifted correlation energy per particle (symbolic)."""
        if not self.has_correlation:
            raise ValueError(f"{self.name} has no correlation component")
        return _lift_cached(self.correlation_model, self.variables)

    def fx(self) -> Expr:
        """Exchange enhancement factor F_x = eps_x / eps_x^unif."""
        return b.div(self.eps_x(), _eps_x_unif_expr())

    def fc(self) -> Expr:
        """Correlation enhancement factor F_c = eps_c / eps_x^unif.

        Since eps_x^unif = -CX_RS/rs < 0 this is
        F_c = -(rs / CX_RS) * eps_c, so F_c >= 0 iff eps_c <= 0 (EC1).
        """
        return b.div(self.eps_c(), _eps_x_unif_expr())

    def fxc(self) -> Expr:
        """Total enhancement factor F_xc = F_x + F_c (Equation 2)."""
        return b.add(self.fx(), self.fc())

    # -- numeric kernels -------------------------------------------------------------
    def fc_kernel(self) -> Callable:
        """Compiled NumPy kernel for F_c with argument order (rs[, s[, alpha]])."""
        return _kernel_cached(self.fc(), self.variables)

    def fx_kernel(self) -> Callable:
        return _kernel_cached(self.fx(), self.variables)

    def fxc_kernel(self) -> Callable:
        return _kernel_cached(self.fxc(), self.variables)

    def eps_c_kernel(self) -> Callable:
        return _kernel_cached(self.eps_c(), self.variables)

    def complexity(self) -> dict[str, int]:
        """Operation counts of the lifted components (paper's size metric)."""
        out: dict[str, int] = {}
        if self.has_exchange:
            out["exchange"] = self.eps_x().operation_count()
        if self.has_correlation:
            out["correlation"] = self.eps_c().operation_count()
        return out

    def __repr__(self) -> str:  # pragma: no cover
        parts = [self.family, self.category]
        if self.has_exchange:
            parts.append("X")
        if self.has_correlation:
            parts.append("C")
        return f"Functional({self.name}: {', '.join(parts)})"


# Lifting and compiling are pure functions of (model, variables); cache them
# at module scope so Functional can stay a frozen dataclass.

@lru_cache(maxsize=None)
def _lift_cached(model: Callable, variables: tuple[Var, ...]) -> Expr:
    return lift(model, *variables)


@lru_cache(maxsize=None)
def _eps_x_unif_expr() -> Expr:
    return lift(eps_x_unif, V.RS)


_KERNELS: dict[tuple[int, tuple[Var, ...]], Callable] = {}


def _kernel_cached(expr: Expr, variables: tuple[Var, ...]) -> Callable:
    key = (id(expr), variables)
    kernel = _KERNELS.get(key)
    if kernel is None:
        kernel = compile_numpy(expr, arg_order=variables)
        _KERNELS[key] = kernel
    return kernel
