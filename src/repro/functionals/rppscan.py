"""r++SCAN: rSCAN's interpolation with the r2SCAN-style alpha regularisation.

Second step of the progression the paper's Section VI-A proposes as
future verification targets (rSCAN, r++SCAN, r2SCAN, r4SCAN).  Furness et
al. (2020/2022) observed that rSCAN's ``alpha' = alpha^3/(alpha^2 + e)``
regularisation damages the uniform-density limit, and replaced it with

    alpha~ = (tau - tau_W) / (tau_unif + eta * tau_W),   eta = 1e-3,

which in our reduced variables (tau_W / tau_unif = (5/3) s^2) is

    alpha~ = alpha / (1 + eta * (5/3) s^2).

r++SCAN is exactly rSCAN with alpha' replaced by alpha~: same degree-7
interpolation polynomial, same exponential tail, same exchange and
correlation bodies.  (The r2SCAN/r4SCAN gradient-expansion restoration
terms are a further, separate modification and are out of scope; see
DESIGN.md.)  Unlike rSCAN's alpha', the alpha~ regularisation couples s
into the switching function, so the verifier sees a genuinely
two-dimensional guard -- a harder ITE shape than rSCAN's.
"""

from __future__ import annotations

from ..pysym.intrinsics import exp, log, sqrt
from .lda_x import eps_x_unif
from .pw92 import eps_c_pw92
from .rscan import _f_poly, _f_poly_c
from .scan import (
    A1,
    B1,
    B1C,
    B2,
    B2C,
    B3,
    B3C,
    B4,
    BETA0,
    C2C,
    C2X,
    CHI_INF,
    DC,
    DX,
    GAMMA_C,
    H0X,
    K1,
    MU_AK,
)
from .vars import T2C

#: tau_W damping strength in the regularised indicator
ETA_RPP = 1e-3

#: (5/3): tau_W / tau_unif = (5/3) s^2
FIVE_THIRDS = 5.0 / 3.0


def alpha_tilde(s, alpha):
    """Regularised iso-orbital indicator alpha~ = alpha / (1 + eta (5/3) s^2)."""
    return alpha / (1.0 + ETA_RPP * FIVE_THIRDS * s * s)


def f_alpha_x_rpp(s, alpha):
    """r++SCAN exchange switching function (polynomial + tail, alpha~ input)."""
    a = alpha_tilde(s, alpha)
    if a < 2.5:
        return _f_poly(a)
    return -DX * exp(-C2X / abs(a - 1.0))


def f_alpha_c_rpp(s, alpha):
    """r++SCAN correlation switching function."""
    a = alpha_tilde(s, alpha)
    if a < 2.5:
        return _f_poly_c(a)
    return -DC * exp(-C2C / abs(a - 1.0))


def fx_rppscan(s, alpha):
    """r++SCAN exchange enhancement factor (SCAN body, alpha~ switch)."""
    s2 = s * s
    wx = MU_AK * s2 * (1.0 + (B4 * s2 / MU_AK) * exp(-B4 * s2 / MU_AK))
    vx = B1 * s2 + B2 * (1.0 - alpha) * exp(-B3 * (1.0 - alpha) * (1.0 - alpha))
    x = wx + vx * vx
    h1x = 1.0 + K1 - K1 / (1.0 + x / K1)
    gx = 1.0 - exp(-A1 / (s**0.5))
    return (h1x + f_alpha_x_rpp(s, alpha) * (H0X - h1x)) * gx


def eps_x_rppscan(rs, s, alpha):
    """r++SCAN exchange energy per particle."""
    return eps_x_unif(rs) * fx_rppscan(s, alpha)


def eps_c_rppscan(rs, s, alpha):
    """r++SCAN correlation energy per particle (zeta = 0)."""
    s2 = s * s
    eps_lda0 = -B1C / (1.0 + B2C * sqrt(rs) + B3C * rs)
    w0 = exp(-eps_lda0 / B1C) - 1.0
    ginf = (1.0 + 4.0 * CHI_INF * s2) ** (-0.25)
    h0 = B1C * log(1.0 + w0 * (1.0 - ginf))
    eps_c0 = eps_lda0 + h0

    eps_lsda = eps_c_pw92(rs)
    w1 = exp(-eps_lsda / GAMMA_C) - 1.0
    beta_rs = BETA0 * (1.0 + 0.1 * rs) / (1.0 + 0.1778 * rs)
    t2 = T2C * s2 / rs
    y = beta_rs * t2 / (GAMMA_C * w1)
    gy = (1.0 + 4.0 * y) ** (-0.25)
    h1 = GAMMA_C * log(1.0 + w1 * (1.0 - gy))
    eps_c1 = eps_lsda + h1

    return eps_c1 + f_alpha_c_rpp(s, alpha) * (eps_c0 - eps_c1)
