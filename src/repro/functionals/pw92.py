"""Perdew-Wang 1992 parametrisation of the uniform-gas correlation energy.

Used as the LDA limit inside both PBE and SCAN correlation and for AM05's
local part (spin-unpolarised branch, zeta = 0).
"""

from __future__ import annotations

from ..pysym.intrinsics import log, sqrt

# PW92 zeta=0 fit parameters
A_PW = 0.0310907
ALPHA1 = 0.21370
BETA1 = 7.5957
BETA2 = 3.5876
BETA3 = 1.6382
BETA4 = 0.49294


def eps_c_pw92(rs):
    """PW92 correlation energy per particle of the uniform gas (zeta = 0)."""
    rs12 = sqrt(rs)
    rs32 = rs * rs12
    denom = 2.0 * A_PW * (BETA1 * rs12 + BETA2 * rs + BETA3 * rs32 + BETA4 * rs * rs)
    return -2.0 * A_PW * (1.0 + ALPHA1 * rs) * log(1.0 + 1.0 / denom)
