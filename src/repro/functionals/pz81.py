"""Perdew-Zunger 1981 parametrisation of LDA correlation.

PZ81 fits the Ceperley-Alder QMC energies of the uniform gas with *two
different analytic forms* glued at rs = 1: a Pade form for the low-density
side (rs >= 1) and the RPA-derived logarithmic expansion for the
high-density side (rs < 1).  Section VI-C of the paper calls this out
explicitly: the published constants make the two branches meet only
approximately, leaving a small discontinuity of the correlation energy at
the matching point -- the canonical example of the "numerical issues with
DFAs" the paper proposes to analyse next.  Our value jump at rs = 1 is
~3.3e-5 Hartree (see :mod:`repro.numerics.continuity`).

The branch switch is genuine if-then-else model code, lifted to an
:class:`~repro.expr.nodes.Ite` term by the symbolic executor.
"""

from __future__ import annotations

from ..pysym.intrinsics import log, sqrt

# low-density (rs >= 1) Pade fit, zeta = 0
GAMMA_PZ = -0.1423
BETA1_PZ = 1.0529
BETA2_PZ = 0.3334

# high-density (rs < 1) expansion, zeta = 0
A_PZ = 0.0311
B_PZ = -0.048
C_PZ = 0.0020
D_PZ = -0.0116

#: the matching point of the two analytic branches
RS_MATCH = 1.0


def eps_c_pz81(rs):
    """PZ81 correlation energy per particle (zeta = 0), in Hartree."""
    if rs < RS_MATCH:
        return A_PZ * log(rs) + B_PZ + C_PZ * rs * log(rs) + D_PZ * rs
    return GAMMA_PZ / (1.0 + BETA1_PZ * sqrt(rs) + BETA2_PZ * rs)


def eps_c_pz81_high_density(rs):
    """The rs < 1 branch on its own (used by the continuity analysis)."""
    return A_PZ * log(rs) + B_PZ + C_PZ * rs * log(rs) + D_PZ * rs


def eps_c_pz81_low_density(rs):
    """The rs >= 1 branch on its own (used by the continuity analysis)."""
    return GAMMA_PZ / (1.0 + BETA1_PZ * sqrt(rs) + BETA2_PZ * rs)
