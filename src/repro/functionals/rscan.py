"""Regularized SCAN (rSCAN-style), the paper's Section VI-A outlook.

The paper closes by noting that SCAN defeats the solver, and that the
literature offers a progression -- rSCAN, r++SCAN, r2SCAN, r4SCAN --
"designed with different adherence to exact conditions to improve the
numerical stability of the original SCAN functional", proposing them as a
"fascinating use case" for verification.  This module implements that use
case: a regularized SCAN in the style of Bartok & Yates (2019) / Furness
et al. (2020):

* the iso-orbital indicator is regularised,
  ``alpha' = alpha^3 / (alpha^2 + alpha_r)`` with ``alpha_r = 1e-3``;
* the switching function's essential singularity at alpha = 1 is replaced
  for ``alpha' < 2.5`` by the published degree-7 interpolation polynomial
  (exact at f(0) = 1 and f(1) = 0), keeping the exponential tail
  ``-d exp(c2/(1 - alpha'))`` for ``alpha' >= 2.5``.

Exchange and correlation each use their own published interpolation
coefficients (the polynomials are constructed to meet the respective
exponential tail at alpha' = 2.5, so each channel is continuous at the
crossover).  The exchange/correlation bodies (h1x, gx, eps_c0/eps_c1) are
shared with SCAN -- the regularisation only touches the alpha channel,
which is exactly where SCAN's verification difficulty (nested exp of a
pole) lives.  The `rscan_vs_scan` ablation bench measures how much easier
the solver's job becomes.
"""

from __future__ import annotations

from ..pysym.intrinsics import exp, log, sqrt
from .lda_x import eps_x_unif
from .pw92 import eps_c_pw92
from .scan import (
    A1,
    B1,
    B1C,
    B2,
    B2C,
    B3,
    B3C,
    B4,
    BETA0,
    C2C,
    C2X,
    CHI_INF,
    DC,
    DX,
    GAMMA_C,
    H0X,
    K1,
    MU_AK,
)
from .vars import T2C

#: regularisation constant for the iso-orbital indicator
ALPHA_R = 1e-3

#: degree-7 interpolation coefficients (c0..c7) of the regularised
#: exchange switching function; constructed so f(0) = 1 and f(1) = 0
#: exactly and the exponential tail is met at alpha' = 2.5
FP0 = 1.0
FP1 = -0.667
FP2 = -0.4445555
FP3 = -0.663086601049
FP4 = 1.451297044490
FP5 = -0.887998041597
FP6 = 0.234528941479
FP7 = -0.023185843322

#: tuple view of the exchange coefficients for tests/inspection
F_ALPHA_POLY = (FP0, FP1, FP2, FP3, FP4, FP5, FP6, FP7)

#: degree-7 interpolation coefficients of the *correlation* switching
#: function (its tail constants differ, so it needs its own polynomial to
#: stay continuous at the alpha' = 2.5 crossover)
FC0 = 1.0
FC1 = -0.64
FC2 = -0.4352
FC3 = -1.535685604549
FC4 = 3.061560252175
FC5 = -1.915710236206
FC6 = 0.516884468372
FC7 = -0.051848879792

#: tuple view of the correlation coefficients for tests/inspection
F_ALPHA_POLY_C = (FC0, FC1, FC2, FC3, FC4, FC5, FC6, FC7)


def alpha_prime(alpha):
    """Regularised iso-orbital indicator alpha' = a^3/(a^2 + alpha_r)."""
    return alpha * alpha * alpha / (alpha * alpha + ALPHA_R)


def _f_poly(a):
    """The degree-7 exchange interpolation polynomial (Horner form).

    Written with scalar constants (no tuple indexing) so it stays inside
    the symbolic executor's supported subset -- DFA model code "does not
    contain loops, arrays, etc." (paper, Section III-A).
    """
    return FP0 + a * (
        FP1 + a * (FP2 + a * (FP3 + a * (FP4 + a * (FP5 + a * (FP6 + a * FP7)))))
    )


def _f_poly_c(a):
    """The degree-7 correlation interpolation polynomial (Horner form)."""
    return FC0 + a * (
        FC1 + a * (FC2 + a * (FC3 + a * (FC4 + a * (FC5 + a * (FC6 + a * FC7)))))
    )


def f_alpha_x_rscan(alpha):
    """rSCAN exchange switching function (polynomial + exponential tail).

    The tail is written with ``abs(a - 1)``: identical to ``a - 1`` on its
    own region (a >= 2.5) while staying bounded when the branch is
    evaluated outside it -- the IEEE-totality idiom discussed in the
    paper's Section VI-C, which the compiled kernels and DAG evaluation
    both rely on.
    """
    a = alpha_prime(alpha)
    if a < 2.5:
        return _f_poly(a)
    return -DX * exp(-C2X / abs(a - 1.0))


def f_alpha_c_rscan(alpha):
    """rSCAN correlation switching function."""
    a = alpha_prime(alpha)
    if a < 2.5:
        return _f_poly_c(a)
    return -DC * exp(-C2C / abs(a - 1.0))


def fx_rscan(s, alpha):
    """rSCAN exchange enhancement factor.

    Same body as SCAN with the switching function swapped: we recover
    F_x(s, alpha) = h1x + f(alpha)(h0x - h1x) times gx by removing SCAN's
    own switch and adding ours (both multiply the same (h0x - h1x) gap).
    """
    s2 = s * s
    wx = MU_AK * s2 * (1.0 + (B4 * s2 / MU_AK) * exp(-B4 * s2 / MU_AK))
    vx = B1 * s2 + B2 * (1.0 - alpha) * exp(-B3 * (1.0 - alpha) * (1.0 - alpha))
    x = wx + vx * vx
    h1x = 1.0 + K1 - K1 / (1.0 + x / K1)
    gx = 1.0 - exp(-A1 / (s**0.5))
    return (h1x + f_alpha_x_rscan(alpha) * (H0X - h1x)) * gx


def eps_x_rscan(rs, s, alpha):
    """rSCAN exchange energy per particle."""
    return eps_x_unif(rs) * fx_rscan(s, alpha)


def eps_c_rscan(rs, s, alpha):
    """rSCAN correlation energy per particle (zeta = 0).

    Shares SCAN's eps_c0/eps_c1 bodies; only the interpolation changes.
    """
    s2 = s * s
    eps_lda0 = -B1C / (1.0 + B2C * sqrt(rs) + B3C * rs)
    w0 = exp(-eps_lda0 / B1C) - 1.0
    ginf = (1.0 + 4.0 * CHI_INF * s2) ** (-0.25)
    h0 = B1C * log(1.0 + w0 * (1.0 - ginf))
    eps_c0 = eps_lda0 + h0

    eps_lsda = eps_c_pw92(rs)
    w1 = exp(-eps_lsda / GAMMA_C) - 1.0
    beta_rs = BETA0 * (1.0 + 0.1 * rs) / (1.0 + 0.1778 * rs)
    t2 = T2C * s2 / rs
    y = beta_rs * t2 / (GAMMA_C * w1)
    gy = (1.0 + 4.0 * y) ** (-0.25)
    h1 = GAMMA_C * log(1.0 + w1 * (1.0 - gy))
    eps_c1 = eps_lsda + h1

    return eps_c1 + f_alpha_c_rscan(alpha) * (eps_c0 - eps_c1)
