"""Vosko-Wilk-Nusair "functional V" LDA correlation (the usual VWN).

Same Pade-of-atan analytic form as the RPA parametrisation in
:mod:`repro.functionals.vwn_rpa`, but fitted to the Ceperley-Alder QMC
energies rather than to RPA (paramagnetic branch, zeta = 0).  This is the
``LDA_C_VWN`` of LibXC and the correlation inside B3LYP.  Having both
parametrisations registered lets the analysis show that condition
verdicts are parametrisation-independent for this family while the
*regions* shift slightly.
"""

from __future__ import annotations

from ..pysym.intrinsics import atan, log, sqrt

# Ceperley-Alder fit parameters (paramagnetic), VWN 1980 functional V
A_VWN5 = 0.0310907
B_VWN5 = 3.72744
C_VWN5 = 12.9352
X0_VWN5 = -0.10498


def eps_c_vwn5(rs):
    """VWN5 correlation energy per particle (zeta = 0), in Hartree."""
    x = sqrt(rs)
    X = x * x + B_VWN5 * x + C_VWN5
    X0 = X0_VWN5 * X0_VWN5 + B_VWN5 * X0_VWN5 + C_VWN5
    Q = sqrt(4.0 * C_VWN5 - B_VWN5 * B_VWN5)
    at = atan(Q / (2.0 * x + B_VWN5))
    return A_VWN5 * (
        log(x * x / X)
        + (2.0 * B_VWN5 / Q) * at
        - (B_VWN5 * X0_VWN5 / X0)
        * (
            log((x - X0_VWN5) * (x - X0_VWN5) / X)
            + (2.0 * (B_VWN5 + 2.0 * X0_VWN5) / Q) * at
        )
    )
