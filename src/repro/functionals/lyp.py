"""Lee-Yang-Parr (LYP) correlation functional (zeta = 0).

LYP is the empirical DFA of the study: fitted to the helium atom, key
component of B3LYP/BLYP.  We use the Miehlich et al. reformulation (the
form implemented in LibXC's ``gga_c_lyp``), which eliminates the Laplacian
by partial integration, specialised to the closed-shell case
n_a = n_b = n/2, |grad n_a| = |grad n_b| = |grad n|/2:

    eps_c = -a / (1 + d q)
            - a b exp(-c q) / (1 + d q) * [ C_F - (3 + 7 delta)/18 *
                                            (3 pi^2)^(2/3) * s^2 ]

with q = n^(-1/3) = Q_RS * rs and delta = c q + d q / (1 + d q).

Note the positive s^2 term: for sufficiently large reduced gradients the
correlation energy turns *positive*, which is exactly the EC1
(non-positivity) violation the paper reports for LYP at s > ~1.66.
"""

from __future__ import annotations

from ..pysym.intrinsics import exp
from .vars import CF_TF, Q_RS, THREE_PI2_23

# LYP parameters (Colle-Salvetti fit)
A_LYP = 0.04918
B_LYP = 0.132
C_LYP = 0.2533
D_LYP = 0.349


def eps_c_lyp(rs, s):
    """LYP correlation energy per particle (zeta = 0), in Hartree."""
    q = Q_RS * rs
    dq = D_LYP * q
    delta = C_LYP * q + dq / (1.0 + dq)
    omega = exp(-C_LYP * q) / (1.0 + dq)
    grad_term = (3.0 + 7.0 * delta) / 18.0 * THREE_PI2_23 * s * s
    return -A_LYP / (1.0 + dq) - A_LYP * B_LYP * omega * (CF_TF - grad_term)
