"""Shared input variables and physical constants for DFA model code.

Following Pederson & Burke (and the paper), spin-unpolarised functionals
are expressed in the reduced variables

* ``rs``    -- Wigner-Seitz radius, ``rs = (4 pi n / 3)**(-1/3)``,
* ``s``     -- reduced density gradient,
  ``s = |grad n| / (2 (3 pi^2)**(1/3) n**(4/3))``,
* ``alpha`` -- iso-orbital indicator ``(tau - tau_W) / tau_unif`` for
  meta-GGAs (treated as an independent input, as in PB's scans).
"""

from __future__ import annotations

import math

from ..expr.nodes import Var

RS = Var("rs", nonneg=True)
S = Var("s", nonneg=True)
ALPHA = Var("alpha", nonneg=True)

#: exchange energy per particle of the uniform gas is -CX_RS / rs (Hartree)
CX_RS = 0.75 * (9.0 / (4.0 * math.pi**2)) ** (1.0 / 3.0)

#: t^2 = T2C * s^2 / rs relates the PBE/SCAN correlation variable t to (s, rs)
T2C = (math.pi / 4.0) * (9.0 * math.pi / 4.0) ** (1.0 / 3.0)

#: (3 pi^2)^(2/3), recurring gradient-expansion constant
THREE_PI2_23 = (3.0 * math.pi**2) ** (2.0 / 3.0)

#: (4 pi / 3)^(1/3): n^(-1/3) = Q_RS * rs
Q_RS = (4.0 * math.pi / 3.0) ** (1.0 / 3.0)

#: Thomas-Fermi kinetic constant C_F = (3/10) (3 pi^2)^(2/3)
CF_TF = 0.3 * THREE_PI2_23

#: Lieb-Oxford constant used by conditions EC4/EC5 (following PB)
C_LO = 2.27

#: paper/PB input domains
RS_LO, RS_HI = 1e-4, 5.0
S_LO, S_HI = 0.0, 5.0
ALPHA_LO, ALPHA_HI = 0.0, 5.0
