"""Perdew-Burke-Ernzerhof (PBE) GGA exchange and correlation (zeta = 0).

The workhorse non-empirical GGA.  Exchange uses the single-parameter
enhancement factor; correlation adds the gradient correction H on top of
the PW92 local part.
"""

from __future__ import annotations

from ..pysym.intrinsics import exp, log
from .lda_x import eps_x_unif
from .pw92 import eps_c_pw92
from .vars import T2C

# exchange constants
KAPPA = 0.804
MU = 0.2195149727645171

# correlation constants
GAMMA_PBE = 0.031090690869654895  # (1 - ln 2) / pi^2
BETA_PBE = 0.06672455060314922


def fx_pbe(s):
    """PBE exchange enhancement factor F_x(s)."""
    return 1.0 + KAPPA - KAPPA / (1.0 + MU * s * s / KAPPA)


def eps_x_pbe(rs, s):
    """PBE exchange energy per particle."""
    return eps_x_unif(rs) * fx_pbe(s)


def eps_c_pbe(rs, s):
    """PBE correlation energy per particle (zeta = 0).

    eps_c = eps_c^PW92(rs) + H(rs, t), with t^2 = T2C * s^2 / rs and
    H = gamma * ln(1 + (beta/gamma) t^2 (1 + A t^2)/(1 + A t^2 + A^2 t^4)).
    """
    eps_lda = eps_c_pw92(rs)
    t2 = T2C * s * s / rs
    A = (BETA_PBE / GAMMA_PBE) / (exp(-eps_lda / GAMMA_PBE) - 1.0)
    num = 1.0 + A * t2
    den = 1.0 + A * t2 + A * A * t2 * t2
    H = GAMMA_PBE * log(1.0 + (BETA_PBE / GAMMA_PBE) * t2 * num / den)
    return eps_lda + H
