"""PBE parameter variants: PBEsol and revPBE.

The PBE form is a family: published variants keep the rational
enhancement factor and the H gradient correction but move the two
parameters (mu, kappa) or the correlation beta:

* **PBEsol** (Perdew et al. 2008) restores the second-order gradient
  expansion for exchange (mu = 10/81) and refits beta = 0.046 for
  jellium surfaces -- the "solids" counterpart of PBE, non-empirical.
* **revPBE** (Zhang & Yang 1998) keeps PBE correlation and raises
  kappa to 1.245, *fitted to atomic exchange energies* -- which makes it
  empirical by the paper's classification, and pushes F_x beyond the
  Lieb-Oxford-motivated kappa <= 0.804 bound.  revPBE is therefore the
  interesting specimen for EC5: its F_x alone stays under C_LO = 2.27,
  but with less margin than PBE (max F_x = 2.245 vs 1.804).

Each variant is spelled out as its own model function (constants must be
module-level names for the symbolic executor; the duplication mirrors how
LibXC generates one Maple source per variant).
"""

from __future__ import annotations

from ..pysym.intrinsics import exp, log
from .lda_x import eps_x_unif
from .pbe import GAMMA_PBE, KAPPA, MU, eps_c_pbe
from .pw92 import eps_c_pw92
from .vars import T2C

# PBEsol parameters
MU_SOL = 10.0 / 81.0
BETA_SOL = 0.046

# revPBE parameter (Zhang & Yang 1998)
KAPPA_REV = 1.245


def fx_pbesol(s):
    """PBEsol exchange enhancement factor (PBE form, mu = 10/81)."""
    return 1.0 + KAPPA - KAPPA / (1.0 + MU_SOL * s * s / KAPPA)


def eps_x_pbesol(rs, s):
    """PBEsol exchange energy per particle."""
    return eps_x_unif(rs) * fx_pbesol(s)


def eps_c_pbesol(rs, s):
    """PBEsol correlation energy per particle (PBE form, beta = 0.046)."""
    eps_lda = eps_c_pw92(rs)
    t2 = T2C * s * s / rs
    A = (BETA_SOL / GAMMA_PBE) / (exp(-eps_lda / GAMMA_PBE) - 1.0)
    num = 1.0 + A * t2
    den = 1.0 + A * t2 + A * A * t2 * t2
    H = GAMMA_PBE * log(1.0 + (BETA_SOL / GAMMA_PBE) * t2 * num / den)
    return eps_lda + H


def fx_revpbe(s):
    """revPBE exchange enhancement factor (PBE form, kappa = 1.245)."""
    return 1.0 + KAPPA_REV - KAPPA_REV / (1.0 + MU * s * s / KAPPA_REV)


def eps_x_revpbe(rs, s):
    """revPBE exchange energy per particle."""
    return eps_x_unif(rs) * fx_revpbe(s)


#: revPBE reuses PBE correlation unchanged
eps_c_revpbe = eps_c_pbe
