"""Density functional approximations (the LibXC substitute).

Each functional module contains plain-Python *model code* in reduced
variables (rs, s, alpha); :class:`~repro.functionals.base.Functional`
lifts it symbolically and compiles numeric kernels.
"""

from .base import Functional
from .registry import (
    AM05,
    BLYP,
    LYP,
    PBE,
    PBESOL,
    PW91,
    PZ81,
    REVPBE,
    RPPSCAN,
    RSCAN,
    SCAN,
    VWN5,
    VWN_RPA,
    WIGNER,
    all_functionals,
    get_functional,
    paper_functionals,
    register,
)
from . import vars

__all__ = [
    "Functional", "AM05", "BLYP", "LYP", "PBE", "PBESOL", "PW91", "PZ81",
    "REVPBE", "RPPSCAN", "RSCAN", "SCAN", "VWN5", "VWN_RPA", "WIGNER",
    "all_functionals", "get_functional", "paper_functionals", "register",
    "vars",
]
