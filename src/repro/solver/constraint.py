"""Solver formulas: atoms, conjunctions, and delta-weakening.

The Verifier decides validity of ``forall x in D . psi(x)`` by checking
satisfiability of ``D /\\ not(psi)`` (Equations 11-12 of the paper).  This
module provides the normalised constraint objects for that encoding:

* :class:`Atom` -- a single inequality ``g(x) op 0``,
* :class:`Conjunction` -- a conjunction of atoms (the only connective the
  encoder needs: the negation of each local condition is a conjunction of
  one or two atoms),

plus delta-weakening, which converts ``g <= 0`` into ``g <= delta`` exactly
as in dReal's delta-complete decision framework.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..expr import builder as b
from ..expr.evaluator import evaluate
from ..expr.nodes import Expr, Rel


@dataclass(frozen=True)
class Atom:
    """A normalised inequality atom ``residual op 0``.

    ``op`` is one of ``<=``, ``<``, ``>=``, ``>``.  Strictness only matters
    for exact point validation; the interval tests treat strict and
    non-strict alike, as dReal's delta-weakening does.
    """

    residual: Expr
    op: str

    @classmethod
    def from_rel(cls, rel: Rel) -> "Atom":
        if rel.op == "==":
            raise ValueError("equality atoms are not used by the encoder")
        return cls(residual=rel.gap(), op=rel.op)

    def negate(self) -> "Atom":
        flip = {"<=": ">", "<": ">=", ">=": "<", ">": "<="}
        return Atom(residual=self.residual, op=flip[self.op])

    def normalized(self) -> "Atom":
        """Rewrite to ``residual' <= 0`` / ``residual' < 0`` form."""
        if self.op in ("<=", "<"):
            return self
        return Atom(residual=b.neg(self.residual), op="<=" if self.op == ">=" else "<")

    def holds_at(self, point: dict[str, float], tol: float = 0.0) -> bool:
        """Exact floating-point check at a point (NaN counts as failure)."""
        value = evaluate(self.residual, point)
        if math.isnan(value):
            return False
        if self.op == "<=":
            return value <= tol
        if self.op == "<":
            return value < tol
        if self.op == ">=":
            return value >= -tol
        return value > -tol

    def __repr__(self) -> str:  # pragma: no cover
        from ..expr.printer import to_str
        return f"Atom({to_str(self.residual, max_len=120)} {self.op} 0)"


@dataclass(frozen=True)
class Conjunction:
    """A conjunction of atoms, closed under normalisation."""

    atoms: tuple[Atom, ...]

    @classmethod
    def of(cls, *parts) -> "Conjunction":
        atoms: list[Atom] = []
        for part in parts:
            if isinstance(part, Conjunction):
                atoms.extend(part.atoms)
            elif isinstance(part, Atom):
                atoms.append(part)
            elif isinstance(part, Rel):
                atoms.append(Atom.from_rel(part))
            else:
                raise TypeError(f"cannot include {type(part).__name__} in formula")
        return cls(atoms=tuple(a.normalized() for a in atoms))

    def holds_at(self, point: dict[str, float], tol: float = 0.0) -> bool:
        return all(atom.holds_at(point, tol=tol) for atom in self.atoms)

    def max_operation_count(self) -> int:
        """Complexity proxy: the largest residual's operation count.

        The paper characterises functional difficulty by operation count
        (PBE correlation ~300 ops, SCAN >1000); budgets can scale on this.
        """
        return max((a.residual.operation_count() for a in self.atoms), default=0)

    def free_var_names(self) -> frozenset[str]:
        names: set[str] = set()
        for atom in self.atoms:
            names.update(v.name for v in atom.residual.free_vars())
        return frozenset(names)

    def __iter__(self):
        return iter(self.atoms)

    def __len__(self) -> int:
        return len(self.atoms)


def negate_condition(psi: Rel | tuple[Rel, ...]) -> Conjunction:
    """Build ``not(psi)`` as a conjunction, for single-atom conditions.

    All seven local conditions in the paper are single inequalities, so
    their negation is again a single atom.
    """
    if isinstance(psi, Rel):
        return Conjunction.of(Atom.from_rel(psi).negate())
    raise TypeError("local conditions are single relational atoms")
