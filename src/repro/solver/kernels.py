"""Whole-batch interval kernels for the tape VM's Pow/Func rows.

The batched tape executors (:meth:`repro.solver.tape.Tape.forward_batch`
and ``backward_batch``) promise every column bit-for-bit equal to the
per-box scalar executors, which in turn mirror the ``Interval`` methods.
That contract is easy for add/mul chains -- IEEE ``+``/``*`` and
``nextafter`` are deterministic -- but Pow and the transcendental table
historically dropped to per-column Python loops, because NumPy's SIMD
libm (exp, log, arctan, tanh, pow, cbrt) differs from CPython's libm in
the last ulp on this platform and a naive vectorisation would silently
break the contract (and with it the content-addressed result store,
whose keys deliberately exclude the execution backend).

This module closes that gap with a hybrid scheme, one kernel per row:

* **mask logic, directed rounding, case analysis** -- empties, sign
  splits, clamps, the one-ulp outward ``np.nextafter`` -- run as whole-
  row NumPy, replicating the scalar code's exact comparison structure
  (including Python's first-argument tie preference in ``max``/``min``
  and its treatment of signed zeros and NaN);
* **integer powers** run directed-rounding binary-exponentiation
  multiplication chains (`Interval.pow_int` uses the same chains for
  ``|n| <= _POW_CHAIN_MAX``), which are pure IEEE multiplies and hence
  bit-identical between scalar and vector;
* **sin/cos** run fully vectorised: ``np.sin``/``np.cos`` agree bitwise
  with ``math.sin``/``math.cos`` for the magnitudes the trig enclosure
  enumerates (|x| <= 2**20, far inside the verified 2**21 range), so the
  PR-4 critical-point enumeration lifts to arrays directly;
* **diverging transcendentals** (exp, log, pow with real exponent,
  atan, tanh, erf, cbrt, lambertw, and the backward tan/atanh/erfinv
  cores) keep CPython's libm by mapping the *exact scalar helper* over a
  plain-float list (``.tolist()`` + ``map``): ~65 ns/element for the
  libm core against ~1 us/element for the per-column ``Interval`` path,
  because all allocation, dispatch and mask work stays vectorised.

Inputs are 1-d float64 endpoint rows; every kernel returns fresh
``(lo, hi)`` rows with empty columns sealed to the canonical empty
encoding ``(+inf, -inf)``.  Garbage in already-empty input columns is
tolerated (sanitised before any partial libm core) and produces the
sealed empty, exactly as the scalar code's ``is_empty`` checks do.
"""

from __future__ import annotations

import math
from math import inf

import numpy as np

from ..scipy_compat import special
from .interval import (
    _POW_CHAIN_MAX,
    _TRIG_ENUM_MAX,
    _cbrt_scalar,
    _exp_scalar,
    _lambertw_scalar,
    _pow_scalar,
)

NINF = -inf
PINF = inf

_LAMBERTW_BRANCH = -1.0 / math.e
_TWO_PI = 2.0 * math.pi
_HALF_PI = math.pi / 2


# ---------------------------------------------------------------------------
# row primitives
# ---------------------------------------------------------------------------

def _down_arr(x: np.ndarray) -> np.ndarray:
    """Rowwise ``interval._down``: one ulp toward -inf, NaN to -inf.

    Like the scalar helper, ``+inf`` rounds down to the largest finite
    double -- callers that must keep an infinite endpoint guard it
    explicitly, exactly as the scalar code does.
    """
    out = np.nextafter(x, NINF)
    np.copyto(out, NINF, where=x != x)
    return out


def _up_arr(x: np.ndarray) -> np.ndarray:
    """Rowwise ``interval._up``: one ulp toward +inf, NaN to +inf."""
    out = np.nextafter(x, PINF)
    np.copyto(out, PINF, where=x != x)
    return out


def _pick_max(a, b) -> np.ndarray:
    """Python ``max(a, b)`` rowwise: b only when strictly greater.

    Ties (including ``-0.0`` vs ``0.0``) and NaN comparisons keep ``a``,
    matching the scalar builtins the ``Interval`` methods rely on.
    """
    return np.where(b > a, b, a)


def _pick_min(a, b) -> np.ndarray:
    """Python ``min(a, b)`` rowwise: b only when strictly smaller."""
    return np.where(b < a, b, a)


def _seal(lo: np.ndarray, hi: np.ndarray, empty: np.ndarray) -> None:
    """Force ``empty`` columns to the canonical empty encoding, in place."""
    np.copyto(lo, PINF, where=empty)
    np.copyto(hi, NINF, where=empty)


def _map(fn, arr: np.ndarray) -> np.ndarray:
    """Apply a scalar libm core elementwise on plain Python floats.

    The ``.tolist()`` round trip is what keeps the values bit-identical
    to the per-box executors: ``fn`` is the very function the scalar
    path calls, fed the very same doubles.  Callers sanitise columns
    whose value is overridden anyway (empty, clamped to an infinite
    endpoint) so partial cores never raise on garbage.
    """
    vals = arr.tolist()
    return np.fromiter(map(fn, vals), np.float64, count=len(vals))


def _mul_rows(alo, ahi, blo, bhi) -> tuple[np.ndarray, np.ndarray]:
    """Rowwise ``Interval.__mul__`` (same form as ``tape._mul_ep_batch``).

    Four endpoint products with NaN (0 * inf) cleaned to 0, min/max
    reduction, one-ulp outward rounding; the scalar sequential compares
    differ from the reduction only in the sign of a zero, which the
    rounding maps to the same neighbour.  Pairwise minimum/maximum over
    flat products beats a ``(4, n)`` stack-and-reduce, and ``nextafter``
    maps an infinite endpoint toward its own sign to itself, so the
    infinities survive the rounding without an explicit restore.
    """
    p0 = alo * blo
    p1 = alo * bhi
    p2 = ahi * blo
    p3 = ahi * bhi
    np.copyto(p0, 0.0, where=p0 != p0)
    np.copyto(p1, 0.0, where=p1 != p1)
    np.copyto(p2, 0.0, where=p2 != p2)
    np.copyto(p3, 0.0, where=p3 != p3)
    lo = np.minimum(np.minimum(p0, p1), np.minimum(p2, p3))
    hi = np.maximum(np.maximum(p0, p1), np.maximum(p2, p3))
    out_lo = np.nextafter(lo, NINF, out=lo)
    out_hi = np.nextafter(hi, PINF, out=hi)
    empty = ~((alo <= ahi) & (blo <= bhi))
    _seal(out_lo, out_hi, empty)
    return out_lo, out_hi


def _inverse_rows(vlo, vhi) -> tuple[np.ndarray, np.ndarray]:
    """Rowwise ``Interval.inverse`` (extended 1/x, all sign cases)."""
    empty = ~(vlo <= vhi) | ((vlo == 0.0) & (vhi == 0.0))
    inv_hi = 1.0 / vhi  # divide-by-zero saturates under errstate
    inv_lo = 1.0 / vlo
    lo = _down_arr(inv_hi)
    hi = _up_arr(inv_lo)
    np.copyto(lo, NINF, where=inv_hi == NINF)
    np.copyto(hi, PINF, where=inv_lo == PINF)
    # [0, b] -> [down(1/b), +inf]; [a, 0] -> [-inf, up(1/a)]
    np.copyto(hi, PINF, where=vlo == 0.0)
    np.copyto(lo, NINF, where=vhi == 0.0)
    # zero interior: hull of both branches is all of R
    straddle = (vlo < 0.0) & (vhi > 0.0)
    np.copyto(lo, NINF, where=straddle)
    np.copyto(hi, PINF, where=straddle)
    _seal(lo, hi, empty)
    return lo, hi


# ---------------------------------------------------------------------------
# integer powers: directed-rounding multiplication chains
# ---------------------------------------------------------------------------
# Mirrors interval._chain_down/_chain_up statement for statement; IEEE
# multiplication and nextafter are deterministic, so the rows agree with
# the scalar chains bit for bit.

def _chain_down_arr(x: np.ndarray, n: int) -> np.ndarray:
    acc = None
    base = x
    while True:
        if n & 1:
            acc = base if acc is None else _down_arr(acc * base)
        n >>= 1
        if not n:
            return acc
        base = _down_arr(base * base)


def _chain_up_arr(x: np.ndarray, n: int) -> np.ndarray:
    acc = None
    base = x
    while True:
        if n & 1:
            acc = base if acc is None else _up_arr(acc * base)
        n >>= 1
        if not n:
            return acc
        base = _up_arr(base * base)


def fwd_pow_int(alo, ahi, n: int):
    """Rowwise ``Interval.pow_int`` for ``|n| <= _POW_CHAIN_MAX``.

    Returns ``None`` for larger exponents (the caller falls back to the
    per-column libm path, matching the scalar method's own fallback).
    """
    if abs(n) > _POW_CHAIN_MAX:
        return None
    empty = ~(alo <= ahi)
    if n == 0:
        lo = np.ones_like(alo)
        hi = np.ones_like(ahi)
        _seal(lo, hi, empty)
        return lo, hi
    if n < 0:
        lo, hi = _pow_int_pos(alo, ahi, -n, empty)
        return _inverse_rows(lo, hi)
    return _pow_int_pos(alo, ahi, n, empty)


def _pow_int_pos(alo, ahi, n: int, empty) -> tuple[np.ndarray, np.ndarray]:
    # the scalar code chains each endpoint's magnitude, keeping -0.0
    # when the endpoint is -0.0 (it passes self.lo straight through on
    # the >= 0 branch); np.where(e >= 0, e, -e) reproduces that
    na = np.where(alo >= 0.0, alo, -alo)
    nb = np.where(ahi >= 0.0, ahi, -ahi)
    cd_a = _chain_down_arr(na, n)
    cu_a = _chain_up_arr(na, n)
    cd_b = _chain_down_arr(nb, n)
    cu_b = _chain_up_arr(nb, n)
    if n % 2 == 1:
        lo = np.where(alo >= 0.0, cd_a, -cu_a)
        hi = np.where(ahi >= 0.0, cu_b, -cd_b)
    else:
        # chain_up is monotone on [0, inf), so max of the chained
        # magnitudes equals the chain of the max magnitude bit for bit
        lo = np.where(alo >= 0.0, cd_a, np.where(ahi <= 0.0, cd_b, 0.0))
        hi = np.where(
            alo >= 0.0, cu_b, np.where(ahi <= 0.0, cu_a, np.maximum(cu_a, cu_b))
        )
    _seal(lo, hi, empty)
    return lo, hi


def fwd_pow_real(alo, ahi, p: float) -> tuple[np.ndarray, np.ndarray]:
    """Rowwise ``Interval.pow_real``: x**p on the domain x >= 0."""
    xlo = _pick_max(alo, 0.0)
    xhi = ahi
    empty = ~(alo <= ahi) | ~(xlo <= xhi)
    core = lambda v: _pow_scalar(v, p)  # noqa: E731 - bound per-row core
    if p > 0.0:
        lo = _down_arr(_map(core, xlo))
        hi = _up_arr(_map(core, xhi))
    else:
        # p < 0: decreasing on (0, inf); the scalar branches around the
        # endpoints math.pow would reject (0**neg raises), so the rows
        # pick the same infinities before the map sees those columns
        hi_p = np.where(xlo == 0.0, PINF, _map(core, np.where(xlo == 0.0, 1.0, xlo)))
        lo_p = np.where(xhi == PINF, 0.0, _map(core, np.where(xhi == PINF, 1.0, xhi)))
        lo = _down_arr(lo_p)
        hi = _up_arr(hi_p)
    _seal(lo, hi, empty)
    return lo, hi


# ---------------------------------------------------------------------------
# forward transcendental kernels (one per FUNC_NAMES entry)
# ---------------------------------------------------------------------------

def _fwd_exp(alo, ahi) -> tuple[np.ndarray, np.ndarray]:
    empty = ~(alo <= ahi)
    d = _down_arr(_map(_exp_scalar, alo))
    lo = np.where(d > 0.0, d, 0.0)  # max(0.0, _down(...)), ties -> 0.0
    hi = _up_arr(_map(_exp_scalar, ahi))
    _seal(lo, hi, empty)
    return lo, hi


def _fwd_log(alo, ahi) -> tuple[np.ndarray, np.ndarray]:
    xlo = _pick_max(alo, 0.0)
    xhi = ahi
    empty = ~(alo <= ahi) | ~(xlo <= xhi) | ((xlo == 0.0) & (xhi == 0.0))
    lo = np.where(
        xlo == 0.0,
        NINF,
        _down_arr(_map(math.log, np.where(xlo > 0.0, xlo, 1.0))),
    )
    hi = np.where(
        xhi == PINF,
        PINF,
        _up_arr(_map(math.log, np.where(xhi > 0.0, xhi, 1.0))),
    )
    _seal(lo, hi, empty)
    return lo, hi


def _fwd_sqrt(alo, ahi) -> tuple[np.ndarray, np.ndarray]:
    return fwd_pow_real(alo, ahi, 0.5)


def _fwd_cbrt(alo, ahi) -> tuple[np.ndarray, np.ndarray]:
    empty = ~(alo <= ahi)
    lo = _down_arr(_map(_cbrt_scalar, alo))
    hi = _up_arr(_map(_cbrt_scalar, ahi))
    _seal(lo, hi, empty)
    return lo, hi


def _fwd_atan(alo, ahi) -> tuple[np.ndarray, np.ndarray]:
    empty = ~(alo <= ahi)
    lo = np.where(alo == NINF, -_HALF_PI, _down_arr(_map(math.atan, alo)))
    hi = np.where(ahi == PINF, _HALF_PI, _up_arr(_map(math.atan, ahi)))
    _seal(lo, hi, empty)
    return lo, hi


def _fwd_abs(alo, ahi) -> tuple[np.ndarray, np.ndarray]:
    empty = ~(alo <= ahi)
    neg = ahi <= 0.0
    lo = np.where(alo >= 0.0, alo, np.where(neg, -ahi, 0.0))
    hi = np.where(alo >= 0.0, ahi, np.where(neg, -alo, _pick_max(-alo, ahi)))
    _seal(lo, hi, empty)
    return lo, hi


def _fwd_lambertw(alo, ahi) -> tuple[np.ndarray, np.ndarray]:
    xlo = _pick_max(alo, _LAMBERTW_BRANCH)
    xhi = ahi
    empty = ~(alo <= ahi) | ~(xlo <= xhi)
    w_lo = _map(_lambertw_scalar, np.where(empty, 0.0, xlo))
    w_hi = np.where(
        xhi == PINF,
        PINF,
        _map(_lambertw_scalar, np.where(empty | (xhi == PINF), 0.0, xhi)),
    )
    # widen by 4 ulps for SciPy's iteration error, like the scalar method
    na = np.nextafter
    lo = na(na(_down_arr(w_lo), NINF), NINF)
    hi = np.where(w_hi == PINF, PINF, na(na(_up_arr(w_hi), PINF), PINF))
    _seal(lo, hi, empty)
    return lo, hi


def _fwd_tanh(alo, ahi) -> tuple[np.ndarray, np.ndarray]:
    empty = ~(alo <= ahi)
    lo = _down_arr(_map(math.tanh, alo))
    hi = _up_arr(_map(math.tanh, ahi))
    _seal(lo, hi, empty)
    return lo, hi


def _fwd_erf(alo, ahi) -> tuple[np.ndarray, np.ndarray]:
    empty = ~(alo <= ahi)
    lo = _down_arr(_map(math.erf, alo))
    hi = _up_arr(_map(math.erf, ahi))
    _seal(lo, hi, empty)
    return lo, hi


def _fwd_trig(alo, ahi, npfn, offset: float) -> tuple[np.ndarray, np.ndarray]:
    """Rowwise ``interval._trig_range``: critical-point enumeration.

    Fully vectorised (no libm map): np.sin/np.cos match math.sin/math.cos
    bitwise for the magnitudes that survive the fallback mask, np.ceil/
    np.floor/np.spacing match math.ceil/math.floor/math.ulp on them, and
    the candidate extrema are exact +/-1 by parity.
    """
    empty = ~(alo <= ahi)
    mag = np.maximum(np.abs(alo), np.abs(ahi))
    fallback = (
        (ahi - alo >= _TWO_PI)
        | (alo == NINF)
        | (ahi == PINF)
        | (mag > _TRIG_ENUM_MAX)
    )
    enum = ~(fallback | empty)
    slo = np.where(enum, alo, 0.0)  # sanitise so np.sin never sees inf/NaN
    shi = np.where(enum, ahi, 0.0)
    v_lo = npfn(slo)
    v_hi = npfn(shi)
    vmin = np.minimum(v_lo, v_hi)
    vmax = np.maximum(v_lo, v_hi)
    c = _HALF_PI - offset
    k_lo = np.ceil((slo - c) / math.pi) - 1.0
    k_hi = np.floor((shi - c) / math.pi) + 1.0
    slack = 8.0 * np.spacing(np.maximum(np.abs(slo), np.abs(shi)) + _TWO_PI)
    span = np.where(enum, k_hi - k_lo, -1.0)
    t_stop = int(span.max()) + 1 if span.size and span.max() >= 0.0 else 0
    for t in range(t_stop):
        k = k_lo + t
        active = enum & (k <= k_hi)
        if not active.any():
            break
        crit = c + k * math.pi
        inside = active & (slo - slack <= crit) & (crit <= shi + slack)
        val = np.where(np.mod(k, 2.0) == 0.0, 1.0, -1.0)
        # strict compares keep the earlier element on ties, like min()/
        # max() over the scalar candidate list
        vmin = np.where(inside & (val < vmin), val, vmin)
        vmax = np.where(inside & (val > vmax), val, vmax)
    d = _down_arr(vmin)
    u = _up_arr(vmax)
    lo = np.where(d > -1.0, d, -1.0)  # max(-1.0, ...), ties -> -1.0
    hi = np.where(u < 1.0, u, 1.0)  # min(1.0, ...), ties -> 1.0
    lo = np.where(fallback, -1.0, lo)
    hi = np.where(fallback, 1.0, hi)
    _seal(lo, hi, empty)
    return lo, hi


def _fwd_sin(alo, ahi) -> tuple[np.ndarray, np.ndarray]:
    return _fwd_trig(alo, ahi, np.sin, 0.0)


def _fwd_cos(alo, ahi) -> tuple[np.ndarray, np.ndarray]:
    return _fwd_trig(alo, ahi, np.cos, _HALF_PI)


#: forward kernels keyed by IR function name (the tape resolves them to
#: its FUNC_NAMES index order at import)
FWD_FUNC = {
    "exp": _fwd_exp,
    "log": _fwd_log,
    "sqrt": _fwd_sqrt,
    "cbrt": _fwd_cbrt,
    "atan": _fwd_atan,
    "abs": _fwd_abs,
    "lambertw": _fwd_lambertw,
    "sin": _fwd_sin,
    "cos": _fwd_cos,
    "tanh": _fwd_tanh,
    "erf": _fwd_erf,
}


# ---------------------------------------------------------------------------
# backward (HC4 inverse) kernels
# ---------------------------------------------------------------------------
# Each returns the *allowed* rows for the argument slot -- the rowwise
# image of the tape's backward primitives -- with empty columns sealed.
# The tape applies the shared narrow step (intersect + alive update).

def _intersect_rows(slo, shi, s_empty, cur_lo, cur_hi):
    """``self.intersect(current)`` rowwise, self's tie preference."""
    lo = _pick_max(slo, cur_lo)
    hi = _pick_min(shi, cur_hi)
    return lo, hi, s_empty | ~(lo <= hi)


def _hull_rows(alo, ahi, a_empty, blo, bhi, b_empty):
    """``a.hull(b)`` rowwise: empty sides drop out, both-empty seals."""
    lo = np.where(a_empty, blo, np.where(b_empty, alo, _pick_min(alo, blo)))
    hi = np.where(a_empty, bhi, np.where(b_empty, ahi, _pick_max(ahi, bhi)))
    _seal(lo, hi, a_empty & b_empty)
    return lo, hi


def _bwd_tan_restricted(olo, ohi) -> tuple[np.ndarray, np.ndarray]:
    """Rowwise ``tape.tan_restricted`` (inverse of atan)."""
    xlo = _pick_max(olo, -_HALF_PI)
    xhi = _pick_min(ohi, _HALF_PI)
    empty = ~(xlo <= xhi)
    lo_inf = xlo <= -_HALF_PI + 1e-15
    hi_inf = xhi >= _HALF_PI - 1e-15
    lo = np.where(
        lo_inf, NINF, _map(math.tan, np.where(empty | lo_inf, 0.0, xlo))
    )
    hi = np.where(
        hi_inf, PINF, _map(math.tan, np.where(empty | hi_inf, 0.0, xhi))
    )
    empty |= ~(lo <= hi)
    eps = np.where(
        lo_inf | hi_inf, 0.0, 1e-12 * (1.0 + np.abs(lo) + np.abs(hi))
    )
    wlo = lo - eps
    whi = hi + eps
    _seal(wlo, whi, empty)
    return wlo, whi


def _bwd_atanh(olo, ohi) -> tuple[np.ndarray, np.ndarray]:
    """Rowwise ``tape.atanh_interval`` (inverse of tanh)."""
    xlo = _pick_max(olo, -1.0)
    xhi = _pick_min(ohi, 1.0)
    empty = ~(xlo <= xhi)
    lo_n = xlo <= -1.0
    lo_p = xlo >= 1.0
    hi_p = xhi >= 1.0
    hi_n = xhi <= -1.0
    lo = np.where(
        lo_n,
        NINF,
        np.where(
            lo_p, PINF, _map(math.atanh, np.where(empty | lo_n | lo_p, 0.0, xlo))
        ),
    )
    hi = np.where(
        hi_p,
        PINF,
        np.where(
            hi_n, NINF, _map(math.atanh, np.where(empty | hi_p | hi_n, 0.0, xhi))
        ),
    )
    empty |= ~(lo <= hi)
    wlo = lo - 1e-14
    whi = hi + 1e-14
    _seal(wlo, whi, empty)
    return wlo, whi


def _bwd_erfinv(olo, ohi) -> tuple[np.ndarray, np.ndarray]:
    """Rowwise ``tape.erfinv_interval`` (inverse of erf)."""
    erfinv = special("erfinv")
    core = lambda v: float(erfinv(v))  # noqa: E731 - scalar-identical core
    xlo = _pick_max(olo, -1.0)
    xhi = _pick_min(ohi, 1.0)
    empty = ~(xlo <= xhi)
    lo_inf = xlo <= -1.0
    hi_inf = xhi >= 1.0
    lo = np.where(lo_inf, NINF, _map(core, np.where(empty | lo_inf, 0.0, xlo)))
    hi = np.where(hi_inf, PINF, _map(core, np.where(empty | hi_inf, 0.0, xhi)))
    empty |= ~(lo <= hi)
    wlo = lo - 1e-12
    whi = hi + 1e-12
    _seal(wlo, whi, empty)
    return wlo, whi


def _bwd_wexpw(olo, ohi) -> tuple[np.ndarray, np.ndarray]:
    """Rowwise ``tape.wexpw``: x = w * exp(w) for w >= -1."""
    wlo = _pick_max(olo, -1.0)
    whi = ohi
    elo, ehi = _fwd_exp(wlo, whi)  # seals columns where w is empty
    sealed_lo = np.where(wlo <= whi, wlo, PINF)
    sealed_hi = np.where(wlo <= whi, whi, NINF)
    mlo, mhi = _mul_rows(sealed_lo, sealed_hi, elo, ehi)
    empty = ~(mlo <= mhi)
    out_lo = mlo - 1e-14
    out_hi = mhi + 1e-14
    _seal(out_lo, out_hi, empty)
    return out_lo, out_hi


def _bwd_sqrt(olo, ohi) -> tuple[np.ndarray, np.ndarray]:
    # out.intersect([0, inf]).pow_int(2); an empty intersection flows
    # through the pow kernel's own empty mask
    return fwd_pow_int(_pick_max(olo, 0.0), ohi, 2)


def _bwd_cbrt(olo, ohi) -> tuple[np.ndarray, np.ndarray]:
    return fwd_pow_int(olo, ohi, 3)


def _bwd_exp(olo, ohi) -> tuple[np.ndarray, np.ndarray]:
    return _fwd_log(olo, ohi)


def _bwd_log(olo, ohi) -> tuple[np.ndarray, np.ndarray]:
    return _fwd_exp(olo, ohi)


def _bwd_abs(olo, ohi, cur_lo, cur_hi) -> tuple[np.ndarray, np.ndarray]:
    """Rowwise F_ABS inverse: hull of +/-(out n [0,inf]) n current.

    Where the magnitude set is empty the scalar code reports
    infeasibility directly; sealing those columns empty makes the shared
    narrow step set the same alive flag.
    """
    mlo = _pick_max(olo, 0.0)
    mhi = ohi
    m_empty = ~(olo <= ohi) | ~(mlo <= mhi)
    plo, phi, p_empty = _intersect_rows(mlo, mhi, m_empty, cur_lo, cur_hi)
    nlo, nhi, n_empty = _intersect_rows(-mhi, -mlo, m_empty, cur_lo, cur_hi)
    return _hull_rows(plo, phi, p_empty, nlo, nhi, n_empty)


def _root_int_rows(ylo, yhi, n: int, cur_lo, cur_hi):
    """Rowwise ``tape.root_int``: solve b**n = y with current's sign info."""
    inv_n = 1.0 / n
    if n % 2 == 1:
        def _nth(v: float) -> float:
            if v == PINF or v == NINF:
                return v
            return math.copysign(abs(v) ** inv_n, v)

        lo = _map(_nth, ylo)
        hi = _map(_nth, yhi)
        empty = ~(lo <= hi)
        eps = 1e-14 * (1.0 + np.abs(ylo) + np.abs(yhi))
        wlo = lo - eps
        whi = hi + eps
        _seal(wlo, whi, empty)
        return wlo, whi
    # even: |b| = y**(1/n), y >= 0
    y_lo = _pick_max(ylo, 0.0)
    y_hi = yhi
    empty = ~(ylo <= yhi) | ~(y_lo <= y_hi)
    core = lambda v: v**inv_n  # noqa: E731 - float.__pow__, like the scalar
    hi_mag = np.where(
        y_hi == PINF,
        PINF,
        _map(core, np.where(empty | (y_hi == PINF) | ~(y_hi >= 0.0), 0.0, y_hi)),
    )
    lo_mag = np.where(
        y_lo <= 0.0,
        0.0,
        _map(core, np.where(empty | ~(y_lo > 0.0), 1.0, y_lo)),
    )
    hi_mag = hi_mag * (1.0 + 1e-14)
    lo_mag = lo_mag * (1.0 - 1e-14)
    pos_empty = empty | ~(lo_mag <= hi_mag)
    plo, phi, p_empty = _intersect_rows(lo_mag, hi_mag, pos_empty, cur_lo, cur_hi)
    nlo, nhi, n_empty = _intersect_rows(-hi_mag, -lo_mag, pos_empty, cur_lo, cur_hi)
    return _hull_rows(plo, phi, p_empty, nlo, nhi, n_empty)


def bwd_pow_int(olo, ohi, n: int, cur_lo, cur_hi):
    """Allowed base rows for OP_POW with constant integer exponent.

    Returns ``None`` for ``|n| > _POW_CHAIN_MAX`` (per-column fallback)
    and for ``n == 0`` the caller skips narrowing entirely (as the
    scalar code does).
    """
    if n == 0 or abs(n) > _POW_CHAIN_MAX:
        return None
    if n > 0:
        return _root_int_rows(olo, ohi, n, cur_lo, cur_hi)
    ilo, ihi = _inverse_rows(olo, ohi)
    return _root_int_rows(ilo, ihi, -n, cur_lo, cur_hi)


def bwd_pow_real(olo, ohi, p: float) -> tuple[np.ndarray, np.ndarray]:
    """Allowed base rows for OP_POW with fractional exponent."""
    return fwd_pow_real(olo, ohi, 1.0 / p)


#: backward kernels keyed by IR function name; None marks functions with
#: no inverse propagation (sin/cos skip, like the scalar pass).  Entries
#: taking the current argument rows are wrapped by the tape dispatcher.
BWD_FUNC = {
    "exp": _bwd_exp,
    "log": _bwd_log,
    "sqrt": _bwd_sqrt,
    "cbrt": _bwd_cbrt,
    "atan": _bwd_tan_restricted,
    "abs": None,  # needs current rows: dispatched to _bwd_abs directly
    "lambertw": _bwd_wexpw,
    "sin": None,
    "cos": None,
    "tanh": _bwd_atanh,
    "erf": _bwd_erfinv,
}
