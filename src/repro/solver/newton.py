"""First-order (interval-Newton / mean-value) contractor.

HC4 propagates constraint information through the expression *syntax*; it
is blind to correlations between repeated occurrences of a variable (the
interval dependency problem).  The classic complement is a first-order
contractor built on the mean-value form

    g(x) in g(m) + g'([x]) * (x - m),        m = mid([x]),

which sees the expression through its symbolic derivative instead.  For an
atom ``g <= delta`` (every solver atom is normalised to that shape) a
point x can be *removed* whenever the mean-value enclosure stays strictly
above delta for every admissible slope:

    lo(g(m)) + min_{v in g'([x])} v * (x - m)  >  delta.

The removal set is the intersection of two half-lines (one per derivative
bound), so the kept region is computed in closed form; with several
variables the contractor projects onto each axis in turn, holding the
others at their interval enclosures (so ``g(m)`` is itself an interval and
its *lower* bound is used -- sound).

This is the standard Newton-style narrowing used alongside HC4 in ICP
solvers (dReal's own ICP inherits it from RealPaver).  It shines exactly
where HC4 stalls: residuals whose variables appear many times, e.g. the
derivative-laden encodings of EC2/EC3/EC6/EC7.  The ``use_newton`` flag of
:class:`~repro.solver.icp.ICPSolver` enables it after HC4 in each prune
step; ``benchmarks/test_ablation_newton.py`` quantifies the effect.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from math import inf

from ..expr.derivative import derivative
from .box import Box
from .constraint import Conjunction
from .interval import EMPTY, Interval, make
from .tape import CompiledConjunction, Tape, tape_for

__all__ = ["NewtonContractor"]


@dataclass
class NewtonStats:
    projections: int = 0
    narrowed: int = 0
    prunes_to_empty: int = 0


class NewtonContractor:
    """Mean-value contractor for a conjunction of ``g <= delta`` atoms.

    Derivatives are computed symbolically once per (atom, variable) at
    construction -- the same derivative engine the encoder uses -- then
    compiled to instruction tapes (:mod:`repro.solver.tape`) whose forward
    pass supplies the slope and residual enclosures per contraction call.
    ``formula`` may also be an already-compiled
    :class:`~repro.solver.tape.CompiledConjunction` carrying derivative
    tapes (``derivatives=True`` at compilation time).
    """

    def __init__(self, formula: Conjunction | CompiledConjunction, delta: float = 1e-5):
        if delta < 0.0:
            raise ValueError("delta must be non-negative")
        self.formula = formula
        self.delta = delta
        self.stats = NewtonStats()
        # (residual tape, var name, dg/dvar tape) triples; sorted by name
        # for determinism
        self._projections: list[tuple[Tape, str, Tape]] = []
        if isinstance(formula, CompiledConjunction):
            for atom in formula.atoms:
                if atom.deriv_tapes is None:
                    raise ValueError(
                        "CompiledConjunction lacks derivative tapes; compile "
                        "with derivatives=True to use the Newton contractor"
                    )
                for name in sorted(atom.deriv_tapes):
                    self._projections.append(
                        (atom.tape, name, atom.deriv_tapes[name])
                    )
        else:
            for atom in formula.atoms:
                residual_tape = tape_for(atom.residual)
                for var in sorted(atom.residual.free_vars(), key=lambda v: v.name):
                    self._projections.append(
                        (residual_tape, var.name, tape_for(derivative(atom.residual, var)))
                    )

    def contract(self, box: Box, rounds: int = 1) -> Box:
        """Project every atom onto every variable, up to ``rounds`` sweeps."""
        for _ in range(max(1, rounds)):
            changed = False
            for residual_tape, name, deriv_tape in self._projections:
                new_box = self._project(residual_tape, name, deriv_tape, box)
                if new_box.is_empty():
                    self.stats.prunes_to_empty += 1
                    return new_box
                if new_box != box:
                    changed = True
                    box = new_box
            if not changed:
                break
        return box

    def _project(self, residual_tape: Tape, name: str, deriv_tape: Tape, box: Box) -> Box:
        """Narrow ``box[name]`` using mean-value expansions of the residual.

        The expansion point m is tried at both interval *endpoints* (whose
        removal sets are rays, so the hull subtraction cuts real material)
        and at the midpoint (whose interior removal set only helps when it
        covers the whole interval, proving the box empty).
        """
        self.stats.projections += 1
        x = box[name]
        if x.is_empty():
            return _empty_like(box)
        if x.lo == x.hi:
            return box  # nothing to narrow on a point interval

        slope = deriv_tape.enclosure(box)
        if slope.is_empty() or slope.lo == -inf or slope.hi == inf:
            return box  # derivative enclosure carries no information
        if math.isnan(slope.lo) or math.isnan(slope.hi):
            return box

        for m in (x.lo, x.hi, x.mid()):
            at_m = box.replace(name, make(m, m))
            g_m = residual_tape.enclosure(at_m)
            if g_m.is_empty() or math.isnan(g_m.lo):
                continue  # slice leaves a partial operation's domain

            # removal set in d = x - m: both half-lines {a*d > c}, {b*d > c}
            c = self.delta - g_m.lo
            removal = _halfline(slope.lo, c).intersect(_halfline(slope.hi, c))
            if removal.is_empty():
                continue

            d_now = make(x.lo - m, x.hi - m)
            kept = _interval_minus(d_now, removal)
            if kept.is_empty():
                return _empty_like(box)
            new_x = make(kept.lo + m, kept.hi + m).intersect(x)
            if new_x.is_empty():
                return _empty_like(box)
            if new_x != x:
                self.stats.narrowed += 1
                x = new_x
                box = box.replace(name, new_x)

        return box


def _halfline(a: float, c: float) -> Interval:
    """The set {d : a * d > c} as an interval (possibly empty / all of R)."""
    if a > 0.0:
        return make(c / a, inf)
    if a < 0.0:
        return make(-inf, c / a)
    # a == 0: holds for all d iff 0 > c
    return make(-inf, inf) if 0.0 > c else EMPTY


def _interval_minus(current: Interval, removed: Interval) -> Interval:
    """Hull of ``current \\ removed`` (exact when a whole end is cut)."""
    if removed.is_empty():
        return current
    lo, hi = current.lo, current.hi
    if removed.lo <= lo and removed.hi >= hi:
        return EMPTY
    if removed.lo <= lo < removed.hi:
        lo = removed.hi
    if removed.lo < hi <= removed.hi:
        hi = removed.lo
    if lo > hi:
        return EMPTY
    return make(lo, hi)


def _empty_like(box: Box) -> Box:
    return Box({name: EMPTY for name in box.names})
