"""Delta-complete branch-and-prune solver (the dReal substitute).

Implements the ICP (interval constraint propagation) decision procedure at
the core of dReal (Gao, Kong & Clarke, CADE 2013):

* maintain a worklist of boxes, initially the input domain;
* *prune* each box with the HC4 contractor against the delta-weakened
  formula; discard empty boxes;
* if a box's midpoint (or a probe point) satisfies the formula exactly,
  answer ``delta-SAT`` with that model;
* if a box cannot be pruned and is smaller than the precision threshold,
  answer ``delta-SAT`` with its midpoint (this is where *spurious* models
  come from -- the midpoint satisfies the weakened formula but possibly not
  the original one, exactly the "SAT with an invalid model" case the paper
  reports as *inconclusive*);
* otherwise bisect the widest dimension and recurse;
* an exhausted worklist proves ``UNSAT`` (the condition is *verified* on
  the domain);
* exceeding the step/time budget reports ``TIMEOUT``, mirroring the paper's
  two-hour dReal limit.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from enum import Enum

from .box import Box
from .constraint import Conjunction
from .contractor import HC4Contractor
from .newton import NewtonContractor


class SolverStatus(Enum):
    UNSAT = "unsat"
    DELTA_SAT = "delta-sat"
    TIMEOUT = "timeout"


@dataclass
class Budget:
    """Resource limits for one solver call.

    ``max_steps`` bounds the number of boxes processed (deterministic and
    platform-independent; the default is calibrated so that the
    PBE/LYP/AM05/VWN-class formulas finish while SCAN-class formulas --
    >1000 operations per residual -- exhaust it, reproducing the timeout
    column of Table I).  ``max_seconds`` optionally adds a wall-clock bound
    like the paper's two-hour dReal limit.
    """

    max_steps: int = 20_000
    max_seconds: float | None = None

    def start(self) -> "_BudgetClock":
        return _BudgetClock(self)


@dataclass
class _BudgetClock:
    budget: Budget
    steps: int = 0
    t0: float = field(default_factory=time.monotonic)

    def tick(self) -> bool:
        """Consume one step; return False when the budget is exhausted."""
        self.steps += 1
        if self.steps > self.budget.max_steps:
            return False
        if (
            self.budget.max_seconds is not None
            and time.monotonic() - self.t0 > self.budget.max_seconds
        ):
            return False
        return True


@dataclass
class SolverStats:
    boxes_processed: int = 0
    boxes_pruned: int = 0
    boxes_split: int = 0
    probe_hits: int = 0
    elapsed_seconds: float = 0.0
    #: frontier-loop counters (zero on the per-box backends): batches of
    #: boxes contracted wholesale by the batched tape executors, boxes the
    #: batched contraction pruned, and boxes settled as certainly-sat by
    #: the batch's vectorised decide pass
    batches: int = 0
    batch_pruned: int = 0
    batch_certain: int = 0

    def merge(self, other: "SolverStats") -> None:
        """Accumulate another call's counters (the verifier's per-run
        totals, surfaced as solver-internals span attributes)."""
        self.boxes_processed += other.boxes_processed
        self.boxes_pruned += other.boxes_pruned
        self.boxes_split += other.boxes_split
        self.probe_hits += other.probe_hits
        self.elapsed_seconds += other.elapsed_seconds
        self.batches += other.batches
        self.batch_pruned += other.batch_pruned
        self.batch_certain += other.batch_certain

    def as_attrs(self) -> dict:
        """JSON-safe span attributes: batched vs scalar dispatch and
        contract/classify outcomes, the fields the trace cares about."""
        return {
            "boxes_processed": self.boxes_processed,
            "boxes_pruned": self.boxes_pruned,
            "boxes_split": self.boxes_split,
            "probe_hits": self.probe_hits,
            "batches": self.batches,
            "batch_pruned": self.batch_pruned,
            "batch_certain": self.batch_certain,
        }


@dataclass
class SolverResult:
    status: SolverStatus
    model: dict[str, float] | None
    stats: SolverStats

    @property
    def is_unsat(self) -> bool:
        return self.status is SolverStatus.UNSAT

    @property
    def is_sat(self) -> bool:
        return self.status is SolverStatus.DELTA_SAT

    @property
    def is_timeout(self) -> bool:
        return self.status is SolverStatus.TIMEOUT


class ICPSolver:
    """Delta-complete satisfiability solver for conjunctions of inequalities.

    Parameters
    ----------
    delta:
        Weakening applied to every atom (``g <= 0`` becomes ``g <= delta``).
        UNSAT answers are exact; delta-SAT answers hold for the weakened
        formula.
    precision:
        Minimal box width; boxes narrower than this are not split further
        and yield delta-SAT with their midpoint as the model.
    contraction_rounds:
        Fixpoint rounds of the HC4 contractor per box.
    use_probing:
        Evaluate the exact formula at box midpoints to short-circuit to a
        *valid* model quickly (dReal similarly finds models early; disabling
        this is an ablation knob).
    use_contraction:
        Disable to fall back to pure bisection (ablation knob; dramatically
        slower, used to quantify the value of HC4 pruning).
    use_newton:
        Additionally apply the first-order mean-value contractor
        (:class:`~repro.solver.newton.NewtonContractor`) after HC4 on each
        box.  Pays off on derivative-heavy residuals where HC4's
        syntax-directed pruning stalls; costs one symbolic derivative per
        (atom, variable) up front plus extra interval sweeps per box.
    backend:
        Execution strategy: ``"batch"`` (default) runs the frontier loop --
        boxes are pulled from the worklist up to ``batch_size`` at a time
        and contracted *wholesale* by the batched tape executors
        (:meth:`HC4Contractor.contract_batch`: vectorised forward and
        HC4-backward passes, with per-column scalar fallbacks only inside
        Pow/Func instructions and for narrow batches), leaving per-box
        work to probing, splitting and the optional Newton contractor;
        ``"tape"`` is the per-box tape VM; ``"walk"`` uses the original
        tree-walking executors (the differential-testing oracle).  All
        three produce bit-identical results; the frontier loop needs BFS
        search and contraction enabled, and silently degrades to the
        per-box tape path otherwise.
    batch_size:
        Upper bound on the number of boxes per frontier batch (only used
        by ``backend="batch"``).
    vector_min:
        Minimum batch width before the batched executors switch from the
        per-column scalar path to the vector kernels; ``None`` uses the
        module default (``REPRO_VECTOR_MIN``).  A pure performance knob:
        both paths are bit-identical.
    """

    def __init__(
        self,
        delta: float = 1e-5,
        precision: float = 1e-4,
        contraction_rounds: int = 2,
        use_probing: bool = True,
        use_contraction: bool = True,
        use_newton: bool = False,
        search: str = "bfs",
        backend: str = "batch",
        batch_size: int = 256,
        vector_min: int | None = None,
    ):
        if precision <= 0.0:
            raise ValueError("precision must be positive")
        if search not in ("bfs", "dfs"):
            raise ValueError("search must be 'bfs' or 'dfs'")
        if backend not in ("batch", "tape", "walk"):
            raise ValueError("backend must be 'batch', 'tape' or 'walk'")
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        self.delta = delta
        self.precision = precision
        self.contraction_rounds = contraction_rounds
        self.use_probing = use_probing
        self.use_contraction = use_contraction
        self.use_newton = use_newton
        self.search = search
        self.backend = backend
        self.batch_size = batch_size
        self.vector_min = vector_min
        # contractors are pure functions of the formula; reuse across the
        # many solver calls Algorithm 1 makes for the same condition.
        # Keyed on the formula itself (holding a strong reference), NOT on
        # id(formula): ids are recycled after garbage collection, which
        # could silently serve a stale contractor for a different formula.
        self._contractors: dict[object, HC4Contractor] = {}
        self._newtons: dict[object, NewtonContractor] = {}

    def _contractor_for(self, formula: Conjunction) -> HC4Contractor:
        contractor = self._contractors.get(formula)
        if contractor is None:
            executor = "walk" if self.backend == "walk" else "tape"
            contractor = HC4Contractor(
                formula,
                delta=self.delta,
                backend=executor,
                vector_min=self.vector_min,
            )
            self._contractors[formula] = contractor
        return contractor

    def _newton_for(self, formula: Conjunction) -> NewtonContractor:
        contractor = self._newtons.get(formula)
        if contractor is None:
            contractor = NewtonContractor(formula, delta=self.delta)
            self._newtons[formula] = contractor
        return contractor

    def solve(
        self, formula: Conjunction, domain: Box, budget: Budget | None = None
    ) -> SolverResult:
        """Decide satisfiability of ``formula`` within ``domain``."""
        budget = budget or Budget()
        clock = budget.start()
        stats = SolverStats()
        t0 = time.monotonic()
        contractor = self._contractor_for(formula)
        newton = self._newton_for(formula) if self.use_newton else None

        missing = formula.free_var_names() - set(domain.names)
        if missing:
            raise ValueError(f"domain does not bind variables: {sorted(missing)}")

        # The frontier loop's batched filter replays the first contraction
        # round's forward decisions, so it needs contraction on; it pulls
        # boxes FIFO, so it needs BFS.  Anything else degrades to the
        # per-box loop (bit-identical results either way).
        if self.backend == "batch" and self.search == "bfs" and self.use_contraction:
            return self._solve_frontier(formula, domain, contractor, newton, clock, stats, t0)
        return self._solve_per_box(formula, domain, contractor, newton, clock, stats, t0)

    def _solve_per_box(
        self, formula, domain: Box, contractor, newton, clock, stats, t0
    ) -> SolverResult:
        """Classic pop-one-box branch-and-prune loop."""
        # BFS keeps refinement uniform: un-prunable regions exhaust the
        # budget (timeout) instead of diving to a precision box and
        # reporting a spurious delta-SAT; DFS is kept as an ablation knob.
        stack: deque[Box] = deque([domain])
        while stack:
            if not clock.tick():
                stats.elapsed_seconds = time.monotonic() - t0
                return SolverResult(SolverStatus.TIMEOUT, None, stats)
            box = stack.pop() if self.search == "dfs" else stack.popleft()
            stats.boxes_processed += 1

            if box.is_empty():
                stats.boxes_pruned += 1
                continue

            if self.use_contraction:
                box = contractor.contract(box, rounds=self.contraction_rounds)
                if box.is_empty():
                    stats.boxes_pruned += 1
                    continue

            if newton is not None:
                box = newton.contract(box)
                if box.is_empty():
                    stats.boxes_pruned += 1
                    continue

            if self.use_probing:
                probe = box.midpoint()
                if formula.holds_at(probe):
                    stats.probe_hits += 1
                    stats.elapsed_seconds = time.monotonic() - t0
                    return SolverResult(SolverStatus.DELTA_SAT, probe, stats)

            if box.max_width() <= self.precision:
                # cannot prune, cannot split: delta-SAT by delta-completeness
                stats.elapsed_seconds = time.monotonic() - t0
                return SolverResult(SolverStatus.DELTA_SAT, box.midpoint(), stats)

            if contractor.certainly_sat(box):
                stats.elapsed_seconds = time.monotonic() - t0
                return SolverResult(SolverStatus.DELTA_SAT, box.midpoint(), stats)

            left, right = box.split()
            stats.boxes_split += 1
            stack.append(left)
            stack.append(right)

        stats.elapsed_seconds = time.monotonic() - t0
        return SolverResult(SolverStatus.UNSAT, None, stats)

    def _solve_frontier(
        self, formula, domain: Box, contractor, newton, clock, stats, t0
    ) -> SolverResult:
        """Frontier loop: contract whole batches, per-box work on survivors.

        Pulls up to ``batch_size`` boxes FIFO per iteration and contracts
        them wholesale with the batched tape executors
        (:meth:`HC4Contractor.contract_batch`), which also decides
        certainly-sat for every surviving box in the same sweep.  Only
        probing, the precision check, splitting and the optional Newton
        contractor remain per box.  Because the batched contraction is
        bit-identical to per-box :meth:`~HC4Contractor.contract` and the
        boxes are visited in the same FIFO order, the sequence of
        results, models and per-box stats matches the per-box BFS loop
        exactly.
        """
        stack: deque[Box] = deque([domain])
        while stack:
            take = min(self.batch_size, len(stack))
            batch = [stack.popleft() for _ in range(take)]
            stats.batches += 1
            contracted, allsat = contractor.contract_batch(
                batch, rounds=self.contraction_rounds
            )
            for j, original in enumerate(batch):
                if not clock.tick():
                    stats.elapsed_seconds = time.monotonic() - t0
                    return SolverResult(SolverStatus.TIMEOUT, None, stats)
                stats.boxes_processed += 1

                if original.is_empty():
                    stats.boxes_pruned += 1
                    continue

                box = contracted[j]
                if box.is_empty():
                    stats.batch_pruned += 1
                    stats.boxes_pruned += 1
                    continue

                if newton is not None:
                    box = newton.contract(box)
                    if box.is_empty():
                        stats.boxes_pruned += 1
                        continue

                if self.use_probing:
                    probe = box.midpoint()
                    if formula.holds_at(probe):
                        stats.probe_hits += 1
                        stats.elapsed_seconds = time.monotonic() - t0
                        return SolverResult(SolverStatus.DELTA_SAT, probe, stats)

                if box.max_width() <= self.precision:
                    stats.elapsed_seconds = time.monotonic() - t0
                    return SolverResult(SolverStatus.DELTA_SAT, box.midpoint(), stats)

                # the batch pass already decided certainly_sat on the
                # contracted box -- unless Newton narrowed it since, in
                # which case re-check like the per-box loop does
                if newton is None:
                    certainly = bool(allsat[j])
                    if certainly:
                        stats.batch_certain += 1
                else:
                    certainly = contractor.certainly_sat(box)
                if certainly:
                    stats.elapsed_seconds = time.monotonic() - t0
                    return SolverResult(SolverStatus.DELTA_SAT, box.midpoint(), stats)

                left, right = box.split()
                stats.boxes_split += 1
                stack.append(left)
                stack.append(right)

        stats.elapsed_seconds = time.monotonic() - t0
        return SolverResult(SolverStatus.UNSAT, None, stats)
