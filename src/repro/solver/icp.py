"""Delta-complete branch-and-prune solver (the dReal substitute).

Implements the ICP (interval constraint propagation) decision procedure at
the core of dReal (Gao, Kong & Clarke, CADE 2013):

* maintain a worklist of boxes, initially the input domain;
* *prune* each box with the HC4 contractor against the delta-weakened
  formula; discard empty boxes;
* if a box's midpoint (or a probe point) satisfies the formula exactly,
  answer ``delta-SAT`` with that model;
* if a box cannot be pruned and is smaller than the precision threshold,
  answer ``delta-SAT`` with its midpoint (this is where *spurious* models
  come from -- the midpoint satisfies the weakened formula but possibly not
  the original one, exactly the "SAT with an invalid model" case the paper
  reports as *inconclusive*);
* otherwise bisect the widest dimension and recurse;
* an exhausted worklist proves ``UNSAT`` (the condition is *verified* on
  the domain);
* exceeding the step/time budget reports ``TIMEOUT``, mirroring the paper's
  two-hour dReal limit.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from enum import Enum

from .box import Box
from .constraint import Conjunction
from .contractor import HC4Contractor
from .newton import NewtonContractor


class SolverStatus(Enum):
    UNSAT = "unsat"
    DELTA_SAT = "delta-sat"
    TIMEOUT = "timeout"


@dataclass
class Budget:
    """Resource limits for one solver call.

    ``max_steps`` bounds the number of boxes processed (deterministic and
    platform-independent; the default is calibrated so that the
    PBE/LYP/AM05/VWN-class formulas finish while SCAN-class formulas --
    >1000 operations per residual -- exhaust it, reproducing the timeout
    column of Table I).  ``max_seconds`` optionally adds a wall-clock bound
    like the paper's two-hour dReal limit.
    """

    max_steps: int = 20_000
    max_seconds: float | None = None

    def start(self) -> "_BudgetClock":
        return _BudgetClock(self)


@dataclass
class _BudgetClock:
    budget: Budget
    steps: int = 0
    t0: float = field(default_factory=time.monotonic)

    def tick(self) -> bool:
        """Consume one step; return False when the budget is exhausted."""
        self.steps += 1
        if self.steps > self.budget.max_steps:
            return False
        if (
            self.budget.max_seconds is not None
            and time.monotonic() - self.t0 > self.budget.max_seconds
        ):
            return False
        return True


@dataclass
class SolverStats:
    boxes_processed: int = 0
    boxes_pruned: int = 0
    boxes_split: int = 0
    probe_hits: int = 0
    elapsed_seconds: float = 0.0


@dataclass
class SolverResult:
    status: SolverStatus
    model: dict[str, float] | None
    stats: SolverStats

    @property
    def is_unsat(self) -> bool:
        return self.status is SolverStatus.UNSAT

    @property
    def is_sat(self) -> bool:
        return self.status is SolverStatus.DELTA_SAT

    @property
    def is_timeout(self) -> bool:
        return self.status is SolverStatus.TIMEOUT


class ICPSolver:
    """Delta-complete satisfiability solver for conjunctions of inequalities.

    Parameters
    ----------
    delta:
        Weakening applied to every atom (``g <= 0`` becomes ``g <= delta``).
        UNSAT answers are exact; delta-SAT answers hold for the weakened
        formula.
    precision:
        Minimal box width; boxes narrower than this are not split further
        and yield delta-SAT with their midpoint as the model.
    contraction_rounds:
        Fixpoint rounds of the HC4 contractor per box.
    use_probing:
        Evaluate the exact formula at box midpoints to short-circuit to a
        *valid* model quickly (dReal similarly finds models early; disabling
        this is an ablation knob).
    use_contraction:
        Disable to fall back to pure bisection (ablation knob; dramatically
        slower, used to quantify the value of HC4 pruning).
    use_newton:
        Additionally apply the first-order mean-value contractor
        (:class:`~repro.solver.newton.NewtonContractor`) after HC4 on each
        box.  Pays off on derivative-heavy residuals where HC4's
        syntax-directed pruning stalls; costs one symbolic derivative per
        (atom, variable) up front plus extra interval sweeps per box.
    backend:
        Execution strategy for the HC4 contractor: ``"tape"`` (default)
        compiles residuals to flat instruction tapes
        (:mod:`repro.solver.tape`); ``"walk"`` uses the original
        tree-walking executors (the differential-testing oracle).
    """

    def __init__(
        self,
        delta: float = 1e-5,
        precision: float = 1e-4,
        contraction_rounds: int = 2,
        use_probing: bool = True,
        use_contraction: bool = True,
        use_newton: bool = False,
        search: str = "bfs",
        backend: str = "tape",
    ):
        if precision <= 0.0:
            raise ValueError("precision must be positive")
        if search not in ("bfs", "dfs"):
            raise ValueError("search must be 'bfs' or 'dfs'")
        if backend not in ("tape", "walk"):
            raise ValueError("backend must be 'tape' or 'walk'")
        self.delta = delta
        self.precision = precision
        self.contraction_rounds = contraction_rounds
        self.use_probing = use_probing
        self.use_contraction = use_contraction
        self.use_newton = use_newton
        self.search = search
        self.backend = backend
        # contractors are pure functions of the formula; reuse across the
        # many solver calls Algorithm 1 makes for the same condition.
        # Keyed on the formula itself (holding a strong reference), NOT on
        # id(formula): ids are recycled after garbage collection, which
        # could silently serve a stale contractor for a different formula.
        self._contractors: dict[object, HC4Contractor] = {}
        self._newtons: dict[object, NewtonContractor] = {}

    def _contractor_for(self, formula: Conjunction) -> HC4Contractor:
        contractor = self._contractors.get(formula)
        if contractor is None:
            contractor = HC4Contractor(formula, delta=self.delta, backend=self.backend)
            self._contractors[formula] = contractor
        return contractor

    def _newton_for(self, formula: Conjunction) -> NewtonContractor:
        contractor = self._newtons.get(formula)
        if contractor is None:
            contractor = NewtonContractor(formula, delta=self.delta)
            self._newtons[formula] = contractor
        return contractor

    def solve(
        self, formula: Conjunction, domain: Box, budget: Budget | None = None
    ) -> SolverResult:
        """Decide satisfiability of ``formula`` within ``domain``."""
        budget = budget or Budget()
        clock = budget.start()
        stats = SolverStats()
        t0 = time.monotonic()
        contractor = self._contractor_for(formula)
        newton = self._newton_for(formula) if self.use_newton else None

        missing = formula.free_var_names() - set(domain.names)
        if missing:
            raise ValueError(f"domain does not bind variables: {sorted(missing)}")

        # BFS keeps refinement uniform: un-prunable regions exhaust the
        # budget (timeout) instead of diving to a precision box and
        # reporting a spurious delta-SAT; DFS is kept as an ablation knob.
        stack: deque[Box] = deque([domain])
        while stack:
            if not clock.tick():
                stats.elapsed_seconds = time.monotonic() - t0
                return SolverResult(SolverStatus.TIMEOUT, None, stats)
            box = stack.pop() if self.search == "dfs" else stack.popleft()
            stats.boxes_processed += 1

            if box.is_empty():
                stats.boxes_pruned += 1
                continue

            if self.use_contraction:
                box = contractor.contract(box, rounds=self.contraction_rounds)
                if box.is_empty():
                    stats.boxes_pruned += 1
                    continue

            if newton is not None:
                box = newton.contract(box)
                if box.is_empty():
                    stats.boxes_pruned += 1
                    continue

            if self.use_probing:
                probe = box.midpoint()
                if formula.holds_at(probe):
                    stats.probe_hits += 1
                    stats.elapsed_seconds = time.monotonic() - t0
                    return SolverResult(SolverStatus.DELTA_SAT, probe, stats)

            if box.max_width() <= self.precision:
                # cannot prune, cannot split: delta-SAT by delta-completeness
                stats.elapsed_seconds = time.monotonic() - t0
                return SolverResult(SolverStatus.DELTA_SAT, box.midpoint(), stats)

            if contractor.certainly_sat(box):
                stats.elapsed_seconds = time.monotonic() - t0
                return SolverResult(SolverStatus.DELTA_SAT, box.midpoint(), stats)

            left, right = box.split()
            stats.boxes_split += 1
            stack.append(left)
            stack.append(right)

        stats.elapsed_seconds = time.monotonic() - t0
        return SolverResult(SolverStatus.UNSAT, None, stats)
