"""Outward-rounded interval arithmetic.

This is the numeric core of the delta-complete solver: every IR primitive
gets an interval extension here, and the HC4 contractor additionally uses
the inverse (backward) forms defined in :mod:`repro.solver.contractor`.

Endpoints are ordinary doubles; soundness against rounding is obtained by
widening every computed endpoint outward by one ulp (``nextafter``).  For
library-evaluated transcendentals (Lambert W via SciPy) we widen by a few
ulps, which dominates their documented error.

Conventions:

* the empty interval is the singleton :data:`EMPTY` (lo > hi),
* division and other partial operations return the natural interval
  extension over the intersection with the operation's domain; emptiness of
  that intersection yields :data:`EMPTY` (interpreted by the contractor as
  "no point of the box is in the constraint's domain").
"""

from __future__ import annotations

import math
from math import inf, isnan, nextafter

from ..scipy_compat import special

__all__ = [
    "Interval", "EMPTY", "REALS", "make", "point",
]

#: version stamp of the *interval kernel semantics*.  Folded into
#: content hashes (campaign pair keys, numerics cell keys) so that a
#: change to how enclosures are computed -- not merely how fast -- turns
#: stale store entries into cache misses instead of silently reusing
#: results produced under different rounding.  v2: ``pow_int`` switched
#: from one libm ``pow`` call per endpoint to directed-rounding
#: multiplication chains for |n| <= :data:`_POW_CHAIN_MAX`.
KERNEL_SEMANTICS_VERSION = 2

#: largest |n| lowered to a directed-rounding binary-exponentiation
#: multiplication chain.  IEEE multiplication is exactly rounded, so the
#: scalar chain and its NumPy whole-row counterpart agree bit for bit --
#: which libm ``pow`` (whose last-ulp behaviour differs between CPython's
#: libm and NumPy's SIMD loops) cannot offer.  Beyond this the chain's
#: accumulated one-ulp-per-step widening stops being worth it and both
#: executors fall back to the libm path.
_POW_CHAIN_MAX = 32


def _down(x: float) -> float:
    if x == -inf or isnan(x):
        return -inf
    return nextafter(x, -inf)


def _up(x: float) -> float:
    if x == inf or isnan(x):
        return inf
    return nextafter(x, inf)


class Interval:
    """A closed interval [lo, hi] of reals (endpoints may be infinite)."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo: float, hi: float):
        self.lo = lo
        self.hi = hi

    # -- basic queries -----------------------------------------------------
    def is_empty(self) -> bool:
        return self.lo > self.hi or isnan(self.lo) or isnan(self.hi)

    def width(self) -> float:
        if self.is_empty():
            return 0.0
        return self.hi - self.lo

    def mid(self) -> float:
        if self.lo == -inf and self.hi == inf:
            return 0.0
        if self.lo == -inf:
            return min(self.hi - 1.0, -1.0) if self.hi != inf else 0.0
        if self.hi == inf:
            return max(self.lo + 1.0, 1.0)
        return 0.5 * (self.lo + self.hi)

    def contains(self, x: float) -> bool:
        return (not self.is_empty()) and self.lo <= x <= self.hi

    def is_subset(self, other: "Interval") -> bool:
        if self.is_empty():
            return True
        return other.lo <= self.lo and self.hi <= other.hi

    def overlaps(self, other: "Interval") -> bool:
        if self.is_empty() or other.is_empty():
            return False
        return self.lo <= other.hi and other.lo <= self.hi

    # -- set operations ------------------------------------------------------
    def intersect(self, other: "Interval") -> "Interval":
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo > hi or isnan(lo) or isnan(hi):
            return EMPTY
        return Interval(lo, hi)

    def hull(self, other: "Interval") -> "Interval":
        if self.is_empty():
            return other
        if other.is_empty():
            return self
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def widened(self, eps: float) -> "Interval":
        if self.is_empty():
            return self
        return Interval(self.lo - eps, self.hi + eps)

    # -- arithmetic ----------------------------------------------------------
    def __add__(self, other: "Interval") -> "Interval":
        if self.is_empty() or other.is_empty():
            return EMPTY
        return Interval(_down(self.lo + other.lo), _up(self.hi + other.hi))

    def __sub__(self, other: "Interval") -> "Interval":
        if self.is_empty() or other.is_empty():
            return EMPTY
        return Interval(_down(self.lo - other.hi), _up(self.hi - other.lo))

    def __neg__(self) -> "Interval":
        if self.is_empty():
            return EMPTY
        return Interval(-self.hi, -self.lo)

    def __mul__(self, other: "Interval") -> "Interval":
        if self.is_empty() or other.is_empty():
            return EMPTY
        products = []
        for a in (self.lo, self.hi):
            for c in (other.lo, other.hi):
                p = a * c
                if isnan(p):  # 0 * inf
                    p = 0.0
                products.append(p)
        return Interval(_down(min(products)), _up(max(products)))

    def inverse(self) -> "Interval":
        """Extended 1/x (hull of both branches when 0 is interior)."""
        if self.is_empty():
            return EMPTY
        lo, hi = self.lo, self.hi
        if lo == 0.0 and hi == 0.0:
            return EMPTY
        if lo > 0.0 or hi < 0.0:
            return Interval(_down(1.0 / hi), _up(1.0 / lo))
        if lo == 0.0:
            return Interval(_down(1.0 / hi), inf)
        if hi == 0.0:
            return Interval(-inf, _up(1.0 / lo))
        return REALS  # zero interior: hull of (-inf,1/lo] u [1/hi,inf)

    def __truediv__(self, other: "Interval") -> "Interval":
        return self * other.inverse()

    def abs(self) -> "Interval":
        if self.is_empty():
            return EMPTY
        if self.lo >= 0.0:
            return self
        if self.hi <= 0.0:
            return -self
        return Interval(0.0, max(-self.lo, self.hi))

    # -- powers ---------------------------------------------------------------
    def pow_int(self, n: int) -> "Interval":
        if self.is_empty():
            return EMPTY
        if n == 0:
            return Interval(1.0, 1.0)
        if n < 0:
            return self.pow_int(-n).inverse()
        lo, hi = self.lo, self.hi
        if n <= _POW_CHAIN_MAX:
            # directed-rounding multiplication chain on the magnitude of
            # each endpoint; signs/case split by parity as below
            if n % 2 == 1:
                return Interval(
                    _chain_down(lo, n) if lo >= 0.0 else -_chain_up(-lo, n),
                    _chain_up(hi, n) if hi >= 0.0 else -_chain_down(-hi, n),
                )
            if lo >= 0.0:
                return Interval(_chain_down(lo, n), _chain_up(hi, n))
            if hi <= 0.0:
                return Interval(_chain_down(-hi, n), _chain_up(-lo, n))
            return Interval(0.0, _chain_up(max(-lo, hi), n))
        lo_p = _pow_scalar(lo, n)
        hi_p = _pow_scalar(hi, n)
        if n % 2 == 1:
            return Interval(_down(lo_p), _up(hi_p))
        # even power
        if lo >= 0.0:
            return Interval(_down(lo_p), _up(hi_p))
        if hi <= 0.0:
            return Interval(_down(hi_p), _up(lo_p))
        return Interval(0.0, _up(max(lo_p, hi_p)))

    def pow_real(self, p: float) -> "Interval":
        """x**p for real p, on the domain x >= 0 (negative part clipped)."""
        if self.is_empty():
            return EMPTY
        x = self.intersect(NONNEG)
        if x.is_empty():
            return EMPTY
        lo, hi = x.lo, x.hi
        if p > 0.0:
            lo_p = _pow_scalar(lo, p)
            hi_p = _pow_scalar(hi, p)
            return Interval(_down(lo_p), _up(hi_p))
        # p < 0: decreasing on (0, inf); x == 0 -> +inf endpoint
        hi_p = inf if lo == 0.0 else _pow_scalar(lo, p)
        lo_p = 0.0 if hi == inf else _pow_scalar(hi, p)
        return Interval(_down(lo_p), _up(hi_p))

    def pow(self, p: float) -> "Interval":
        if float(p).is_integer() and abs(p) < 2**31:
            return self.pow_int(int(p))
        return self.pow_real(float(p))

    # -- transcendental functions ---------------------------------------------
    def exp(self) -> "Interval":
        if self.is_empty():
            return EMPTY
        # the exponential is positive: clamp the outward rounding at 0
        return Interval(
            max(0.0, _down(_exp_scalar(self.lo))), _up(_exp_scalar(self.hi))
        )

    def log(self) -> "Interval":
        if self.is_empty():
            return EMPTY
        x = self.intersect(NONNEG)
        if x.is_empty() or x.hi == 0.0 and x.lo == 0.0:
            return EMPTY
        lo = -inf if x.lo == 0.0 else _down(math.log(x.lo))
        hi = inf if x.hi == inf else _up(math.log(x.hi))
        return Interval(lo, hi)

    def sqrt(self) -> "Interval":
        return self.pow_real(0.5)

    def cbrt(self) -> "Interval":
        if self.is_empty():
            return EMPTY
        return Interval(_down(_cbrt_scalar(self.lo)), _up(_cbrt_scalar(self.hi)))

    def atan(self) -> "Interval":
        if self.is_empty():
            return EMPTY
        lo = -math.pi / 2 if self.lo == -inf else _down(math.atan(self.lo))
        hi = math.pi / 2 if self.hi == inf else _up(math.atan(self.hi))
        return Interval(lo, hi)

    def tanh(self) -> "Interval":
        if self.is_empty():
            return EMPTY
        return Interval(_down(math.tanh(self.lo)), _up(math.tanh(self.hi)))

    def erf(self) -> "Interval":
        if self.is_empty():
            return EMPTY
        return Interval(_down(math.erf(self.lo)), _up(math.erf(self.hi)))

    def sin(self) -> "Interval":
        return _trig_range(self, math.sin, offset=0.0)

    def cos(self) -> "Interval":
        return _trig_range(self, math.cos, offset=math.pi / 2)

    def lambertw(self) -> "Interval":
        """Principal branch W0, on the domain x >= -1/e (clipped)."""
        if self.is_empty():
            return EMPTY
        branch = Interval(-1.0 / math.e, inf)
        x = self.intersect(branch)
        if x.is_empty():
            return EMPTY
        lo = _lambertw_scalar(x.lo)
        hi = inf if x.hi == inf else _lambertw_scalar(x.hi)
        # widen by 4 ulps for SciPy's iteration error
        return Interval(
            nextafter(nextafter(_down(lo), -inf), -inf),
            inf if hi == inf else nextafter(nextafter(_up(hi), inf), inf),
        )

    def __repr__(self) -> str:  # pragma: no cover
        if self.is_empty():
            return "Interval(EMPTY)"
        return f"Interval({self.lo!r}, {self.hi!r})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, Interval):
            return NotImplemented
        if self.is_empty() and other.is_empty():
            return True
        return self.lo == other.lo and self.hi == other.hi

    def __hash__(self) -> int:
        if self.is_empty():
            return hash("empty-interval")
        return hash((self.lo, self.hi))


EMPTY = Interval(inf, -inf)
REALS = Interval(-inf, inf)
NONNEG = Interval(0.0, inf)


def make(lo: float, hi: float) -> Interval:
    """Construct an interval, normalising empty/NaN input."""
    if isnan(lo) or isnan(hi) or lo > hi:
        return EMPTY
    return Interval(float(lo), float(hi))


def point(x: float) -> Interval:
    return Interval(float(x), float(x))


# ---------------------------------------------------------------------------
# scalar helpers with saturation
# ---------------------------------------------------------------------------

def _pow_scalar(x: float, p: float) -> float:
    if x == inf:
        return inf if p > 0 else 0.0
    if x == -inf:
        if float(p).is_integer():
            return -inf if int(p) % 2 == 1 else inf
        return inf
    try:
        return math.pow(x, p)
    except OverflowError:
        # a positive base can only overflow towards +inf (whether p is
        # positive with x > 1, or negative with 0 < x < 1); a negative base
        # only reaches here with an integer exponent (callers guard),
        # where the sign follows parity
        if x > 0.0:
            return inf
        return -inf if int(p) % 2 == 1 else inf
    except ValueError:
        # negative base, fractional exponent; callers guard against this
        return math.nan


def _chain_down(x: float, n: int) -> float:
    """Lower bound of ``x**n`` for x >= 0, n >= 1: binary exponentiation
    with every intermediate product rounded one ulp toward -inf.

    All true intermediates are non-negative, so down-rounding each one
    keeps a running lower bound; the only negative value that can appear
    is ``nextafter(0.0, -inf)`` after a product underflows, whose further
    products have magnitude below the smallest subnormal and collapse
    right back -- the final result never exceeds the true power.  The
    loop structure is mirrored verbatim by the array kernels in
    :mod:`repro.solver.kernels`; IEEE multiplication and ``nextafter``
    are deterministic, so scalar and batch agree bit for bit.
    """
    acc = None
    base = x
    while True:
        if n & 1:
            acc = base if acc is None else _down(acc * base)
        n >>= 1
        if not n:
            return acc
        base = _down(base * base)


def _chain_up(x: float, n: int) -> float:
    """Upper bound of ``x**n`` for x >= 0, n >= 1 (see :func:`_chain_down`)."""
    acc = None
    base = x
    while True:
        if n & 1:
            acc = base if acc is None else _up(acc * base)
        n >>= 1
        if not n:
            return acc
        base = _up(base * base)


def _exp_scalar(x: float) -> float:
    if x == inf:
        return inf
    if x == -inf:
        return 0.0
    try:
        return math.exp(x)
    except OverflowError:
        return inf


def _cbrt_scalar(x: float) -> float:
    if x == inf or x == -inf:
        return x
    return math.copysign(abs(x) ** (1.0 / 3.0), x)


def _lambertw_scalar(x: float) -> float:
    # lazy memoised accessor: the scipy import used to run per call on the
    # contractor hot path
    if x < -1.0 / math.e:
        x = -1.0 / math.e
    return float(special("lambertw")(x).real)


#: largest endpoint magnitude for which the float critical-point enumeration
#: below is trusted.  The enumerated extremum locations ``c + k*pi`` carry a
#: rounding error of a few ulps of ``k*pi``; at magnitude M that error is
#: ~M * 2**-51, the resulting extremum-value error is ~(M * 2**-51)**2 / 2,
#: and the one-ulp outward rounding of the endpoint values (2**-53 at 1.0)
#: only absorbs it while M stays below ~2**25.  2**20 leaves a 2**10 safety
#: factor; beyond it sin/cos fall back to the trivially sound [-1, 1].
_TRIG_ENUM_MAX = 2.0**20


def _trig_range(x: Interval, fn, offset: float) -> Interval:
    """Sound, near-exact range of sin/cos over an interval.

    sin attains extrema at pi/2 + k*pi; cos at k*pi.  We enumerate the
    critical points inside the interval and append their *exact* extremum
    values (+/-1 by parity of k -- evaluating ``fn`` at the float-rounded
    critical point would lose the extremum to cancellation), falling back
    to [-1, 1] for wide inputs and for endpoint magnitudes beyond
    :data:`_TRIG_ENUM_MAX`, where ``pi/2 + k*pi`` is no longer
    representable to within the outward rounding (for very large inputs,
    not even to within a period) and the enumeration would *exclude* true
    extrema -- an unsound enclosure, the one thing this module must never
    produce.  The enumeration window is widened by one index on each side
    plus a few-ulp slack so quotient rounding can only ever *add* a
    critical point, never miss one that truly lies inside.
    """
    if x.is_empty():
        return EMPTY
    if x.hi - x.lo >= 2.0 * math.pi or x.lo == -inf or x.hi == inf:
        return Interval(-1.0, 1.0)
    if max(abs(x.lo), abs(x.hi)) > _TRIG_ENUM_MAX:
        return Interval(-1.0, 1.0)
    values = [fn(x.lo), fn(x.hi)]
    # critical points of sin: pi/2 + k pi; of cos: k pi = pi/2 + k pi - pi/2
    c = math.pi / 2 - offset
    k_lo = math.ceil((x.lo - c) / math.pi) - 1
    k_hi = math.floor((x.hi - c) / math.pi) + 1
    slack = 8.0 * math.ulp(max(abs(x.lo), abs(x.hi)) + 2.0 * math.pi)
    for k in range(k_lo, k_hi + 1):
        crit = c + k * math.pi
        if x.lo - slack <= crit <= x.hi + slack:
            # sin(pi/2 + k pi) = cos(k pi) = (-1)**k, exactly
            values.append(1.0 if k % 2 == 0 else -1.0)
    lo = max(-1.0, _down(min(values)))
    hi = min(1.0, _up(max(values)))
    return Interval(lo, hi)
