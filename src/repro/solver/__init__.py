"""Delta-complete interval constraint solver (dReal substitute).

Subpackages:

* :mod:`repro.solver.interval` -- outward-rounded interval arithmetic,
* :mod:`repro.solver.box` -- variable boxes (search state / regions),
* :mod:`repro.solver.constraint` -- atoms, conjunctions, delta-weakening,
* :mod:`repro.solver.tape` -- the tape-compiled interval VM (flat SSA
  instruction tapes for the forward/backward/point executors),
* :mod:`repro.solver.contractor` -- HC4-revise forward/backward contractor,
* :mod:`repro.solver.newton` -- first-order mean-value (interval Newton)
  contractor,
* :mod:`repro.solver.icp` -- the branch-and-prune decision procedure.
"""

from .interval import EMPTY, Interval, REALS, make, point
from .box import Box
from .constraint import Atom, Conjunction, negate_condition
from .tape import CompiledAtom, CompiledConjunction, Tape, compile_expr, tape_for
from .contractor import HC4Contractor, enclosure, interval_eval
from .newton import NewtonContractor
from .icp import Budget, ICPSolver, SolverResult, SolverStats, SolverStatus

__all__ = [
    "EMPTY", "Interval", "REALS", "make", "point",
    "Box", "Atom", "Conjunction", "negate_condition",
    "CompiledAtom", "CompiledConjunction", "Tape", "compile_expr", "tape_for",
    "HC4Contractor", "enclosure", "interval_eval", "NewtonContractor",
    "Budget", "ICPSolver", "SolverResult", "SolverStats", "SolverStatus",
]
