"""Tape-compiled interval VM for the solver hot path.

The HC4 contractor, the mean-value Newton contractor and point probing all
used to re-walk hash-consed expression DAGs for every box, paying per node
for an ``isinstance`` dispatch chain and two ``dict[id(node)]`` lookups.
This module linearizes each residual DAG *once* into a flat SSA instruction
tape and re-runs the three executors off that tape:

* every unique DAG node gets one integer *slot* (its SSA value number, in
  topological order);
* constants are folded into a literal pool preloaded into the slot vector;
* each interior node becomes one fixed-shape instruction
  ``(opcode, out_slot, a, b, aux)`` dispatched on a small-integer opcode;
* the backward (HC4-revise) pass runs the same instruction list in
  reverse with each opcode's inverse semantics;
* scalar point evaluation runs the same tape with float semantics.

The VM performs exactly the same interval/float operations in exactly the
same order as the tree-walking oracles in
:mod:`repro.solver.contractor` and :mod:`repro.expr.evaluator`, so the two
execution strategies agree bit for bit; the speedup comes purely from
removing the per-node interpretation overhead.  Tapes are flat picklable
data (ints, floats, strings, tuples), which also lets the process-parallel
verifier ship compiled formulas to workers instead of re-encoding DAGs.
"""

from __future__ import annotations

import math
import os
from math import inf

import numpy as np

from ..expr.evaluator import EvalError, SCALAR_FUNCS
from ..expr.nodes import Add, Const, Expr, Func, Ite, Mul, Pow, Var
from ..scipy_compat import special
from . import kernels as _kern
from .interval import EMPTY, Interval, _POW_CHAIN_MAX, make

__all__ = [
    "FUNC_DOMAINS",
    "func_guard_table",
    "Tape",
    "MultiTape",
    "compile_expr",
    "tape_for",
    "clear_tape_cache",
    "set_batch_kernel_mode",
    "set_tape_fusion",
    "CompiledAtom",
    "CompiledConjunction",
]


# ---------------------------------------------------------------------------
# opcodes and auxiliary encodings
# ---------------------------------------------------------------------------

OP_ADD2 = 0   # out = a + b
OP_MUL2 = 1   # out = a * b
OP_ADDN = 2   # out = fold(+, args); a is a tuple of slots
OP_MULN = 3   # out = fold(*, args); a is a tuple of slots
OP_POW = 4    # out = a ** b; aux preresolves a constant exponent
OP_FUNC = 5   # out = fn(a); b is the function index
OP_ITE = 6    # a = (lhs, rhs, then, orelse); b is the condition op code

#: condition operator codes for Ite guards and relational atoms
COND_LE, COND_LT, COND_GE, COND_GT, COND_EQ = 0, 1, 2, 3, 4
COND_CODE = {"<=": COND_LE, "<": COND_LT, ">=": COND_GE, ">": COND_GT, "==": COND_EQ}

#: function indices (position in the forward/scalar tables below)
FUNC_NAMES = (
    "exp", "log", "sqrt", "cbrt", "atan", "abs",
    "lambertw", "sin", "cos", "tanh", "erf",
)
FUNC_INDEX = {name: i for i, name in enumerate(FUNC_NAMES)}
(F_EXP, F_LOG, F_SQRT, F_CBRT, F_ATAN, F_ABS,
 F_LAMBERTW, F_SIN, F_COS, F_TANH, F_ERF) = range(len(FUNC_NAMES))

_FORWARD_TABLE = (
    Interval.exp, Interval.log, Interval.sqrt, Interval.cbrt,
    Interval.atan, Interval.abs, Interval.lambertw, Interval.sin,
    Interval.cos, Interval.tanh, Interval.erf,
)
_SCALAR_TABLE = tuple(SCALAR_FUNCS[name] for name in FUNC_NAMES)

NINF = -inf
PINF = inf

#: below this batch width the batched interval executors run the scalar
#: per-column code instead of NumPy kernels: per-ufunc-call overhead is
#: flat in the width, so narrow batches are cheaper on Python floats (the
#: two strategies are bit-identical; the threshold is pure tuning).  Now
#: that Pow/Func rows are whole-batch kernels too, the measured crossover
#: on PBE/LYP/SCAN-class tapes sits at ~20-24 columns (it was ~48 in the
#: per-column days); override per call site
#: (``forward_batch``/``backward_batch`` take ``vector_min``), through
#: ``ICPSolver``/``VerifierConfig(vector_min=...)``, or via the
#: ``REPRO_VECTOR_MIN`` environment variable for tuning sweeps
_VECTOR_MIN = int(os.environ.get("REPRO_VECTOR_MIN", "24"))

#: the backward pass has its own, higher crossover: each reverse
#: instruction runs ~10 ufunc calls (endpoint products, inverses,
#: narrowing masks) against the forward pass's ~4, and the scalar
#: per-column backward stops early on refuted columns while the vector
#: pass keeps executing them -- measured crossover is ~30 (SCAN-class)
#: to ~45-60 (PBE/LYP-class) columns.  An explicit ``vector_min``
#: (parameter, solver/config knob) still overrides both passes; this
#: default only applies when the call site leaves it unset
_VECTOR_MIN_BWD = int(os.environ.get("REPRO_VECTOR_MIN_BWD", "48"))

#: whole-batch Pow/Func kernel dispatch: "vector" runs the directed-
#: rounding array kernels in :mod:`repro.solver.kernels`; "legacy" keeps
#: the per-column Interval loops (bit-identical by construction -- the
#: switch exists for differential tests and perf comparison)
_KERNEL_MODE = os.environ.get("REPRO_BATCH_KERNELS", "vector")

#: forward/backward array kernels in FUNC_NAMES index order; the None
#: backward entries (abs needs the current rows and dispatches to
#: ``_kern._bwd_abs``; sin/cos propagate nothing) are special-cased at
#: the dispatch site
_FWD_KERNELS = tuple(_kern.FWD_FUNC[name] for name in FUNC_NAMES)
_BWD_KERNELS = tuple(_kern.BWD_FUNC[name] for name in FUNC_NAMES)


#: per-process cache of built tape runtimes, keyed by the full persistent
#: state (plus the fusion flag): pool workers unpickle identical tapes on
#: every chunk, and rebuilding the dispatch lists and fold pass each time
#: is pure waste.  The cached structures are immutable in practice --
#: executors copy the init templates and only iterate the programs.
_RUNTIME_CACHE: dict = {}
_RUNTIME_CACHE_MAX = 512

#: compile-time tape fusion: constant-fold literal-operand chains out of
#: the forward instruction list at runtime-build time (values baked into
#: the slot seeds by the forward interpreter itself, hence bit-identical)
_FUSION_ON = os.environ.get("REPRO_TAPE_FUSION", "on") != "off"


def set_tape_fusion(enabled: bool) -> bool:
    """Enable/disable the constant-folding fusion pass; returns the old flag.

    Affects tapes (re)built afterwards -- existing ``Tape`` objects keep
    the runtime they were built with, so benchmarks comparing fused vs
    unfused recompile their problems after toggling.
    """
    global _FUSION_ON
    old = _FUSION_ON
    _FUSION_ON = bool(enabled)
    return old


def set_batch_kernel_mode(mode: str) -> str:
    """Select the batched Pow/Func execution strategy; returns the old one.

    ``"vector"`` (default) runs the whole-batch NumPy kernels,
    ``"legacy"`` the per-column Interval loops.  Both are bit-identical
    per column; the knob exists so tests and the perf-smoke job can
    compare them.
    """
    global _KERNEL_MODE
    if mode not in ("vector", "legacy"):
        raise ValueError(f"unknown batch kernel mode: {mode!r}")
    old = _KERNEL_MODE
    _KERNEL_MODE = mode
    return old

#: exp overflow guard shared with the scalar evaluator's ``_scalar_exp``
_EXP_OVERFLOW = 709.0
_LAMBERTW_BRANCH = -1.0 / math.e


def _batch_exp(x: np.ndarray) -> np.ndarray:
    return np.where(x > _EXP_OVERFLOW, np.nan, np.exp(np.minimum(x, _EXP_OVERFLOW)))


def _batch_log(x: np.ndarray) -> np.ndarray:
    return np.where(x <= 0.0, np.nan, np.log(np.where(x <= 0.0, 1.0, x)))


def _batch_erf(x: np.ndarray) -> np.ndarray:
    return special("erf")(x)


def _batch_lambertw(x: np.ndarray) -> np.ndarray:
    clipped = np.maximum(x, _LAMBERTW_BRANCH)
    w = np.real(special("lambertw")(clipped))
    return np.where(x < _LAMBERTW_BRANCH, np.nan, w)


#: vectorised point semantics of every unary IR function, indexed like
#: ``FUNC_NAMES``; domain errors yield NaN (``eval_scalar`` convention)
_BATCH_FUNCS = (
    _batch_exp, _batch_log, np.sqrt, np.cbrt, np.arctan, np.abs,
    _batch_lambertw, np.sin, np.cos, np.tanh, _batch_erf,
)


def _bad_exp(x):
    return x > _EXP_OVERFLOW


def _bad_log(x):
    return x <= 0.0


def _bad_sqrt(x):
    return x < 0.0


def _bad_lambertw(x):
    return x < _LAMBERTW_BRANCH


#: per-function domain-error predicates (None: total on the reals); the
#: scalar executor *raises* on these inputs wherever they occur in the
#: tape, so the batch pass accumulates them into a poison mask
_BATCH_FUNC_BAD = (
    _bad_exp, _bad_log, _bad_sqrt, None, None, None,
    _bad_lambertw, None, None, None, None,
)

#: machine-readable domain metadata of the unary IR functions, indexed
#: like ``FUNC_NAMES``: ``(kind, bound)`` describes the safe-input set
#: (``"le"``: x <= bound, ``"ge"``: x >= bound, ``"gt"``: x > bound),
#: ``None`` marks a function total on the reals.  Inputs outside the safe
#: set make the scalar executor raise and the batch executors poison the
#: point to NaN.  ``statan.tapecheck`` interprets tapes abstractly over
#: this table and cross-checks it against :data:`_BATCH_FUNC_BAD` at
#: import time, so the two cannot drift apart silently.
FUNC_DOMAINS = (
    ("le", _EXP_OVERFLOW),     # exp: overflow guard above 709
    ("gt", 0.0),               # log
    ("ge", 0.0),               # sqrt
    None, None, None,          # cbrt / atan / abs: total
    ("ge", _LAMBERTW_BRANCH),  # lambertw: principal branch only
    None, None, None, None,    # sin / cos / tanh / erf: total
)


def func_guard_table() -> tuple[bool, ...]:
    """Which IR functions the executors guard against silent NaN.

    Indexed like ``FUNC_NAMES``: True means out-of-domain inputs are
    intercepted (scalar path raises, batch paths poison the point), so a
    NaN can never flow *silently* out of that instruction.  Total
    functions are trivially guarded.
    """
    return tuple(
        bad is not None or FUNC_DOMAINS[i] is None
        for i, bad in enumerate(_BATCH_FUNC_BAD)
    )


def decide_cond(code: int, gap: Interval) -> bool | None:
    """Decide ``gap op 0`` over an interval, or None if undecided.

    Semantics identical to the tree-walk contractor's ``_decide_cond``.
    """
    if gap.is_empty():
        return None
    if code == COND_LE or code == COND_LT:
        strict = code == COND_LT
        if gap.hi <= 0.0 and not (strict and gap.hi == 0.0 and gap.lo == 0.0):
            return True
        if gap.lo > 0.0 or (strict and gap.lo >= 0.0):
            return False
        return None
    if code == COND_GE or code == COND_GT:
        flipped = decide_cond(COND_LE if code == COND_GT else COND_LT, gap)
        return None if flipped is None else not flipped
    if code == COND_EQ:
        if gap.lo == 0.0 and gap.hi == 0.0:
            return True
        if not gap.contains(0.0):
            return False
        return None
    raise ValueError(code)


def cond_holds(code: int, value: float, tol: float = 0.0) -> bool:
    """Scalar relational check ``value op 0`` with delta-weakening ``tol``."""
    if code == COND_LE:
        return value <= tol
    if code == COND_LT:
        return value < tol
    if code == COND_GE:
        return value >= -tol
    if code == COND_GT:
        return value > -tol
    return abs(value) <= tol


def cond_compare(code: int, lhs: float, rhs: float) -> bool:
    """Decide an Ite guard by direct IEEE comparison of its operands.

    Equivalent to ``cond_holds(code, lhs - rhs)`` for finite operands (the
    rounded difference of two finite doubles is zero exactly when they are
    equal -- subtraction is exact in the subnormal range -- and otherwise
    keeps the exact difference's sign), but stays correct when both
    operands overflow to the same infinity, where the subtraction
    manufactures ``inf - inf = NaN`` and every ``gap op 0`` test is False.
    Callers must reject NaN operands first (every comparison below would
    be False, silently selecting the else branch).  The comparisons
    broadcast, so ndarray operands vectorise through the same code --
    there is deliberately only one decider to diverge from.
    """
    if code == COND_LE:
        return lhs <= rhs
    if code == COND_LT:
        return lhs < rhs
    if code == COND_GE:
        return lhs >= rhs
    if code == COND_GT:
        return lhs > rhs
    return lhs == rhs


# ---------------------------------------------------------------------------
# backward-step primitives (inverse interval forms)
# ---------------------------------------------------------------------------
# These are the single source of truth for the HC4 inverse operations; the
# tree-walk oracle in repro.solver.contractor imports them from here.

def tan_restricted(x: Interval) -> Interval:
    """tan on an interval inside (-pi/2, pi/2) (inverse of atan)."""
    half_pi = math.pi / 2
    x = x.intersect(make(-half_pi, half_pi))
    if x.is_empty():
        return EMPTY
    lo = -inf if x.lo <= -half_pi + 1e-15 else math.tan(x.lo)
    hi = inf if x.hi >= half_pi - 1e-15 else math.tan(x.hi)
    return make(lo, hi).widened(
        1e-12 * (1.0 + abs(lo) + abs(hi)) if lo != -inf and hi != inf else 0.0
    )


def atanh_interval(x: Interval) -> Interval:
    x = x.intersect(make(-1.0, 1.0))
    if x.is_empty():
        return EMPTY
    # both endpoints need both edge guards: narrowing can pin x.lo to
    # +1.0 (or x.hi to -1.0), where math.atanh raises -- the limit is
    # the right enclosure there, as in erfinv_interval
    lo = -inf if x.lo <= -1.0 else (inf if x.lo >= 1.0 else math.atanh(x.lo))
    hi = inf if x.hi >= 1.0 else (-inf if x.hi <= -1.0 else math.atanh(x.hi))
    return make(lo, hi).widened(1e-14)


def erfinv_interval(x: Interval) -> Interval:
    erfinv = special("erfinv")
    x = x.intersect(make(-1.0, 1.0))
    if x.is_empty():
        return EMPTY
    lo = -inf if x.lo <= -1.0 else float(erfinv(x.lo))
    hi = inf if x.hi >= 1.0 else float(erfinv(x.hi))
    return make(lo, hi).widened(1e-12)


def wexpw(w: Interval) -> Interval:
    """Inverse image of lambertw: x = w * exp(w), monotone for w >= -1."""
    w = w.intersect(make(-1.0, inf))
    if w.is_empty():
        return EMPTY
    return (w * w.exp()).widened(1e-14)


def root_int(y: Interval, n: int, current: Interval) -> Interval:
    """Solve b**n = y for b, intersected with the sign info of ``current``."""
    if n % 2 == 1:
        # odd: monotone bijection on R
        def _nth(v: float) -> float:
            if v == inf or v == -inf:
                return v
            return math.copysign(abs(v) ** (1.0 / n), v)
        return make(_nth(y.lo), _nth(y.hi)).widened(
            1e-14 * (1.0 + abs(y.lo) + abs(y.hi))
        )
    # even: |b| = y**(1/n), y >= 0
    y = y.intersect(make(0.0, inf))
    if y.is_empty():
        return EMPTY
    hi_mag = inf if y.hi == inf else y.hi ** (1.0 / n)
    lo_mag = 0.0 if y.lo <= 0.0 else y.lo ** (1.0 / n)
    hi_mag *= 1.0 + 1e-14
    lo_mag *= 1.0 - 1e-14
    pos = make(lo_mag, hi_mag)
    neg = make(-hi_mag, -lo_mag)
    pos_part = pos.intersect(current)
    neg_part = neg.intersect(current)
    return pos_part.hull(neg_part)


# ---------------------------------------------------------------------------
# compilation
# ---------------------------------------------------------------------------

def compile_expr(expr: Expr) -> "Tape":
    """Linearize an expression DAG into a flat instruction tape.

    Slots are assigned in the same topological (children-first) order the
    tree-walk executors use, so both strategies perform the identical
    sequence of primitive operations.
    """
    order = list(expr.walk())
    slot_of: dict[int, int] = {id(node): i for i, node in enumerate(order)}
    instrs: list[tuple] = []
    var_slots: list[tuple[str, int]] = []
    const_slots: list[tuple[int, float]] = []

    for out, node in enumerate(order):
        if isinstance(node, Const):
            const_slots.append((out, node.value))
        elif isinstance(node, Var):
            var_slots.append((node.name, out))
        elif isinstance(node, Add):
            args = tuple(slot_of[id(a)] for a in node.args)
            if len(args) == 2:
                instrs.append((OP_ADD2, out, args[0], args[1], None))
            else:
                instrs.append((OP_ADDN, out, args, 0, None))
        elif isinstance(node, Mul):
            args = tuple(slot_of[id(a)] for a in node.args)
            if len(args) == 2:
                instrs.append((OP_MUL2, out, args[0], args[1], None))
            else:
                instrs.append((OP_MULN, out, args, 0, None))
        elif isinstance(node, Pow):
            aux = None
            if isinstance(node.exponent, Const):
                p = node.exponent.value
                if float(p).is_integer() and abs(p) < 2**31:
                    aux = ("i", int(p), p)
                else:
                    aux = ("r", p, p)
            instrs.append(
                (OP_POW, out, slot_of[id(node.base)], slot_of[id(node.exponent)], aux)
            )
        elif isinstance(node, Func):
            instrs.append(
                (OP_FUNC, out, slot_of[id(node.arg)], FUNC_INDEX[node.name], node.name)
            )
        elif isinstance(node, Ite):
            args = (
                slot_of[id(node.cond.lhs)],
                slot_of[id(node.cond.rhs)],
                slot_of[id(node.then)],
                slot_of[id(node.orelse)],
            )
            instrs.append((OP_ITE, out, args, COND_CODE[node.cond.op], None))
        else:  # pragma: no cover - defensive
            raise TypeError(f"cannot compile {type(node).__name__}")

    return Tape(
        instrs=tuple(instrs),
        n_slots=len(order),
        root=slot_of[id(expr)],
        var_slots=tuple(var_slots),
        const_slots=tuple(const_slots),
    )


class Tape:
    """A compiled expression: flat instructions plus slot metadata.

    The persistent state (``instrs``, ``var_slots``, ``const_slots``,
    ``root``, ``n_slots``) is pure flat data and pickles cheaply; the
    resolved per-instruction dispatch lists are rebuilt on unpickle.

    The interval executors keep per-slot ``lo``/``hi`` endpoints in two
    preallocated float arrays instead of ``Interval`` objects, and inline
    the endpoint arithmetic of the hot opcodes (add/mul chains) directly in
    the dispatch loop: the *values* computed are identical to the
    ``Interval`` methods (same operations, same order, same outward
    rounding), but the per-op allocation and method-call overhead is gone.
    The empty interval is encoded the same way (``lo > hi``).
    """

    __slots__ = (
        "instrs", "n_slots", "root", "var_slots", "const_slots",
        "_fwd", "_rev", "_scalar", "_init_los", "_init_his", "_scalar_init",
        "_batch_seed",
    )

    def __init__(self, instrs, n_slots, root, var_slots, const_slots):
        self.instrs = instrs
        self.n_slots = n_slots
        self.root = root
        self.var_slots = var_slots
        self.const_slots = const_slots
        self._build_runtime()

    # -- pickling ----------------------------------------------------------
    def __getstate__(self):
        return (self.instrs, self.n_slots, self.root, self.var_slots, self.const_slots)

    def __setstate__(self, state):
        self.instrs, self.n_slots, self.root, self.var_slots, self.const_slots = state
        # per-process compiled-runtime cache: workers unpickle the same
        # tapes on every chunk, and the runtime structures are immutable
        # once built (templates are copied, instruction lists only
        # iterated), so identical tapes can share one build
        key = (
            tuple(tuple(i) for i in self.instrs),
            self.n_slots,
            self.root,
            tuple(tuple(v) for v in self.var_slots),
            tuple(tuple(c) for c in self.const_slots),
            _FUSION_ON,
        )
        cached = _RUNTIME_CACHE.get(key)
        if cached is None:
            self._build_runtime()
            if len(_RUNTIME_CACHE) >= _RUNTIME_CACHE_MAX:
                _RUNTIME_CACHE.clear()
            _RUNTIME_CACHE[key] = (
                self._fwd, self._rev, self._scalar, self._init_los,
                self._init_his, self._scalar_init, self._batch_seed,
            )
        else:
            (self._fwd, self._rev, self._scalar, self._init_los,
             self._init_his, self._scalar_init, self._batch_seed) = cached

    def fingerprint(self) -> str:
        """Stable content hash of the tape's persistent state.

        Identical tapes -- same instructions, literal pool (bit-for-bit
        floats), slot layout and root -- hash identically across processes
        and interpreter runs, unlike ``id``-keyed identity or ``hash()``
        (which is salted for strings).  This is the content-address the
        campaign result store keys on.
        """
        return stable_digest(self.__getstate__())

    def runtime_program(self) -> tuple:
        """Read-only snapshot of the built forward runtime.

        Returns ``(fwd, batch_seed, init_los, init_his)`` as tuples: the
        post-fusion forward instruction list, the slot rows the batched
        pass reloads (literal pool plus folded results), and the scalar
        init templates.  This is the introspection surface
        ``statan.tapecheck`` audits -- it must describe exactly what the
        executors run, so it snapshots the live structures rather than
        recomputing them.
        """
        return (
            tuple(self._fwd),
            tuple(self._batch_seed),
            tuple(self._init_los),
            tuple(self._init_his),
        )

    def _build_runtime(self) -> None:
        # resolve FUNC instructions to bound callables; map the binary
        # fast-path opcodes back to their n-ary form for the backward pass
        fwd: list[tuple] = []
        scalar: list[tuple] = []
        rev: list[tuple] = []
        for op, out, a, b, aux in self.instrs:
            if op == OP_FUNC:
                fwd.append((op, out, a, b, _FORWARD_TABLE[b]))
                scalar.append((op, out, a, b, _SCALAR_TABLE[b]))
            else:
                fwd.append((op, out, a, b, aux))
                scalar.append((op, out, a, b, aux))
        for op, out, a, b, aux in reversed(self.instrs):
            if op == OP_ADD2:
                rev.append((OP_ADDN, out, (a, b), 0, None))
            elif op == OP_MUL2:
                rev.append((OP_MULN, out, (a, b), 0, None))
            else:
                rev.append((op, out, a, b, aux))
        self._fwd = fwd
        self._scalar = scalar
        self._rev = rev
        self._init_los = [0.0] * self.n_slots
        self._init_his = [0.0] * self.n_slots
        self._scalar_init = [0.0] * self.n_slots
        for slot, value in self.const_slots:
            self._init_los[slot] = value
            self._init_his[slot] = value
            self._scalar_init[slot] = value
        #: slot rows the batched forward pass (re)loads before executing:
        #: the literal pool plus, after fusion, folded instruction results
        self._batch_seed = [(s, v, v) for s, v in self.const_slots]
        if _FUSION_ON and fwd:
            self._fold_constants()

    def _fold_constants(self) -> None:
        """Fuse literal-operand instruction chains out of the forward pass.

        Instructions whose operand slots are all known at compile time
        (constants, or outputs of already-folded instructions) execute
        once here -- through :func:`_run_forward_ops` itself, so the baked
        endpoints are bit-identical to an unfused run -- and their results
        join the slot seeds.  Only the forward interval programs shrink:
        the scalar-point program and the reverse program still carry every
        instruction (the backward pass reads folded slots from the seeded
        arrays exactly as it read computed ones).
        """
        known = {slot for slot, _ in self.const_slots}
        foldable: list[tuple] = []
        live: list[tuple] = []
        for instr in self._fwd:
            op, out, a, b, aux = instr
            if op == OP_FUNC:
                ins = (a,)
            elif op in (OP_ADDN, OP_MULN, OP_ITE):
                ins = a
            else:  # ADD2 / MUL2 / POW: b is the second operand slot
                ins = (a, b)
            if all(i in known for i in ins):
                foldable.append(instr)
                known.add(out)
            else:
                live.append(instr)
        if not foldable:
            return
        los = list(self._init_los)
        his = list(self._init_his)
        _run_forward_ops(foldable, los, his)
        for _, out, _, _, _ in foldable:
            lo = los[out]
            hi = his[out]
            self._init_los[out] = lo
            self._init_his[out] = hi
            self._batch_seed.append((out, lo, hi))
        self._fwd = live

    # -- interval forward pass --------------------------------------------
    def forward_arrays(self, box, los: list, his: list) -> None:
        """Forward interval evaluation into preallocated lo/hi arrays."""
        los[:] = self._init_los
        his[:] = self._init_his
        for name, i in self.var_slots:
            try:
                iv = box[name]
            except KeyError:
                raise KeyError(f"box does not bind variable {name!r}") from None
            los[i] = iv.lo
            his[i] = iv.hi
        self._forward_ops(los, his)

    def _forward_ops(self, los: list, his: list) -> None:
        """Run the forward instructions over fully loaded slot arrays."""
        _run_forward_ops(self._fwd, los, his)

    # -- batched interval forward pass --------------------------------------
    def enclosure(self, box) -> Interval:
        """Interval enclosure of the compiled expression over ``box``."""
        n = self.n_slots
        los = [0.0] * n  # forward_arrays re-initialises from the templates
        his = [0.0] * n
        self.forward_arrays(box, los, his)
        lo = los[self.root]
        hi = his[self.root]
        if not lo <= hi:
            return EMPTY
        return Interval(lo, hi)

    # -- batched interval forward pass --------------------------------------
    def load_batch(self, boxes) -> tuple[np.ndarray, np.ndarray]:
        """Allocate ``(n_slots, n_boxes)`` endpoint matrices for ``boxes``.

        Column ``j`` of the variable rows holds the endpoints of box ``j``;
        every other row is computed by :meth:`forward_batch`.
        """
        n_boxes = len(boxes)
        lo_mat = np.empty((self.n_slots, n_boxes), dtype=np.float64)
        hi_mat = np.empty((self.n_slots, n_boxes), dtype=np.float64)
        for name, i in self.var_slots:
            row_lo = lo_mat[i]
            row_hi = hi_mat[i]
            for j, box in enumerate(boxes):
                try:
                    iv = box[name]
                except KeyError:
                    raise KeyError(f"box does not bind variable {name!r}") from None
                row_lo[j] = iv.lo
                row_hi[j] = iv.hi
        return lo_mat, hi_mat

    def forward_batch(
        self,
        lo_mat: np.ndarray,
        hi_mat: np.ndarray,
        vector_min: int | None = None,
    ) -> None:
        """Forward interval evaluation over a batch of boxes, in place.

        ``lo_mat``/``hi_mat`` are ``(n_slots, n_boxes)`` float64 matrices
        whose variable rows are already filled (see :meth:`load_batch`);
        constant rows are reloaded here and each instruction is executed
        *once* over all columns.  Every column ends up bit-for-bit equal to
        a :meth:`forward_arrays` run on that box: the endpoint arithmetic
        of add/mul chains and Ite guards is vectorised with the exact same
        operations and outward rounding (``np.nextafter`` elementwise
        matches ``math.nextafter``), while Pow/Func instructions -- whose
        scalar semantics go through libm -- run the identical per-column
        ``Interval`` calls the per-box executor makes.  The empty interval
        keeps its ``lo > hi`` encoding, and NaN endpoints propagate to
        empty exactly like the per-box comparisons do.  Zero-width batches
        are valid and leave the matrices untouched.
        """
        for slot, lo, hi in self._batch_seed:
            lo_mat[slot] = lo
            hi_mat[slot] = hi
        if lo_mat.shape[1] < (_VECTOR_MIN if vector_min is None else vector_min):
            # narrow batch: NumPy's fixed per-ufunc-call overhead beats the
            # vector win, so run the scalar executor column by column (the
            # .tolist() round trip keeps the arithmetic on Python floats)
            cols_lo = lo_mat.T.tolist()
            cols_hi = hi_mat.T.tolist()
            for j in range(lo_mat.shape[1]):
                self._forward_ops(cols_lo[j], cols_hi[j])
            lo_mat[:] = np.asarray(cols_lo).T
            hi_mat[:] = np.asarray(cols_hi).T
            return
        with np.errstate(invalid="ignore", over="ignore", divide="ignore"):
            self._forward_batch_ops(lo_mat, hi_mat)

    def _forward_batch_ops(self, lo_mat: np.ndarray, hi_mat: np.ndarray) -> None:
        _run_forward_batch_ops(self._fwd, lo_mat, hi_mat)

    def enclosure_batch(self, boxes) -> tuple[np.ndarray, np.ndarray]:
        """Root enclosure endpoints over a batch of boxes.

        Returns the root row of a :meth:`forward_batch` run as two 1-d
        arrays ``(root_lo, root_hi)``; a column with ``lo > hi`` (or NaN)
        encodes an empty enclosure, exactly like :meth:`enclosure`
        returning :data:`~repro.solver.interval.EMPTY`.
        """
        lo_mat, hi_mat = self.load_batch(boxes)
        self.forward_batch(lo_mat, hi_mat)
        return lo_mat[self.root].copy(), hi_mat[self.root].copy()

    def load_batch_arrays(
        self, var_los: dict[str, np.ndarray], var_his: dict[str, np.ndarray], n_boxes: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Allocate batch matrices with variable rows taken from arrays."""
        lo_mat = np.empty((self.n_slots, n_boxes), dtype=np.float64)
        hi_mat = np.empty((self.n_slots, n_boxes), dtype=np.float64)
        for name, i in self.var_slots:
            try:
                lo_mat[i] = var_los[name]
                hi_mat[i] = var_his[name]
            except KeyError:
                raise KeyError(f"box does not bind variable {name!r}") from None
        return lo_mat, hi_mat

    # -- batched interval backward (HC4-revise) pass -------------------------
    def backward_batch(
        self,
        lo_mat: np.ndarray,
        hi_mat: np.ndarray,
        vector_min: int | None = None,
    ) -> np.ndarray:
        """Batched backward pass; returns the per-column feasibility mask.

        Runs the reverse tape over ``(n_slots, n_boxes)`` matrices (after a
        :meth:`forward_batch` and a root intersection), narrowing slot rows
        in place.  Column ``j`` of the result is False exactly when
        :meth:`backward_arrays` on that box would have returned False; a
        dead column's remaining instructions keep executing (their values
        are garbage but harmless), whereas the per-box pass stops early --
        the surviving columns see the identical narrowing sequence either
        way.  Add/mul chains and Ite guards are vectorised with the same
        endpoint arithmetic as the scalar pass; Pow/Func inverses run the
        existing per-column primitives on column views.
        """
        n_boxes = lo_mat.shape[1]
        alive = np.ones(n_boxes, dtype=bool)
        if n_boxes < (_VECTOR_MIN_BWD if vector_min is None else vector_min):
            # narrow batch: the scalar backward per column is cheaper than
            # the per-ufunc-call overhead of the vector path
            cols_lo = lo_mat.T.tolist()
            cols_hi = hi_mat.T.tolist()
            for j in range(n_boxes):
                alive[j] = self.backward_arrays(cols_lo[j], cols_hi[j])
            lo_mat[:] = np.asarray(cols_lo).T
            hi_mat[:] = np.asarray(cols_hi).T
            return alive
        with np.errstate(invalid="ignore", over="ignore", divide="ignore"):
            self._backward_batch_ops(lo_mat, hi_mat, alive)
        return alive

    def _backward_batch_ops(
        self, lo_mat: np.ndarray, hi_mat: np.ndarray, alive: np.ndarray
    ) -> None:
        for op, out, a, b, aux in self._rev:
            olo = lo_mat[out]
            ohi = hi_mat[out]
            # an empty stored enclosure anywhere means infeasibility, as in
            # the per-box pass
            alive &= olo <= ohi
            if not alive.any():
                return

            if op == OP_ADDN:
                n = len(a)
                zeros = np.zeros_like(olo)
                plo = [zeros] * (n + 1)
                phi = [zeros] * (n + 1)
                clo = zeros
                chi = zeros
                for k in range(n):
                    i = a[k]
                    clo, chi = _add_ep_batch(clo, chi, lo_mat[i], hi_mat[i])
                    plo[k + 1] = clo
                    phi[k + 1] = chi
                slo = [zeros] * (n + 1)
                shi = [zeros] * (n + 1)
                clo = zeros
                chi = zeros
                for k in range(n - 1, -1, -1):
                    i = a[k]
                    clo, chi = _add_ep_batch(clo, chi, lo_mat[i], hi_mat[i])
                    slo[k] = clo
                    shi[k] = chi
                for k in range(n):
                    vlo, vhi = _add_ep_batch(plo[k], phi[k], slo[k + 1], shi[k + 1])
                    # allowed = out - others, with the scalar pass's guards
                    nonempty = vlo <= vhi
                    s = olo - vhi
                    alo = np.nextafter(s, NINF)
                    np.copyto(alo, NINF, where=s != s)
                    s = ohi - vlo
                    ahi = np.nextafter(s, PINF)
                    np.copyto(ahi, PINF, where=s != s)
                    np.copyto(alo, PINF, where=~nonempty)
                    np.copyto(ahi, NINF, where=~nonempty)
                    i = a[k]
                    lo = lo_mat[i]
                    hi = hi_mat[i]
                    np.copyto(lo, alo, where=alo > lo)
                    np.copyto(hi, ahi, where=ahi < hi)
                    alive &= lo <= hi

            elif op == OP_MULN:
                n = len(a)
                ones = np.ones_like(olo)
                plo = [ones] * (n + 1)
                phi = [ones] * (n + 1)
                clo = ones
                chi = ones
                for k in range(n):
                    i = a[k]
                    clo, chi = _mul_ep_batch(clo, chi, lo_mat[i], hi_mat[i])
                    plo[k + 1] = clo
                    phi[k + 1] = chi
                slo = [ones] * (n + 1)
                shi = [ones] * (n + 1)
                clo = ones
                chi = ones
                for k in range(n - 1, -1, -1):
                    i = a[k]
                    clo, chi = _mul_ep_batch(clo, chi, lo_mat[i], hi_mat[i])
                    slo[k] = clo
                    shi[k] = chi
                for k in range(n):
                    vlo, vhi = _mul_ep_batch(plo[k], phi[k], slo[k + 1], shi[k + 1])
                    # division through zero gives no contraction (skip), and
                    # the remaining columns have empty or strictly-signed
                    # [vlo, vhi], so the zero-endpoint inverse cases of
                    # Interval.inverse() stay unreachable columnwise too
                    skip = (vlo <= 0.0) & (0.0 <= vhi) & (vlo != vhi)
                    skip |= (vlo == 0.0) & (vhi == 0.0)
                    empty_v = ~(vlo <= vhi)
                    s = 1.0 / vhi
                    ilo = np.nextafter(s, NINF)
                    np.copyto(ilo, NINF, where=s != s)
                    s = 1.0 / vlo
                    ihi = np.nextafter(s, PINF)
                    np.copyto(ihi, PINF, where=s != s)
                    np.copyto(ilo, PINF, where=empty_v)
                    np.copyto(ihi, NINF, where=empty_v)
                    alo, ahi = _mul_ep_batch(olo, ohi, ilo, ihi)
                    i = a[k]
                    lo = lo_mat[i]
                    hi = hi_mat[i]
                    np.copyto(lo, alo, where=~skip & (alo > lo))
                    np.copyto(hi, ahi, where=~skip & (ahi < hi))
                    alive &= skip | (lo <= hi)

            elif op == OP_POW:
                if _KERNEL_MODE == "vector" and aux is not None:
                    if aux[0] == "i":
                        n = aux[1]
                        if n == 0:
                            continue  # x**0: no base information
                        got = (
                            _kern.bwd_pow_int(olo, ohi, n, lo_mat[a], hi_mat[a])
                            if abs(n) <= _POW_CHAIN_MAX
                            else None
                        )
                    else:
                        got = _kern.bwd_pow_real(olo, ohi, aux[1])
                    if got is not None:
                        lo = lo_mat[a]
                        hi = hi_mat[a]
                        wlo, whi = got
                        # narrow only live columns, like the per-column
                        # loop over np.nonzero(alive)
                        np.copyto(lo, wlo, where=alive & (wlo > lo))
                        np.copyto(hi, whi, where=alive & (whi < hi))
                        alive &= lo <= hi
                        continue
                # run the existing scalar inverse per column on plain
                # Python floats (dict shims stand in for the slot arrays;
                # only slots a and b are read or narrowed)
                blo = lo_mat[a].tolist()
                bhi = hi_mat[a].tolist()
                elo = lo_mat[b].tolist()
                ehi = hi_mat[b].tolist()
                olo_l = olo.tolist()
                ohi_l = ohi.tolist()
                for j in np.nonzero(alive)[0]:
                    los_d = {a: blo[j], b: elo[j]}
                    his_d = {a: bhi[j], b: ehi[j]}
                    ok = _backward_pow(
                        los_d, his_d, Interval(olo_l[j], ohi_l[j]), a, b, aux
                    )
                    blo[j] = los_d[a]
                    bhi[j] = his_d[a]
                    elo[j] = los_d[b]
                    ehi[j] = his_d[b]
                    if not ok:
                        alive[j] = False
                lo_mat[a] = blo
                hi_mat[a] = bhi
                lo_mat[b] = elo
                hi_mat[b] = ehi

            elif op == OP_FUNC:
                if _KERNEL_MODE == "vector":
                    if b == F_SIN or b == F_COS:
                        continue  # non-invertible over wide ranges (sound)
                    lo = lo_mat[a]
                    hi = hi_mat[a]
                    if b == F_ABS:
                        wlo, whi = _kern._bwd_abs(olo, ohi, lo, hi)
                    else:
                        wlo, whi = _BWD_KERNELS[b](olo, ohi)
                    np.copyto(lo, wlo, where=alive & (wlo > lo))
                    np.copyto(hi, whi, where=alive & (whi < hi))
                    alive &= lo <= hi
                    continue
                alo = lo_mat[a].tolist()
                ahi = hi_mat[a].tolist()
                olo_l = olo.tolist()
                ohi_l = ohi.tolist()
                for j in np.nonzero(alive)[0]:
                    los_d = {a: alo[j]}
                    his_d = {a: ahi[j]}
                    ok = _backward_func(
                        los_d, his_d, Interval(olo_l[j], ohi_l[j]), a, b
                    )
                    alo[j] = los_d[a]
                    ahi[j] = his_d[a]
                    if not ok:
                        alive[j] = False
                lo_mat[a] = alo
                hi_mat[a] = ahi

            else:  # OP_ITE
                lhs, rhs, then, orelse = a
                is_true, is_false = _decide_gap_batch(b, lo_mat, hi_mat, lhs, rhs)
                for mask, target in ((is_true, then), (is_false, orelse)):
                    lo = lo_mat[target]
                    hi = hi_mat[target]
                    np.copyto(lo, olo, where=mask & (olo > lo))
                    np.copyto(hi, ohi, where=mask & (ohi < hi))
                    alive &= ~mask | (lo <= hi)

    # -- interval backward (HC4-revise) pass --------------------------------
    def backward_arrays(self, los: list, his: list) -> bool:
        """Push narrowed enclosures down the tape; False if a slot empties.

        Mirrors the tree-walk ``_backward_node`` instruction for
        instruction (including its treatment of an empty stored enclosure
        anywhere as infeasibility), so contraction results are identical.
        """
        nextafter = math.nextafter
        for op, out, a, b, aux in self._rev:
            olo = los[out]
            ohi = his[out]
            if not olo <= ohi:
                return False

            if op == OP_ADDN:
                n = len(a)
                # prefix[i] = sum of args[:i]; suffix[i] = sum of args[i:]
                plo = [0.0] * (n + 1); phi = [0.0] * (n + 1)
                clo = 0.0; chi = 0.0
                for k in range(n):
                    i = a[k]
                    blo = los[i]; bhi = his[i]
                    if clo <= chi and blo <= bhi:
                        s = clo + blo
                        clo = NINF if (s != s or s == NINF) else nextafter(s, NINF)
                        s = chi + bhi
                        chi = PINF if (s != s or s == PINF) else nextafter(s, PINF)
                    else:
                        clo = PINF; chi = NINF
                    plo[k + 1] = clo; phi[k + 1] = chi
                slo = [0.0] * (n + 1); shi = [0.0] * (n + 1)
                clo = 0.0; chi = 0.0
                for k in range(n - 1, -1, -1):
                    i = a[k]
                    blo = los[i]; bhi = his[i]
                    if clo <= chi and blo <= bhi:
                        s = clo + blo
                        clo = NINF if (s != s or s == NINF) else nextafter(s, NINF)
                        s = chi + bhi
                        chi = PINF if (s != s or s == PINF) else nextafter(s, PINF)
                    else:
                        clo = PINF; chi = NINF
                    slo[k] = clo; shi[k] = chi
                for k in range(n):
                    # others = prefix[k] + suffix[k+1]
                    alo = plo[k]; ahi = phi[k]; blo = slo[k + 1]; bhi = shi[k + 1]
                    if alo <= ahi and blo <= bhi:
                        s = alo + blo
                        vlo = NINF if (s != s or s == NINF) else nextafter(s, NINF)
                        s = ahi + bhi
                        vhi = PINF if (s != s or s == PINF) else nextafter(s, PINF)
                        # allowed = out - others
                        if vlo <= vhi:
                            s = olo - vhi
                            alo = NINF if (s != s or s == NINF) else nextafter(s, NINF)
                            s = ohi - vlo
                            ahi = PINF if (s != s or s == PINF) else nextafter(s, PINF)
                        else:
                            alo = PINF; ahi = NINF
                    else:
                        alo = PINF; ahi = NINF
                    i = a[k]
                    lo = los[i]; hi = his[i]
                    if alo > lo:
                        lo = alo
                    if ahi < hi:
                        hi = ahi
                    los[i] = lo; his[i] = hi
                    if not lo <= hi:
                        return False

            elif op == OP_MULN:
                n = len(a)
                plo = [1.0] * (n + 1); phi = [1.0] * (n + 1)
                clo = 1.0; chi = 1.0
                for k in range(n):
                    i = a[k]
                    blo = los[i]; bhi = his[i]
                    clo, chi = _mul_ep(clo, chi, blo, bhi, nextafter)
                    plo[k + 1] = clo; phi[k + 1] = chi
                slo = [1.0] * (n + 1); shi = [1.0] * (n + 1)
                clo = 1.0; chi = 1.0
                for k in range(n - 1, -1, -1):
                    i = a[k]
                    blo = los[i]; bhi = his[i]
                    clo, chi = _mul_ep(clo, chi, blo, bhi, nextafter)
                    slo[k] = clo; shi[k] = chi
                for k in range(n):
                    vlo, vhi = _mul_ep(plo[k], phi[k], slo[k + 1], shi[k + 1], nextafter)
                    if vlo <= 0.0 <= vhi and vlo != vhi:
                        continue  # division through zero gives no contraction
                    if vlo == 0.0 and vhi == 0.0:
                        continue
                    # allowed = out / others = out * inverse(others); the
                    # two guards above leave only empty or strictly-signed
                    # [vlo, vhi], so the zero-endpoint inverse cases of
                    # Interval.inverse() are unreachable here
                    if not vlo <= vhi:
                        ilo = PINF; ihi = NINF
                    else:
                        s = 1.0 / vhi
                        ilo = NINF if (s != s or s == NINF) else nextafter(s, NINF)
                        s = 1.0 / vlo
                        ihi = PINF if (s != s or s == PINF) else nextafter(s, PINF)
                    alo, ahi = _mul_ep(olo, ohi, ilo, ihi, nextafter)
                    i = a[k]
                    lo = los[i]; hi = his[i]
                    if alo > lo:
                        lo = alo
                    if ahi < hi:
                        hi = ahi
                    los[i] = lo; his[i] = hi
                    if not lo <= hi:
                        return False

            elif op == OP_POW:
                if not _backward_pow(los, his, Interval(olo, ohi), a, b, aux):
                    return False

            elif op == OP_FUNC:
                if not _backward_func(los, his, Interval(olo, ohi), a, b):
                    return False

            else:  # OP_ITE
                lhs, rhs, then, orelse = a
                branch = _decide_gap(b, los, his, lhs, rhs)
                if branch is True:
                    target = then
                elif branch is False:
                    target = orelse
                else:
                    continue  # undecided: no sound single-branch propagation
                lo = los[target]; hi = his[target]
                if olo > lo:
                    lo = olo
                if ohi < hi:
                    hi = ohi
                los[target] = lo; his[target] = hi
                if not lo <= hi:
                    return False
        return True

    # -- scalar (point) evaluation ------------------------------------------
    def eval_point(self, env: dict[str, float]) -> float:
        """Evaluate at a point; raises on domain errors like the tree walk."""
        slots = self._scalar_init[:]
        for name, i in self.var_slots:
            try:
                slots[i] = env[name]
            except KeyError:
                raise EvalError(f"unbound variable {name!r}") from None
        for op, out, a, b, aux in self._scalar:
            if op == OP_ADD2:
                # fsum, not +: the oracle's fsum raises on inf + -inf where
                # + would yield a silently propagating NaN
                slots[out] = math.fsum((slots[a], slots[b]))
            elif op == OP_MUL2:
                slots[out] = slots[a] * slots[b]
            elif op == OP_FUNC:
                slots[out] = aux(slots[a])
            elif op == OP_POW:
                base = slots[a]
                expo = aux[2] if aux is not None else slots[b]
                if base < 0.0 and not float(expo).is_integer():
                    raise EvalError(
                        f"negative base {base} to fractional power {expo}"
                    )
                if base == 0.0 and expo < 0.0:
                    raise EvalError("zero to a negative power")
                slots[out] = math.pow(base, expo)
            elif op == OP_ADDN:
                slots[out] = math.fsum(slots[i] for i in a)
            elif op == OP_MULN:
                acc = 1.0
                for i in a:
                    acc *= slots[i]
                slots[out] = acc
            else:  # OP_ITE
                lhs, rhs, then, orelse = a
                lv, rv = slots[lhs], slots[rhs]
                if math.isnan(lv) or math.isnan(rv):
                    raise EvalError("NaN in ite condition")
                slots[out] = slots[then] if cond_compare(b, lv, rv) else slots[orelse]
        return slots[self.root]

    def eval_scalar(self, env: dict[str, float]) -> float:
        """Evaluate at a point; domain errors yield NaN (non-strict mode)."""
        try:
            return self.eval_point(env)
        except (ValueError, OverflowError, ZeroDivisionError):
            return math.nan

    def eval_point_batch(self, env: dict[str, np.ndarray]) -> np.ndarray:
        """Vectorised scalar evaluation over a whole grid of points.

        ``env`` maps each variable name to an ndarray (all broadcastable to
        a common shape); the result has that shape.  Semantics follow
        :meth:`eval_scalar`: a domain error *anywhere* in the tape
        (negative base to a fractional power, ``log`` of a non-positive
        number, exp overflow, Lambert W below the branch point, pow
        overflow, NaN in an ``ite`` guard) poisons that point to NaN --
        like the eager scalar executor, which raises even when the
        offending instruction feeds an untaken ``ite`` branch.  Unlike the
        bit-exact interval batch pass, values may differ from
        :meth:`eval_point` by rounding ulps: n-ary sums accumulate
        pairwise instead of via ``math.fsum``, and transcendentals go
        through NumPy's libm rather than CPython's.  One semantic gap
        remains: a *sum* of finite values overflowing to +/-inf saturates
        here, where ``math.fsum`` raises and the scalar path yields NaN.
        """
        slots: list = [None] * self.n_slots
        for slot, value in self.const_slots:
            slots[slot] = value
        shape = None
        for name, i in self.var_slots:
            try:
                arr = np.asarray(env[name], dtype=np.float64)
            except KeyError:
                raise EvalError(f"unbound variable {name!r}") from None
            slots[i] = arr
            shape = arr.shape if shape is None else np.broadcast_shapes(shape, arr.shape)
        nan = np.nan
        err = False  # poison mask: domain errors anywhere abort the point
        with np.errstate(invalid="ignore", over="ignore", divide="ignore"):
            for op, out, a, b, aux in self._scalar:
                if op == OP_ADD2:
                    slots[out] = slots[a] + slots[b]
                elif op == OP_MUL2:
                    slots[out] = slots[a] * slots[b]
                elif op == OP_FUNC:
                    arg = np.asarray(slots[a], dtype=np.float64)
                    bad_fn = _BATCH_FUNC_BAD[b]
                    if bad_fn is not None:
                        err = err | bad_fn(arg)
                    slots[out] = _BATCH_FUNCS[b](arg)
                elif op == OP_POW:
                    base = np.asarray(slots[a], dtype=np.float64)
                    expo = aux[2] if aux is not None else np.asarray(slots[b])
                    value = np.power(base, expo)
                    if aux is None:
                        frac = (expo != np.floor(expo)) | np.isinf(expo)
                    else:
                        frac = not float(expo).is_integer()
                    bad = (base < 0.0) & frac
                    bad |= (base == 0.0) & (np.asarray(expo) < 0.0)
                    # finite operands overflowing to inf: math.pow raises
                    # OverflowError there, which eval_scalar maps to NaN
                    bad |= np.isinf(value) & np.isfinite(base) & np.isfinite(expo)
                    err = err | bad
                    slots[out] = np.where(bad, nan, value)
                elif op == OP_ADDN:
                    acc = slots[a[0]]
                    for i in a[1:]:
                        acc = acc + slots[i]
                    slots[out] = acc
                elif op == OP_MULN:
                    acc = slots[a[0]]
                    for i in a[1:]:
                        acc = acc * slots[i]
                    slots[out] = acc
                else:  # OP_ITE
                    lhs, rhs, then, orelse = a
                    lv = np.asarray(slots[lhs], dtype=np.float64)
                    rv = np.asarray(slots[rhs], dtype=np.float64)
                    err = err | np.isnan(lv) | np.isnan(rv)
                    slots[out] = np.where(
                        cond_compare(b, lv, rv), slots[then], slots[orelse]
                    )
        result = np.asarray(slots[self.root], dtype=np.float64)
        if shape is not None and result.shape != shape:
            result = np.broadcast_to(result, shape).copy()
        if err is not False:
            result = np.where(err, nan, result)
            result = np.asarray(result, dtype=np.float64)
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Tape({len(self.instrs)} instrs, {self.n_slots} slots, "
            f"{len(self.var_slots)} var loads, {len(self.const_slots)} consts)"
        )


def _run_forward_ops(fwd: list, los: list, his: list) -> None:
    """Forward instruction interpreter over scalar slot arrays.

    Module level (taking the instruction list explicitly) so fused
    multi-tapes and the constant-folding pass can run instruction
    subsets through the exact same interpreter.
    """
    nextafter = math.nextafter
    for op, out, a, b, aux in fwd:
        if op == OP_ADD2:
            alo = los[a]; ahi = his[a]; blo = los[b]; bhi = his[b]
            if alo <= ahi and blo <= bhi:
                s = alo + blo
                los[out] = NINF if (s != s or s == NINF) else nextafter(s, NINF)
                s = ahi + bhi
                his[out] = PINF if (s != s or s == PINF) else nextafter(s, PINF)
            else:
                los[out] = PINF; his[out] = NINF
        elif op == OP_MUL2:
            alo = los[a]; ahi = his[a]; blo = los[b]; bhi = his[b]
            if alo <= ahi and blo <= bhi:
                p = alo * blo
                if p != p:
                    p = 0.0
                lo = hi = p
                p = alo * bhi
                if p != p:
                    p = 0.0
                if p < lo:
                    lo = p
                elif p > hi:
                    hi = p
                p = ahi * blo
                if p != p:
                    p = 0.0
                if p < lo:
                    lo = p
                elif p > hi:
                    hi = p
                p = ahi * bhi
                if p != p:
                    p = 0.0
                if p < lo:
                    lo = p
                elif p > hi:
                    hi = p
                los[out] = NINF if lo == NINF else nextafter(lo, NINF)
                his[out] = PINF if hi == PINF else nextafter(hi, PINF)
            else:
                los[out] = PINF; his[out] = NINF
        elif op == OP_FUNC:
            iv = aux(Interval(los[a], his[a]))
            los[out] = iv.lo
            his[out] = iv.hi
        elif op == OP_POW:
            if aux is None:
                base = Interval(los[a], his[a])
                elo = los[b]
                if elo == his[b]:
                    iv = base.pow(elo)
                else:
                    iv = (Interval(elo, his[b]) * base.log()).exp()
            elif aux[0] == "i":
                iv = Interval(los[a], his[a]).pow_int(aux[1])
            else:
                iv = Interval(los[a], his[a]).pow_real(aux[1])
            los[out] = iv.lo
            his[out] = iv.hi
        elif op == OP_ADDN:
            i = a[0]
            clo = los[i]; chi = his[i]
            for i in a[1:]:
                blo = los[i]; bhi = his[i]
                if clo <= chi and blo <= bhi:
                    s = clo + blo
                    clo = NINF if (s != s or s == NINF) else nextafter(s, NINF)
                    s = chi + bhi
                    chi = PINF if (s != s or s == PINF) else nextafter(s, PINF)
                else:
                    clo = PINF; chi = NINF
            los[out] = clo; his[out] = chi
        elif op == OP_MULN:
            i = a[0]
            clo = los[i]; chi = his[i]
            for i in a[1:]:
                blo = los[i]; bhi = his[i]
                if clo <= chi and blo <= bhi:
                    p = clo * blo
                    if p != p:
                        p = 0.0
                    lo = hi = p
                    p = clo * bhi
                    if p != p:
                        p = 0.0
                    if p < lo:
                        lo = p
                    elif p > hi:
                        hi = p
                    p = chi * blo
                    if p != p:
                        p = 0.0
                    if p < lo:
                        lo = p
                    elif p > hi:
                        hi = p
                    p = chi * bhi
                    if p != p:
                        p = 0.0
                    if p < lo:
                        lo = p
                    elif p > hi:
                        hi = p
                    clo = NINF if lo == NINF else nextafter(lo, NINF)
                    chi = PINF if hi == PINF else nextafter(hi, PINF)
                else:
                    clo = PINF; chi = NINF
            los[out] = clo; his[out] = chi
        else:  # OP_ITE
            lhs, rhs, then, orelse = a
            branch = _decide_gap(b, los, his, lhs, rhs)
            if branch is True:
                los[out] = los[then]; his[out] = his[then]
            elif branch is False:
                los[out] = los[orelse]; his[out] = his[orelse]
            else:
                tlo = los[then]; thi = his[then]
                olo = los[orelse]; ohi = his[orelse]
                if not tlo <= thi:
                    los[out] = olo; his[out] = ohi
                elif not olo <= ohi:
                    los[out] = tlo; his[out] = thi
                else:
                    los[out] = tlo if tlo <= olo else olo
                    his[out] = thi if thi >= ohi else ohi


def _run_forward_batch_ops(fwd: list, lo_mat: np.ndarray, hi_mat: np.ndarray) -> None:
    """Batched forward instruction interpreter over endpoint matrices."""
    n_boxes = lo_mat.shape[1]
    for op, out, a, b, aux in fwd:
        if op == OP_ADD2:
            lo, hi = _add_ep_batch(lo_mat[a], hi_mat[a], lo_mat[b], hi_mat[b])
            lo_mat[out] = lo
            hi_mat[out] = hi
        elif op == OP_MUL2:
            lo, hi = _mul_ep_batch(lo_mat[a], hi_mat[a], lo_mat[b], hi_mat[b])
            lo_mat[out] = lo
            hi_mat[out] = hi
        elif op == OP_FUNC:
            if _KERNEL_MODE == "vector":
                lo, hi = _FWD_KERNELS[b](lo_mat[a], hi_mat[a])
                lo_mat[out] = lo
                hi_mat[out] = hi
                continue
            # legacy: .tolist() round-trips give the per-column loop
            # plain Python floats: identical IEEE values, several-fold
            # faster than operating on np.float64 scalars
            alo = lo_mat[a].tolist()
            ahi = hi_mat[a].tolist()
            olo = [0.0] * n_boxes
            ohi = [0.0] * n_boxes
            for j in range(n_boxes):
                iv = aux(Interval(alo[j], ahi[j]))
                olo[j] = iv.lo
                ohi[j] = iv.hi
            lo_mat[out] = olo
            hi_mat[out] = ohi
        elif op == OP_POW:
            if _KERNEL_MODE == "vector" and aux is not None:
                # whole-row kernels cover constant exponents; a large
                # |n| (no mult chain) drops to the per-column loop
                if aux[0] == "i":
                    got = _kern.fwd_pow_int(lo_mat[a], hi_mat[a], aux[1])
                else:
                    got = _kern.fwd_pow_real(lo_mat[a], hi_mat[a], aux[1])
                if got is not None:
                    lo_mat[out] = got[0]
                    hi_mat[out] = got[1]
                    continue
            blo = lo_mat[a].tolist()
            bhi = hi_mat[a].tolist()
            olo = [0.0] * n_boxes
            ohi = [0.0] * n_boxes
            if aux is None:
                elo_row = lo_mat[b].tolist()
                ehi_row = hi_mat[b].tolist()
                for j in range(n_boxes):
                    base = Interval(blo[j], bhi[j])
                    elo = elo_row[j]
                    if elo == ehi_row[j]:
                        iv = base.pow(elo)
                    else:
                        iv = (Interval(elo, ehi_row[j]) * base.log()).exp()
                    olo[j] = iv.lo
                    ohi[j] = iv.hi
            elif aux[0] == "i":
                n = aux[1]
                for j in range(n_boxes):
                    iv = Interval(blo[j], bhi[j]).pow_int(n)
                    olo[j] = iv.lo
                    ohi[j] = iv.hi
            else:
                p = aux[1]
                for j in range(n_boxes):
                    iv = Interval(blo[j], bhi[j]).pow_real(p)
                    olo[j] = iv.lo
                    ohi[j] = iv.hi
            lo_mat[out] = olo
            hi_mat[out] = ohi
        elif op == OP_ADDN:
            i = a[0]
            clo = lo_mat[i]
            chi = hi_mat[i]
            for i in a[1:]:
                clo, chi = _add_ep_batch(clo, chi, lo_mat[i], hi_mat[i])
            lo_mat[out] = clo
            hi_mat[out] = chi
        elif op == OP_MULN:
            i = a[0]
            clo = lo_mat[i]
            chi = hi_mat[i]
            for i in a[1:]:
                clo, chi = _mul_ep_batch(clo, chi, lo_mat[i], hi_mat[i])
            lo_mat[out] = clo
            hi_mat[out] = chi
        else:  # OP_ITE
            lhs, rhs, then, orelse = a
            is_true, is_false = _decide_gap_batch(b, lo_mat, hi_mat, lhs, rhs)
            tlo = lo_mat[then]
            thi = hi_mat[then]
            olo = lo_mat[orelse]
            ohi = hi_mat[orelse]
            # undecided columns take the hull, ignoring an empty branch;
            # the <=-picks (not np.minimum) replicate the per-box
            # comparisons exactly, including signed-zero choices
            t_empty = ~(tlo <= thi)
            o_empty = ~(olo <= ohi)
            lo = np.where(tlo <= olo, tlo, olo)
            hi = np.where(thi >= ohi, thi, ohi)
            lo = np.where(o_empty, tlo, lo)
            hi = np.where(o_empty, thi, hi)
            lo = np.where(t_empty, olo, lo)
            hi = np.where(t_empty, ohi, hi)
            lo = np.where(is_true, tlo, np.where(is_false, olo, lo))
            hi = np.where(is_true, thi, np.where(is_false, ohi, hi))
            lo_mat[out] = lo
            hi_mat[out] = hi


class MultiTape:
    """Fused forward-only execution of several compiled tapes at once.

    Merges the instruction lists of a group of tapes -- typically the
    atoms of a :class:`CompiledConjunction` evaluated over the same
    frontier -- into one shared program:

    * identical subexpressions across atoms collapse to a single slot
      (common-subtape sharing, via canonical per-slot interning keys);
    * literal-operand chains constant-fold at the merged level, through
      the same forward interpreter, so baked values stay bit-identical;
    * slots no root depends on are eliminated and the numbering
      compacted.

    Each root row of a :meth:`forward_batch` run is bit-for-bit equal to
    the corresponding tape's own batched forward pass: the merged program
    executes the identical instructions on the identical inputs, only
    once instead of once per atom.  Multi-tapes are rebuilt per process
    (cheap, cached on the contractor) and never pickled.
    """

    __slots__ = ("n_slots", "var_slots", "seed", "roots", "_fwd")

    def __init__(self, n_slots, var_slots, seed, roots, fwd):
        self.n_slots = n_slots
        self.var_slots = var_slots
        self.seed = seed
        self.roots = roots
        self._fwd = fwd

    @classmethod
    def from_tapes(cls, tapes) -> "MultiTape":
        key_to_slot: dict = {}
        seed: list = []       # (slot, lo, hi)
        var_slots: list = []  # (name, slot)
        fwd: list = []        # merged resolved instructions
        roots: list = []
        n = 0
        for tape in tapes:
            local: dict[int, int] = {}
            for slot, value in tape.const_slots:
                k = ("c", float(value).hex())
                g = key_to_slot.get(k)
                if g is None:
                    g = key_to_slot[k] = n
                    n += 1
                    seed.append((g, value, value))
                local[slot] = g
            for name, slot in tape.var_slots:
                k = ("v", name)
                g = key_to_slot.get(k)
                if g is None:
                    g = key_to_slot[k] = n
                    n += 1
                    var_slots.append((name, g))
                local[slot] = g
            for op, out, a, b, aux in tape.instrs:
                # interning keys use *global* operand slots: identical
                # subtapes across atoms resolve to identical globals
                # bottom-up, so flat keys capture full-tree identity
                if op == OP_FUNC:
                    ga = local[a]
                    k = (op, b, ga)
                    instr = (op, None, ga, b, _FORWARD_TABLE[b])
                elif op == OP_ITE or op in (OP_ADDN, OP_MULN):
                    ga = tuple(local[i] for i in a)
                    k = (op, b, ga)
                    instr = (op, None, ga, b, aux)
                else:  # ADD2 / MUL2 / POW: a and b are operand slots
                    ga = local[a]
                    gb = local[b]
                    k = (op, ga, gb, aux)
                    instr = (op, None, ga, gb, aux)
                g = key_to_slot.get(k)
                if g is None:
                    g = key_to_slot[k] = n
                    n += 1
                    fwd.append((instr[0], g, instr[2], instr[3], instr[4]))
                local[out] = g
            roots.append(local[tape.root])

        # constant folding at the merged level, through the interpreter
        if _FUSION_ON and fwd:
            known = {s for s, _, _ in seed}
            foldable: list = []
            live: list = []
            for instr in fwd:
                op, out, a, b, aux = instr
                if op == OP_FUNC:
                    ins = (a,)
                elif op == OP_ITE or op in (OP_ADDN, OP_MULN):
                    ins = a
                else:
                    ins = (a, b)
                if all(i in known for i in ins):
                    foldable.append(instr)
                    known.add(out)
                else:
                    live.append(instr)
            if foldable:
                los = [0.0] * n
                his = [0.0] * n
                for s, lo, hi in seed:
                    los[s] = lo
                    his[s] = hi
                _run_forward_ops(foldable, los, his)
                for _, out, _, _, _ in foldable:
                    seed.append((out, los[out], his[out]))
                fwd = live

        # dead-slot elimination: keep only what some root depends on
        needed = set(roots)
        keep: list = []
        for instr in reversed(fwd):
            op, out, a, b, aux = instr
            if out not in needed:
                continue
            keep.append(instr)
            if op == OP_FUNC:
                needed.add(a)
            elif op == OP_ITE or op in (OP_ADDN, OP_MULN):
                needed.update(a)
            else:
                needed.add(a)
                needed.add(b)
        keep.reverse()
        remap = {old: i for i, old in enumerate(sorted(needed))}
        fwd = []
        for op, out, a, b, aux in keep:
            if op == OP_FUNC:
                fwd.append((op, remap[out], remap[a], b, aux))
            elif op == OP_ITE or op in (OP_ADDN, OP_MULN):
                fwd.append((op, remap[out], tuple(remap[i] for i in a), b, aux))
            else:
                fwd.append((op, remap[out], remap[a], remap[b], aux))
        return cls(
            len(remap),
            [(name, remap[s]) for name, s in var_slots if s in remap],
            [(remap[s], lo, hi) for s, lo, hi in seed if s in remap],
            [remap[r] for r in roots],
            fwd,
        )

    # -- batched forward over the merged program ----------------------------
    def load_batch(self, boxes) -> tuple[np.ndarray, np.ndarray]:
        """Allocate ``(n_slots, n_boxes)`` matrices, variable rows filled."""
        n_boxes = len(boxes)
        lo_mat = np.empty((self.n_slots, n_boxes), dtype=np.float64)
        hi_mat = np.empty((self.n_slots, n_boxes), dtype=np.float64)
        for name, i in self.var_slots:
            row_lo = lo_mat[i]
            row_hi = hi_mat[i]
            for j, box in enumerate(boxes):
                try:
                    iv = box[name]
                except KeyError:
                    raise KeyError(f"box does not bind variable {name!r}") from None
                row_lo[j] = iv.lo
                row_hi[j] = iv.hi
        return lo_mat, hi_mat

    def load_batch_arrays(
        self, var_los: dict[str, np.ndarray], var_his: dict[str, np.ndarray], n_boxes: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Allocate batch matrices with variable rows taken from arrays."""
        lo_mat = np.empty((self.n_slots, n_boxes), dtype=np.float64)
        hi_mat = np.empty((self.n_slots, n_boxes), dtype=np.float64)
        for name, i in self.var_slots:
            try:
                lo_mat[i] = var_los[name]
                hi_mat[i] = var_his[name]
            except KeyError:
                raise KeyError(f"box does not bind variable {name!r}") from None
        return lo_mat, hi_mat

    def forward_batch(
        self,
        lo_mat: np.ndarray,
        hi_mat: np.ndarray,
        vector_min: int | None = None,
    ) -> None:
        """One shared forward pass; root rows match each tape's own run."""
        for slot, lo, hi in self.seed:
            lo_mat[slot] = lo
            hi_mat[slot] = hi
        if lo_mat.shape[1] < (_VECTOR_MIN if vector_min is None else vector_min):
            cols_lo = lo_mat.T.tolist()
            cols_hi = hi_mat.T.tolist()
            for j in range(lo_mat.shape[1]):
                _run_forward_ops(self._fwd, cols_lo[j], cols_hi[j])
            lo_mat[:] = np.asarray(cols_lo).T
            hi_mat[:] = np.asarray(cols_hi).T
            return
        with np.errstate(invalid="ignore", over="ignore", divide="ignore"):
            _run_forward_batch_ops(self._fwd, lo_mat, hi_mat)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MultiTape({len(self.roots)} roots, {len(self._fwd)} instrs, "
            f"{self.n_slots} slots)"
        )


def _mul_ep(alo: float, ahi: float, blo: float, bhi: float, nextafter) -> tuple:
    """Endpoint form of ``Interval.__mul__`` (same values, no allocation)."""
    if not (alo <= ahi and blo <= bhi):
        return PINF, NINF
    p = alo * blo
    if p != p:
        p = 0.0
    lo = hi = p
    p = alo * bhi
    if p != p:
        p = 0.0
    if p < lo:
        lo = p
    elif p > hi:
        hi = p
    p = ahi * blo
    if p != p:
        p = 0.0
    if p < lo:
        lo = p
    elif p > hi:
        hi = p
    p = ahi * bhi
    if p != p:
        p = 0.0
    if p < lo:
        lo = p
    elif p > hi:
        hi = p
    return (
        NINF if lo == NINF else nextafter(lo, NINF),
        PINF if hi == PINF else nextafter(hi, PINF),
    )


def _add_ep_batch(alo, ahi, blo, bhi) -> tuple[np.ndarray, np.ndarray]:
    """Columnwise form of the inline ADD2 endpoint arithmetic.

    Same values as the per-box code: outward-rounded sums, NaN sums
    saturating to the infinite endpoint, empty inputs producing the empty
    encoding (``lo > hi``).
    """
    nonempty = (alo <= ahi) & (blo <= bhi)
    s = alo + blo
    lo = np.nextafter(s, NINF)
    np.copyto(lo, NINF, where=s != s)
    s = ahi + bhi
    hi = np.nextafter(s, PINF)
    np.copyto(hi, PINF, where=s != s)
    np.copyto(lo, PINF, where=~nonempty)
    np.copyto(hi, NINF, where=~nonempty)
    return lo, hi


def _mul_ep_batch_stack(alo, ahi, blo, bhi) -> tuple[np.ndarray, np.ndarray]:
    """The original ``(4, n)`` stack-and-reduce endpoint multiply.

    Kept verbatim as the ``"legacy"`` kernel-mode implementation: the
    legacy mode's job is to preserve the pre-kernel batch backend as a
    faithful perf baseline and as an independent implementation for the
    differential fuzz corpus, and this multiply was part of it.
    """
    prods = np.empty((4,) + alo.shape)
    np.multiply(alo, blo, out=prods[0])
    np.multiply(alo, bhi, out=prods[1])
    np.multiply(ahi, blo, out=prods[2])
    np.multiply(ahi, bhi, out=prods[3])
    np.copyto(prods, 0.0, where=prods != prods)
    lo = prods.min(axis=0)
    hi = prods.max(axis=0)
    out_lo = np.nextafter(lo, NINF)
    out_hi = np.nextafter(hi, PINF)
    np.copyto(out_lo, NINF, where=lo == NINF)
    np.copyto(out_hi, PINF, where=hi == PINF)
    empty = ~((alo <= ahi) & (blo <= bhi))
    np.copyto(out_lo, PINF, where=empty)
    np.copyto(out_hi, NINF, where=empty)
    return out_lo, out_hi


def _mul_ep_batch(alo, ahi, blo, bhi) -> tuple[np.ndarray, np.ndarray]:
    """Columnwise form of ``_mul_ep``: identical products and NaN
    cleaning, min/max over the four endpoint products, then one-ulp
    outward rounding.  The scalar code picks min/max with sequential
    ``<``/``>`` compares, which can differ from a reduction only in the
    sign of a zero -- and ``nextafter`` maps both zeros to the same
    neighbour, so the rounded outputs are bit-identical.  Pairwise
    ``minimum``/``maximum`` over four flat products beats a ``(4, n)``
    stack-and-reduce by ~20% at every batch width, and ``nextafter``
    already maps an infinite endpoint toward its own sign to itself, so
    no explicit infinity restore is needed.
    """
    if _KERNEL_MODE == "legacy":
        return _mul_ep_batch_stack(alo, ahi, blo, bhi)
    p0 = alo * blo
    p1 = alo * bhi
    p2 = ahi * blo
    p3 = ahi * bhi
    np.copyto(p0, 0.0, where=p0 != p0)
    np.copyto(p1, 0.0, where=p1 != p1)
    np.copyto(p2, 0.0, where=p2 != p2)
    np.copyto(p3, 0.0, where=p3 != p3)
    lo = np.minimum(np.minimum(p0, p1), np.minimum(p2, p3))
    hi = np.maximum(np.maximum(p0, p1), np.maximum(p2, p3))
    out_lo = np.nextafter(lo, NINF, out=lo)
    out_hi = np.nextafter(hi, PINF, out=hi)
    empty = ~((alo <= ahi) & (blo <= bhi))
    np.copyto(out_lo, PINF, where=empty)
    np.copyto(out_hi, NINF, where=empty)
    return out_lo, out_hi


def _decide_masks_batch(code: int, glo, ghi, nonempty) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised ``_decide_f``: (decided-true, decided-false) masks.

    Columns with an empty gap (``nonempty`` False) are undecided in both
    masks, mirroring ``decide_cond`` on :data:`~repro.solver.interval.EMPTY`.
    """
    if code == COND_LE or code == COND_LT:
        if code == COND_LT:
            is_true = (ghi <= 0.0) & ~((ghi == 0.0) & (glo == 0.0))
            is_false = (glo >= 0.0) & ~is_true
        else:
            is_true = ghi <= 0.0
            is_false = glo > 0.0
        return is_true & nonempty, is_false & nonempty
    if code == COND_GE or code == COND_GT:
        flipped = COND_LE if code == COND_GT else COND_LT
        is_true, is_false = _decide_masks_batch(flipped, glo, ghi, nonempty)
        return is_false, is_true
    # COND_EQ
    is_true = (glo == 0.0) & (ghi == 0.0)
    is_false = ~((glo <= 0.0) & (ghi >= 0.0)) & ~is_true
    return is_true & nonempty, is_false & nonempty


def _decide_gap_batch(
    code: int, lo_mat: np.ndarray, hi_mat: np.ndarray, lhs: int, rhs: int
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised ``_decide_gap`` over all columns of an Ite guard."""
    llo = lo_mat[lhs]
    lhi = hi_mat[lhs]
    rlo = lo_mat[rhs]
    rhi = hi_mat[rhs]
    nonempty = (llo <= lhi) & (rlo <= rhi)
    s = llo - rhi
    glo = np.nextafter(s, NINF)
    np.copyto(glo, NINF, where=s != s)
    s = lhi - rlo
    ghi = np.nextafter(s, PINF)
    np.copyto(ghi, PINF, where=s != s)
    return _decide_masks_batch(code, glo, ghi, nonempty)


def _decide_f(code: int, glo: float, ghi: float) -> bool | None:
    """``decide_cond`` over non-empty gap endpoints."""
    if code == COND_LE or code == COND_LT:
        strict = code == COND_LT
        if ghi <= 0.0 and not (strict and ghi == 0.0 and glo == 0.0):
            return True
        if glo > 0.0 or (strict and glo >= 0.0):
            return False
        return None
    if code == COND_GE or code == COND_GT:
        flipped = _decide_f(COND_LE if code == COND_GT else COND_LT, glo, ghi)
        return None if flipped is None else not flipped
    # COND_EQ
    if glo == 0.0 and ghi == 0.0:
        return True
    if not glo <= 0.0 <= ghi:
        return False
    return None


def _decide_gap(code: int, los: list, his: list, lhs: int, rhs: int) -> bool | None:
    """Decide an Ite guard from slot endpoints: ``(lhs - rhs) op 0``."""
    llo = los[lhs]; lhi = his[lhs]; rlo = los[rhs]; rhi = his[rhs]
    if not (llo <= lhi and rlo <= rhi):
        return None  # empty gap: undecided, like decide_cond(EMPTY)
    s = llo - rhi
    glo = NINF if (s != s or s == NINF) else math.nextafter(s, NINF)
    s = lhi - rlo
    ghi = PINF if (s != s or s == PINF) else math.nextafter(s, PINF)
    return _decide_f(code, glo, ghi)


def _narrow(los: list, his: list, i: int, allowed: Interval) -> bool:
    """Intersect slot ``i`` with ``allowed``; False if it empties."""
    alo = allowed.lo
    ahi = allowed.hi
    lo = los[i]; hi = his[i]
    if alo > lo:
        lo = alo
    if ahi < hi:
        hi = ahi
    los[i] = lo; his[i] = hi
    return lo <= hi


def _backward_pow(los, his, out: Interval, bslot: int, eslot: int, aux) -> bool:
    """Inverse propagation for OP_POW, mirroring the tree walk exactly."""
    if aux is None:
        base = Interval(los[bslot], his[bslot])
        elo = los[eslot]
        ehi = his[eslot]
        if elo != ehi:
            # non-constant exponent: propagate through exp(e*log(b)) form
            log_out = out.log()
            log_base = base.log()
            if not log_base.is_empty() and not log_out.is_empty():
                if not (log_base.lo <= 0.0 <= log_base.hi):
                    if not _narrow(los, his, eslot, log_out / log_base):
                        return False
                expo2 = Interval(los[eslot], his[eslot])
                if not (expo2.lo <= 0.0 <= expo2.hi):
                    if not _narrow(los, his, bslot, (log_out / expo2).exp()):
                        return False
            return True
        p = elo
        if float(p).is_integer() and abs(p) < 2**31:
            aux = ("i", int(p), p)
        else:
            aux = ("r", p, p)
    base = Interval(los[bslot], his[bslot])
    if aux[0] == "i":
        n = aux[1]
        if n == 0:
            return True
        if n > 0:
            inv = root_int(out, n, base)
        else:
            inv = root_int(out.inverse(), -n, base)
        return _narrow(los, his, bslot, inv)
    # fractional exponent: base >= 0 and monotone
    return _narrow(los, his, bslot, out.pow_real(1.0 / aux[1]))


def _backward_func(los, his, out: Interval, arg: int, fidx: int) -> bool:
    """Inverse propagation for OP_FUNC, mirroring the tree-walk cases."""
    if fidx == F_EXP:
        return _narrow(los, his, arg, out.log())
    if fidx == F_LOG:
        return _narrow(los, his, arg, out.exp())
    if fidx == F_SQRT:
        return _narrow(los, his, arg, out.intersect(make(0.0, inf)).pow_int(2))
    if fidx == F_CBRT:
        return _narrow(los, his, arg, out.pow_int(3))
    if fidx == F_ATAN:
        return _narrow(los, his, arg, tan_restricted(out))
    if fidx == F_ABS:
        mag = out.intersect(make(0.0, inf))
        if mag.is_empty():
            return False
        current = Interval(los[arg], his[arg])
        pos = mag.intersect(current)
        neg = (-mag).intersect(current)
        return _narrow(los, his, arg, pos.hull(neg))
    if fidx == F_TANH:
        return _narrow(los, his, arg, atanh_interval(out))
    if fidx == F_ERF:
        return _narrow(los, his, arg, erfinv_interval(out))
    if fidx == F_LAMBERTW:
        return _narrow(los, his, arg, wexpw(out))
    # sin/cos: non-invertible over wide ranges; skip (sound)
    return True


# ---------------------------------------------------------------------------
# tape cache
# ---------------------------------------------------------------------------

#: id-keyed cache holding a strong reference to the expression alongside its
#: tape.  The strong reference pins the id, so the ``is`` check cannot alias
#: a recycled id to a stale tape (unlike a bare ``dict[id(expr)]``).
_TAPE_CACHE: dict[int, tuple[Expr, Tape]] = {}
_TAPE_CACHE_MAX = 4096


def tape_for(expr: Expr) -> Tape:
    """Compile ``expr`` (memoised on the interned expression object)."""
    key = id(expr)
    entry = _TAPE_CACHE.get(key)
    if entry is not None and entry[0] is expr:
        # re-insert so dict order tracks recency: eviction below is LRU,
        # keeping long-lived hot tapes (residuals, psi sides) pinned
        del _TAPE_CACHE[key]
        _TAPE_CACHE[key] = entry
        return entry[1]
    tape = compile_expr(expr)
    if len(_TAPE_CACHE) >= _TAPE_CACHE_MAX:
        # evict the oldest entry (FIFO via dict insertion order) -- a full
        # clear() would recompile the entire hot working set
        _TAPE_CACHE.pop(next(iter(_TAPE_CACHE)))
    _TAPE_CACHE[id(expr)] = (expr, tape)
    return tape


def clear_tape_cache() -> None:
    """Drop the tape cache (used by tests to bound memory)."""
    _TAPE_CACHE.clear()


# ---------------------------------------------------------------------------
# stable content hashing (the campaign store's cache keys)
# ---------------------------------------------------------------------------

def _stable_encode(obj, out: list[str]) -> None:
    """Append a canonical, type-tagged encoding of ``obj`` to ``out``.

    Covers exactly the value shapes that occur in tape state and solver
    configs: None, bools, ints, floats (hex -- bit-exact, round-trip
    safe), strings, and nested tuples/lists.  Type tags keep e.g. the int
    1, the float 1.0 and the string "1" from colliding.
    """
    if obj is None:
        out.append("N;")
    elif obj is True or obj is False:
        out.append("b1;" if obj else "b0;")
    elif isinstance(obj, int):
        out.append(f"i{obj};")
    elif isinstance(obj, float):
        out.append(f"f{obj.hex()};")
    elif isinstance(obj, str):
        out.append(f"s{len(obj)}:{obj};")
    elif isinstance(obj, (tuple, list)):
        out.append("(")
        for item in obj:
            _stable_encode(item, out)
        out.append(")")
    else:  # pragma: no cover - defensive
        raise TypeError(f"cannot stably encode {type(obj).__name__}")


def stable_digest(obj) -> str:
    """SHA-256 hex digest of the canonical encoding of ``obj``."""
    import hashlib

    parts: list[str] = []
    _stable_encode(obj, parts)
    return hashlib.sha256("".join(parts).encode()).hexdigest()


# ---------------------------------------------------------------------------
# compiled formulas: picklable tape-level atoms and conjunctions
# ---------------------------------------------------------------------------

class CompiledAtom:
    """A normalised inequality atom ``residual op 0`` compiled to a tape.

    Optionally carries tapes of the residual's partial derivatives (needed
    only by the Newton contractor).
    """

    __slots__ = ("tape", "op", "deriv_tapes")

    def __init__(self, tape: Tape, op: str, deriv_tapes: dict[str, Tape] | None = None):
        self.tape = tape
        self.op = op
        self.deriv_tapes = deriv_tapes

    @classmethod
    def from_atom(cls, atom, derivatives: bool = False) -> "CompiledAtom":
        tape = tape_for(atom.residual)
        deriv_tapes = None
        if derivatives:
            from ..expr.derivative import derivative
            from ..expr.nodes import Var
            deriv_tapes = {}
            for var in sorted(atom.residual.free_vars(), key=lambda v: v.name):
                deriv_tapes[var.name] = tape_for(derivative(atom.residual, var))
        return cls(tape, atom.op, deriv_tapes)

    def holds_at(self, point: dict[str, float], tol: float = 0.0) -> bool:
        """Exact floating-point check at a point (NaN counts as failure)."""
        value = self.tape.eval_scalar(point)
        if math.isnan(value):
            return False
        return cond_holds(COND_CODE[self.op], value, tol)

    def fingerprint(self) -> str:
        """Stable content hash of the atom (tape + relation + derivatives)."""
        deriv = (
            None
            if self.deriv_tapes is None
            else [
                (name, self.deriv_tapes[name].fingerprint())
                for name in sorted(self.deriv_tapes)
            ]
        )
        return stable_digest(("atom", self.tape.fingerprint(), self.op, deriv))

    def __getstate__(self):
        return (self.tape, self.op, self.deriv_tapes)

    def __setstate__(self, state):
        self.tape, self.op, self.deriv_tapes = state


class CompiledConjunction:
    """A conjunction of :class:`CompiledAtom` -- flat, picklable, DAG-free.

    Duck-types the parts of :class:`repro.solver.constraint.Conjunction`
    that the ICP solver uses (``atoms``, ``holds_at``, ``free_var_names``),
    so it can be handed straight to :meth:`ICPSolver.solve`; process-pool
    workers deserialize it without re-encoding any expression DAGs.
    """

    __slots__ = ("atoms",)

    def __init__(self, atoms: tuple[CompiledAtom, ...]):
        self.atoms = tuple(atoms)

    @classmethod
    def from_conjunction(cls, formula, derivatives: bool = False) -> "CompiledConjunction":
        return cls(
            tuple(CompiledAtom.from_atom(a, derivatives=derivatives) for a in formula.atoms)
        )

    def holds_at(self, point: dict[str, float], tol: float = 0.0) -> bool:
        return all(atom.holds_at(point, tol=tol) for atom in self.atoms)

    def free_var_names(self) -> frozenset[str]:
        names: set[str] = set()
        for atom in self.atoms:
            names.update(name for name, _ in atom.tape.var_slots)
        return frozenset(names)

    def __iter__(self):
        return iter(self.atoms)

    def __len__(self) -> int:
        return len(self.atoms)

    def fingerprint(self) -> str:
        """Stable content hash over the atom fingerprints, in order."""
        return stable_digest(
            ("conjunction", [atom.fingerprint() for atom in self.atoms])
        )

    def __getstate__(self):
        return self.atoms

    def __setstate__(self, state):
        self.atoms = state
