"""HC4-revise contractors over expression DAGs.

HC4 is the classic forward/backward interval constraint-propagation
contractor used inside dReal's ICP loop: a *forward* pass computes interval
enclosures bottom-up, the root enclosure is intersected with the set
allowed by the atom (``g <= delta`` after delta-weakening), and a
*backward* pass pushes the narrowed enclosures down through each
operation's inverse, ultimately narrowing the variable box.

Because expressions are hash-consed DAGs (not trees), a node may have many
parents; the backward pass runs in reverse topological order so every
parent's contribution is intersected into a shared per-node interval before
that node propagates to its own children.

Domain clipping: partial primitives (log, sqrt, fractional powers, Lambert
W) contract their argument into the primitive's domain.  This matches
dReal's treatment of partial functions via domain constraints and is the
right semantics for DFA expressions, which are well-defined on the physical
input domain.

Execution strategy: by default :class:`HC4Contractor` compiles each atom's
residual into a flat instruction tape (:mod:`repro.solver.tape`) and runs
forward/backward off that tape with a preallocated slot vector -- same
operations, same order, several-fold less interpretation overhead than
re-walking the DAG per box.  ``backend="walk"`` selects the original
tree-walking executors, kept as the differential-testing oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import inf

import numpy as np

from ..expr.nodes import Add, Const, Expr, Func, Ite, Mul, Pow, Var
from .box import Box
from .constraint import Atom, Conjunction
from .interval import EMPTY, Interval, make, point
from . import tape as _tape_mod
from .tape import (
    COND_CODE,
    CompiledConjunction,
    MultiTape,
    Tape,
    atanh_interval as _atanh_interval,
    decide_cond,
    erfinv_interval as _erfinv_interval,
    root_int as _root_int,
    tan_restricted as _tan_restricted,
    tape_for,
    wexpw as _wexpw,
)


# ---------------------------------------------------------------------------
# forward interval evaluation (tree-walk oracle)
# ---------------------------------------------------------------------------

def interval_eval(expr: Expr, box: Box) -> dict[int, Interval]:
    """Forward pass: enclosure for every DAG node given the box."""
    ivals: dict[int, Interval] = {}
    for node in expr.walk():
        ivals[id(node)] = _forward_node(node, ivals, box)
    return ivals


def enclosure(expr: Expr, box: Box) -> Interval:
    """Interval enclosure of ``expr`` over ``box`` (tape-compiled)."""
    return tape_for(expr).enclosure(box)


def _forward_node(node: Expr, ivals: dict[int, Interval], box: Box) -> Interval:
    if isinstance(node, Const):
        return point(node.value)
    if isinstance(node, Var):
        try:
            return box[node.name]
        except KeyError:
            raise KeyError(f"box does not bind variable {node.name!r}") from None
    if isinstance(node, Add):
        out = ivals[id(node.args[0])]
        for arg in node.args[1:]:
            out = out + ivals[id(arg)]
        return out
    if isinstance(node, Mul):
        out = ivals[id(node.args[0])]
        for arg in node.args[1:]:
            out = out * ivals[id(arg)]
        return out
    if isinstance(node, Pow):
        base = ivals[id(node.base)]
        expo = ivals[id(node.exponent)]
        if expo.lo == expo.hi:
            return base.pow(expo.lo)
        # general power via exp(e * log(b)); requires positive base
        return (expo * base.log()).exp()
    if isinstance(node, Func):
        arg = ivals[id(node.arg)]
        return _FORWARD_FUNC[node.name](arg)
    if isinstance(node, Ite):
        gap = ivals[id(node.cond.lhs)] - ivals[id(node.cond.rhs)]
        branch = _decide_cond(node.cond.op, gap)
        if branch is True:
            return ivals[id(node.then)]
        if branch is False:
            return ivals[id(node.orelse)]
        return ivals[id(node.then)].hull(ivals[id(node.orelse)])
    raise TypeError(f"cannot interval-evaluate {type(node).__name__}")


_FORWARD_FUNC = {
    "exp": Interval.exp,
    "log": Interval.log,
    "sqrt": Interval.sqrt,
    "cbrt": Interval.cbrt,
    "atan": Interval.atan,
    "abs": Interval.abs,
    "lambertw": Interval.lambertw,
    "sin": Interval.sin,
    "cos": Interval.cos,
    "tanh": Interval.tanh,
    "erf": Interval.erf,
}


def _decide_cond(op: str, gap: Interval) -> bool | None:
    """Decide a condition ``gap op 0`` over an interval, or None if unknown."""
    return decide_cond(COND_CODE[op], gap)


# ---------------------------------------------------------------------------
# backward propagation (tree-walk oracle)
# ---------------------------------------------------------------------------

def _narrow(ivals: dict[int, Interval], node: Expr, allowed: Interval) -> bool:
    """Intersect the stored enclosure of ``node``; return False if empty."""
    current = ivals[id(node)]
    updated = current.intersect(allowed)
    ivals[id(node)] = updated
    return not updated.is_empty()


def _backward_pow(node: Pow, ivals: dict[int, Interval]) -> bool:
    out = ivals[id(node)]
    base = ivals[id(node.base)]
    expo = ivals[id(node.exponent)]
    if expo.lo != expo.hi:
        # non-constant exponent: propagate through exp(e*log(b)) form
        # log(out) = e * log(b)
        log_out = out.log()
        log_base = base.log()
        if not log_base.is_empty() and not log_out.is_empty():
            # narrow e
            if not (log_base.lo <= 0.0 <= log_base.hi):
                if not _narrow(ivals, node.exponent, log_out / log_base):
                    return False
            # narrow b: log(b) = log(out)/e
            expo2 = ivals[id(node.exponent)]
            if not (expo2.lo <= 0.0 <= expo2.hi):
                if not _narrow(ivals, node.base, (log_out / expo2).exp()):
                    return False
        return True
    p = expo.lo
    if float(p).is_integer() and abs(p) < 2**31:
        n = int(p)
        if n == 0:
            return True
        if n > 0:
            inv = _root_int(out, n, base)
        else:
            recip = out.inverse()
            inv = _root_int(recip, -n, base)
        return _narrow(ivals, node.base, inv)
    # fractional exponent: base >= 0 and monotone
    inv = out.pow_real(1.0 / p)
    return _narrow(ivals, node.base, inv)


def _backward_node(node: Expr, ivals: dict[int, Interval]) -> bool:
    """Push the (already narrowed) enclosure of ``node`` to its children.

    Returns False if some child's enclosure becomes empty (box infeasible).
    """
    out = ivals[id(node)]
    if out.is_empty():
        return False

    if isinstance(node, (Const, Var)):
        return True

    if isinstance(node, Add):
        args = node.args
        n = len(args)
        # prefix[i] = sum of enclosures of args[:i]; suffix[i] = sum args[i+1:]
        prefix = [point(0.0)] * (n + 1)
        for i, arg in enumerate(args):
            prefix[i + 1] = prefix[i] + ivals[id(arg)]
        suffix = [point(0.0)] * (n + 1)
        for i in range(n - 1, -1, -1):
            suffix[i] = suffix[i + 1] + ivals[id(args[i])]
        for i, arg in enumerate(args):
            others = prefix[i] + suffix[i + 1]
            if not _narrow(ivals, arg, out - others):
                return False
        return True

    if isinstance(node, Mul):
        args = node.args
        n = len(args)
        prefix = [point(1.0)] * (n + 1)
        for i, arg in enumerate(args):
            prefix[i + 1] = prefix[i] * ivals[id(arg)]
        suffix = [point(1.0)] * (n + 1)
        for i in range(n - 1, -1, -1):
            suffix[i] = suffix[i + 1] * ivals[id(args[i])]
        for i, arg in enumerate(args):
            others = prefix[i] * suffix[i + 1]
            if others.lo <= 0.0 <= others.hi and others.lo != others.hi:
                continue  # division through zero gives no contraction
            if others.lo == 0.0 and others.hi == 0.0:
                continue
            if not _narrow(ivals, arg, out / others):
                return False
        return True

    if isinstance(node, Pow):
        return _backward_pow(node, ivals)

    if isinstance(node, Func):
        arg = node.arg
        name = node.name
        if name == "exp":
            return _narrow(ivals, arg, out.log())
        if name == "log":
            return _narrow(ivals, arg, out.exp())
        if name == "sqrt":
            return _narrow(ivals, arg, out.intersect(make(0.0, inf)).pow_int(2))
        if name == "cbrt":
            return _narrow(ivals, arg, out.pow_int(3))
        if name == "atan":
            return _narrow(ivals, arg, _tan_restricted(out))
        if name == "abs":
            mag = out.intersect(make(0.0, inf))
            if mag.is_empty():
                return False
            current = ivals[id(arg)]
            pos = mag.intersect(current)
            neg = (-mag).intersect(current)
            return _narrow(ivals, arg, pos.hull(neg))
        if name == "tanh":
            return _narrow(ivals, arg, _atanh_interval(out))
        if name == "erf":
            return _narrow(ivals, arg, _erfinv_interval(out))
        if name == "lambertw":
            return _narrow(ivals, arg, _wexpw(out))
        # sin/cos: non-invertible over wide ranges; skip (sound)
        return True

    if isinstance(node, Ite):
        gap = ivals[id(node.cond.lhs)] - ivals[id(node.cond.rhs)]
        branch = _decide_cond(node.cond.op, gap)
        if branch is True:
            return _narrow(ivals, node.then, out)
        if branch is False:
            return _narrow(ivals, node.orelse, out)
        return True  # undecided: no sound single-branch propagation

    raise TypeError(f"cannot backward-propagate {type(node).__name__}")


# ---------------------------------------------------------------------------
# HC4 contractor for a conjunction of atoms
# ---------------------------------------------------------------------------

#: verdicts of the vectorised batch filter (:meth:`HC4Contractor.classify_batch`)
BATCH_UNKNOWN, BATCH_SAT, BATCH_REFUTED = 0, 1, 2


@dataclass
class ContractionStats:
    forward_passes: int = 0
    backward_passes: int = 0
    prunes_to_empty: int = 0


class HC4Contractor:
    """Contract boxes against ``residual <= delta`` for every atom.

    ``delta`` is the weakening of the delta-complete framework: pruning uses
    the relaxed atoms, so an UNSAT (empty) outcome certifies unsatisfiability
    of the *original* formula as well.

    ``formula`` may be a :class:`Conjunction` (residual DAGs are compiled to
    tapes here) or an already-compiled
    :class:`~repro.solver.tape.CompiledConjunction` (e.g. shipped to a
    worker process).  ``backend="walk"`` runs the original tree-walking
    executors instead of the tape VM (oracle for differential testing;
    requires a :class:`Conjunction`).
    """

    def __init__(
        self,
        formula: Conjunction | CompiledConjunction,
        delta: float = 1e-5,
        backend: str = "tape",
        vector_min: int | None = None,
    ):
        if delta < 0.0:
            raise ValueError("delta must be non-negative")
        if backend not in ("tape", "walk"):
            raise ValueError("backend must be 'tape' or 'walk'")
        if backend == "walk" and isinstance(formula, CompiledConjunction):
            raise ValueError("the walk backend needs expression-level atoms")
        self.formula = formula
        self.delta = delta
        self.backend = backend
        self.vector_min = vector_min
        self.stats = ContractionStats()
        self._multi: MultiTape | bool | None = None
        if backend == "walk":
            # tree-walk oracle: contraction/certainly_sat never touch tapes,
            # so a tape-VM bug in the interval executors cannot leak into
            # both sides of a differential comparison.  (Point probing via
            # Atom.holds_at still uses the tape scalar evaluator on both
            # backends; its independent oracle is evaluate_tree, compared
            # directly in tests/solver/test_tape.py.)
            self._orders = [list(atom.residual.walk()) for atom in formula.atoms]
            self._tapes = None
            self._los = None
            self._his = None
            return
        self._orders = None
        if isinstance(formula, CompiledConjunction):
            self._tapes: list[Tape] = [atom.tape for atom in formula.atoms]
        else:
            self._tapes = [tape_for(atom.residual) for atom in formula.atoms]
        # preallocated per-slot lo/hi endpoint arrays, one pair per atom
        self._los: list[list[float]] = [[0.0] * t.n_slots for t in self._tapes]
        self._his: list[list[float]] = [[0.0] * t.n_slots for t in self._tapes]

    def _multi_tape(self) -> MultiTape | None:
        """Lazily-built fused forward program over all atom tapes.

        Only worth building (and only used) when there is more than one
        atom and tape fusion is enabled; built per contractor instance on
        first batch use and reused for every later batch.  Forward-only:
        the backward revise stays per-tape.
        """
        if self._multi is None:
            if len(self._tapes) > 1 and _tape_mod._FUSION_ON:
                self._multi = MultiTape.from_tapes(self._tapes)
            else:
                self._multi = False
        return self._multi or None

    def contract(self, box: Box, rounds: int = 2) -> Box:
        """Iterate HC4-revise over all atoms up to ``rounds`` fixpoint rounds."""
        revise = self._revise_tape if self.backend == "tape" else self._revise_walk
        atoms = self.formula.atoms
        for _ in range(max(1, rounds)):
            changed = False
            for i, atom in enumerate(atoms):
                new_box = revise(i, atom, box)
                if new_box.is_empty():
                    self.stats.prunes_to_empty += 1
                    return new_box
                if new_box != box:
                    changed = True
                    box = new_box
            if not changed:
                break
        return box

    # -- tape-compiled revise ----------------------------------------------
    def _revise_tape(self, i: int, atom, box: Box) -> Box:
        self.stats.forward_passes += 1
        tape = self._tapes[i]
        los = self._los[i]
        his = self._his[i]
        # NB: empty sub-enclosures (domain clipping) are *not* fatal here:
        # they may sit in an untaken ITE branch, where hull() ignores them.
        # Only an empty root enclosure makes the atom unsatisfiable.
        tape.forward_arrays(box, los, his)

        root = tape.root
        root_lo = los[root]
        root_hi = his[root]
        delta = self.delta
        if not root_lo <= root_hi or root_lo > delta:
            # empty root enclosure, or no overlap with (-inf, delta]
            return Box({name: EMPTY for name in box.names})
        if root_hi <= delta:
            return box  # atom gives no pruning information
        his[root] = delta  # intersect root with the allowed set

        self.stats.backward_passes += 1
        if not tape.backward_arrays(los, his):
            return Box({name: EMPTY for name in box.names})

        out = {name: box[name] for name in box.names}
        for name, slot in tape.var_slots:
            if name in out:
                out[name] = out[name].intersect(Interval(los[slot], his[slot]))
        return Box(out)

    # -- tree-walk revise (oracle) ------------------------------------------
    def _revise_walk(self, i: int, atom: Atom, box: Box) -> Box:
        self.stats.forward_passes += 1
        order = self._orders[i]
        ivals: dict[int, Interval] = {}
        for node in order:
            ivals[id(node)] = _forward_node(node, ivals, box)

        root = atom.residual
        if ivals[id(root)].is_empty():
            return Box({name: EMPTY for name in box.names})
        allowed = make(-inf, self.delta)
        narrowed = ivals[id(root)].intersect(allowed)
        if narrowed.is_empty():
            return Box({name: EMPTY for name in box.names})
        if ivals[id(root)].is_subset(allowed):
            return box  # atom gives no pruning information
        ivals[id(root)] = narrowed

        self.stats.backward_passes += 1
        for node in reversed(order):
            if not _backward_node(node, ivals):
                return Box({name: EMPTY for name in box.names})

        out = {}
        for name in box.names:
            out[name] = box[name]
        for node in order:
            if isinstance(node, Var) and node.name in out:
                out[node.name] = out[node.name].intersect(ivals[id(node)])
        return Box(out)

    def classify_batch(self, boxes) -> np.ndarray:
        """Vectorised decide pass over a batch of boxes (tape backend only).

        Replays, from one batched forward pass per atom, exactly the
        decisions the first fixpoint round of :meth:`contract` would reach
        using forward enclosures alone.  Returns one ``int8`` verdict per
        box:

        * :data:`BATCH_REFUTED` -- some atom's root enclosure is empty or
          lies entirely above ``delta`` while every atom before it gave no
          pruning information, so ``contract`` would return an empty box;
        * :data:`BATCH_SAT` -- every atom's enclosure already sits within
          ``delta``: ``contract`` is a no-op and :meth:`certainly_sat`
          holds on the whole box;
        * :data:`BATCH_UNKNOWN` -- neither; the per-box path must decide.

        The underlying forward pass is bit-identical to the per-box one,
        so the verdicts match what the per-box code would conclude.  This
        is the cheap forward-only filter; the frontier solver itself uses
        :meth:`contract_batch`, which subsumes these verdicts and also
        performs the batched backward revise.
        """
        if self.backend != "tape":
            raise ValueError("classify_batch requires the tape backend")
        n_boxes = len(boxes)
        codes = np.zeros(n_boxes, dtype=np.int8)
        if n_boxes == 0:
            return codes
        delta = self.delta
        all_sat = np.ones(n_boxes, dtype=bool)
        refuted = np.zeros(n_boxes, dtype=bool)
        multi = self._multi_tape()
        if multi is not None:
            # one fused forward pass computes every atom's root at once;
            # shared subtapes across atoms execute a single time
            lo_mat, hi_mat = multi.load_batch(boxes)
            multi.forward_batch(lo_mat, hi_mat, self.vector_min)
            root_rows = [(lo_mat[r], hi_mat[r]) for r in multi.roots]
        else:
            root_rows = []
            for tape in self._tapes:
                lo_mat, hi_mat = tape.load_batch(boxes)
                tape.forward_batch(lo_mat, hi_mat, self.vector_min)
                root_rows.append((lo_mat[tape.root].copy(), hi_mat[tape.root].copy()))
        for root_lo, root_hi in root_rows:
            nonempty = root_lo <= root_hi
            # refute: empty root, or no overlap with (-inf, delta];
            # sat: whole enclosure inside the allowed set
            refuted |= all_sat & (~nonempty | (root_lo > delta))
            all_sat &= nonempty & (root_hi <= delta)
        codes[refuted] = BATCH_REFUTED
        codes[~refuted & all_sat] = BATCH_SAT
        return codes

    def contract_batch(
        self, boxes: list[Box], rounds: int = 2
    ) -> tuple[list[Box], np.ndarray]:
        """Contract a whole batch of boxes with the batched tape executors.

        Semantically equivalent -- box for box, bit for bit -- to calling
        :meth:`contract` on each element: the same fixpoint rounds, the
        same atom order, the same forward/backward endpoint arithmetic
        (see :meth:`Tape.forward_batch` / :meth:`Tape.backward_batch`),
        with each instruction executed once per *batch* instead of once
        per box.  Columns refuted by an atom drop out of later atoms, and
        columns whose box reached the per-box loop's break condition (no
        change in a round) stop iterating, exactly like the scalar loop.

        Returns ``(contracted, certainly_sat)``: the contracted box per
        input (an empty box where pruned; the *original* object where
        contraction was a no-op) and a boolean per box that equals
        :meth:`certainly_sat` on the contracted box (False for pruned
        boxes), computed from one extra batched forward pass per atom.

        Boxes that are *already empty* on input are returned untouched
        and never contracted -- mirroring the solver loops, which prune
        them before contraction.  ``ContractionStats`` counters advance by
        the per-column revise/backward counts, matching what the
        equivalent sequence of per-box :meth:`contract` calls would
        record.
        """
        if self.backend != "tape":
            raise ValueError("contract_batch requires the tape backend")
        n_boxes = len(boxes)
        if n_boxes == 0:
            return [], np.zeros(0, dtype=bool)
        names = boxes[0].names
        var_lo = {name: np.array([b[name].lo for b in boxes]) for name in names}
        var_hi = {name: np.array([b[name].hi for b in boxes]) for name in names}

        input_empty = np.array([b.is_empty() for b in boxes])
        alive = ~input_empty
        ever_changed = np.zeros(n_boxes, dtype=bool)
        active = alive.copy()  # columns still iterating rounds
        for _ in range(max(1, rounds)):
            changed = np.zeros(n_boxes, dtype=bool)
            for i, tape in enumerate(self._tapes):
                cols = np.nonzero(active & alive)[0]
                if cols.size == 0:
                    break
                self._revise_batch(i, tape, cols, var_lo, var_hi, alive, changed)
            active &= alive & changed
            ever_changed |= changed
            if not active.any():
                break

        # one batched forward (fused across atoms when possible) over the
        # final boxes decides certainly_sat for the whole batch
        allsat = alive.copy()
        multi = self._multi_tape()
        if multi is not None:
            cols = np.nonzero(allsat)[0]
            if cols.size:
                sub_lo = {name: arr[cols] for name, arr in var_lo.items()}
                sub_hi = {name: arr[cols] for name, arr in var_hi.items()}
                lo_mat, hi_mat = multi.load_batch_arrays(sub_lo, sub_hi, cols.size)
                multi.forward_batch(lo_mat, hi_mat, self.vector_min)
                sat = np.ones(cols.size, dtype=bool)
                for r in multi.roots:
                    root_lo = lo_mat[r]
                    root_hi = hi_mat[r]
                    sat &= (root_lo <= root_hi) & (root_hi <= self.delta)
                allsat[cols] &= sat
        else:
            for tape in self._tapes:
                cols = np.nonzero(allsat)[0]
                if cols.size == 0:
                    break
                sub_lo = {name: arr[cols] for name, arr in var_lo.items()}
                sub_hi = {name: arr[cols] for name, arr in var_hi.items()}
                lo_mat, hi_mat = tape.load_batch_arrays(sub_lo, sub_hi, cols.size)
                tape.forward_batch(lo_mat, hi_mat, self.vector_min)
                root_lo = lo_mat[tape.root]
                root_hi = hi_mat[tape.root]
                allsat[cols] &= (root_lo <= root_hi) & (root_hi <= self.delta)

        out: list[Box] = []
        for j, box in enumerate(boxes):
            if input_empty[j]:
                out.append(box)
            elif not alive[j]:
                self.stats.prunes_to_empty += 1
                out.append(Box({name: EMPTY for name in names}))
            elif not ever_changed[j]:
                out.append(box)
            else:
                out.append(
                    Box(
                        {
                            name: Interval(float(var_lo[name][j]), float(var_hi[name][j]))
                            for name in names
                        }
                    )
                )
        return out, allsat

    def _revise_batch(
        self,
        i: int,
        tape: Tape,
        cols: np.ndarray,
        var_lo: dict[str, np.ndarray],
        var_hi: dict[str, np.ndarray],
        alive: np.ndarray,
        changed: np.ndarray,
    ) -> None:
        """One batched HC4-revise of atom ``i`` over the columns ``cols``."""
        self.stats.forward_passes += int(cols.size)
        sub_lo = {name: arr[cols] for name, arr in var_lo.items()}
        sub_hi = {name: arr[cols] for name, arr in var_hi.items()}
        lo_mat, hi_mat = tape.load_batch_arrays(sub_lo, sub_hi, cols.size)
        tape.forward_batch(lo_mat, hi_mat, self.vector_min)
        root = tape.root
        root_lo = lo_mat[root]
        root_hi = hi_mat[root]
        delta = self.delta
        nonempty = root_lo <= root_hi
        # empty root enclosure, or no overlap with (-inf, delta]: refuted
        refuted = ~nonempty | (root_lo > delta)
        alive[cols[refuted]] = False
        # enclosure within the allowed set: the atom gives no pruning
        # information for that column, leave its box untouched
        needs_backward = ~refuted & (root_hi > delta)
        sub = np.nonzero(needs_backward)[0]
        if sub.size == 0:
            return
        self.stats.backward_passes += int(sub.size)
        blo = lo_mat[:, sub]
        bhi = hi_mat[:, sub]
        bhi[root] = delta  # intersect root with the allowed set
        ok = tape.backward_batch(blo, bhi, self.vector_min)
        bcols = cols[sub]
        narrowed_lo = {}
        narrowed_hi = {}
        for name, slot in tape.var_slots:
            cur_lo = var_lo[name][bcols]
            cur_hi = var_hi[name][bcols]
            s_lo = blo[slot]
            s_hi = bhi[slot]
            # Interval.intersect endpoint picks (max/min with the scalar
            # tie and NaN behaviour), then its emptiness normalisation
            n_lo = np.where(s_lo > cur_lo, s_lo, cur_lo)
            n_hi = np.where(s_hi < cur_hi, s_hi, cur_hi)
            ok &= ~((n_lo > n_hi) | np.isnan(n_lo) | np.isnan(n_hi))
            narrowed_lo[name] = n_lo
            narrowed_hi[name] = n_hi
        atom_changed = np.zeros(len(bcols), dtype=bool)
        for name in narrowed_lo:
            cur_lo = var_lo[name][bcols]
            cur_hi = var_hi[name][bcols]
            n_lo = narrowed_lo[name]
            n_hi = narrowed_hi[name]
            atom_changed |= (n_lo != cur_lo) | (n_hi != cur_hi)
            write = ok
            var_lo[name][bcols[write]] = n_lo[write]
            var_hi[name][bcols[write]] = n_hi[write]
        alive[bcols[~ok]] = False
        changed[bcols[ok & atom_changed]] = True

    def certainly_sat(self, box: Box) -> bool:
        """True if every atom holds on the *whole* box (within delta)."""
        if self.backend == "walk":
            allowed = make(-inf, self.delta)
            for atom, order in zip(self.formula.atoms, self._orders):
                ivals: dict[int, Interval] = {}
                for node in order:
                    ivals[id(node)] = _forward_node(node, ivals, box)
                root = ivals[id(atom.residual)]
                if root.is_empty() or not root.is_subset(allowed):
                    return False
            return True
        for i, tape in enumerate(self._tapes):
            los = self._los[i]
            his = self._his[i]
            tape.forward_arrays(box, los, his)
            root = tape.root
            if not los[root] <= his[root] or his[root] > self.delta:
                return False
        return True
