"""HC4-revise contractors over expression DAGs.

HC4 is the classic forward/backward interval constraint-propagation
contractor used inside dReal's ICP loop: a *forward* pass computes interval
enclosures bottom-up, the root enclosure is intersected with the set
allowed by the atom (``g <= delta`` after delta-weakening), and a
*backward* pass pushes the narrowed enclosures down through each
operation's inverse, ultimately narrowing the variable box.

Because expressions are hash-consed DAGs (not trees), a node may have many
parents; the backward pass runs in reverse topological order so every
parent's contribution is intersected into a shared per-node interval before
that node propagates to its own children.

Domain clipping: partial primitives (log, sqrt, fractional powers, Lambert
W) contract their argument into the primitive's domain.  This matches
dReal's treatment of partial functions via domain constraints and is the
right semantics for DFA expressions, which are well-defined on the physical
input domain.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from math import inf

from ..expr.nodes import Add, Const, Expr, Func, Ite, Mul, Pow, Var
from .box import Box
from .constraint import Atom, Conjunction
from .interval import EMPTY, Interval, REALS, make, point


# ---------------------------------------------------------------------------
# forward interval evaluation
# ---------------------------------------------------------------------------

def interval_eval(expr: Expr, box: Box) -> dict[int, Interval]:
    """Forward pass: enclosure for every DAG node given the box."""
    ivals: dict[int, Interval] = {}
    for node in expr.walk():
        ivals[id(node)] = _forward_node(node, ivals, box)
    return ivals


def enclosure(expr: Expr, box: Box) -> Interval:
    """Interval enclosure of ``expr`` over ``box``."""
    return interval_eval(expr, box)[id(expr)]


def _forward_node(node: Expr, ivals: dict[int, Interval], box: Box) -> Interval:
    if isinstance(node, Const):
        return point(node.value)
    if isinstance(node, Var):
        try:
            return box[node.name]
        except KeyError:
            raise KeyError(f"box does not bind variable {node.name!r}") from None
    if isinstance(node, Add):
        out = ivals[id(node.args[0])]
        for arg in node.args[1:]:
            out = out + ivals[id(arg)]
        return out
    if isinstance(node, Mul):
        out = ivals[id(node.args[0])]
        for arg in node.args[1:]:
            out = out * ivals[id(arg)]
        return out
    if isinstance(node, Pow):
        base = ivals[id(node.base)]
        expo = ivals[id(node.exponent)]
        if expo.lo == expo.hi:
            return base.pow(expo.lo)
        # general power via exp(e * log(b)); requires positive base
        return (expo * base.log()).exp()
    if isinstance(node, Func):
        arg = ivals[id(node.arg)]
        return _FORWARD_FUNC[node.name](arg)
    if isinstance(node, Ite):
        gap = ivals[id(node.cond.lhs)] - ivals[id(node.cond.rhs)]
        branch = _decide_cond(node.cond.op, gap)
        if branch is True:
            return ivals[id(node.then)]
        if branch is False:
            return ivals[id(node.orelse)]
        return ivals[id(node.then)].hull(ivals[id(node.orelse)])
    raise TypeError(f"cannot interval-evaluate {type(node).__name__}")


_FORWARD_FUNC = {
    "exp": Interval.exp,
    "log": Interval.log,
    "sqrt": Interval.sqrt,
    "cbrt": Interval.cbrt,
    "atan": Interval.atan,
    "abs": Interval.abs,
    "lambertw": Interval.lambertw,
    "sin": Interval.sin,
    "cos": Interval.cos,
    "tanh": Interval.tanh,
    "erf": Interval.erf,
}


def _decide_cond(op: str, gap: Interval) -> bool | None:
    """Decide a condition ``gap op 0`` over an interval, or None if unknown."""
    if gap.is_empty():
        return None
    if op in ("<=", "<"):
        if gap.hi <= 0.0 and not (op == "<" and gap.hi == 0.0 and gap.lo == 0.0):
            return True
        if gap.lo > 0.0 or (op == "<" and gap.lo >= 0.0):
            return False
        return None
    if op in (">=", ">"):
        flipped = _decide_cond("<=" if op == ">" else "<", gap)
        return None if flipped is None else not flipped
    if op == "==":
        if gap.lo == 0.0 and gap.hi == 0.0:
            return True
        if not gap.contains(0.0):
            return False
        return None
    raise ValueError(op)


# ---------------------------------------------------------------------------
# backward propagation
# ---------------------------------------------------------------------------

def _narrow(ivals: dict[int, Interval], node: Expr, allowed: Interval) -> bool:
    """Intersect the stored enclosure of ``node``; return False if empty."""
    current = ivals[id(node)]
    updated = current.intersect(allowed)
    ivals[id(node)] = updated
    return not updated.is_empty()


def _tan_restricted(x: Interval) -> Interval:
    """tan on an interval inside (-pi/2, pi/2) (inverse of atan)."""
    half_pi = math.pi / 2
    x = x.intersect(make(-half_pi, half_pi))
    if x.is_empty():
        return EMPTY
    lo = -inf if x.lo <= -half_pi + 1e-15 else math.tan(x.lo)
    hi = inf if x.hi >= half_pi - 1e-15 else math.tan(x.hi)
    return make(lo, hi).widened(1e-12 * (1.0 + abs(lo) + abs(hi)) if lo != -inf and hi != inf else 0.0)


def _atanh_interval(x: Interval) -> Interval:
    x = x.intersect(make(-1.0, 1.0))
    if x.is_empty():
        return EMPTY
    lo = -inf if x.lo <= -1.0 else math.atanh(x.lo)
    hi = inf if x.hi >= 1.0 else math.atanh(x.hi)
    return make(lo, hi).widened(1e-14)


def _erfinv_interval(x: Interval) -> Interval:
    from scipy.special import erfinv
    x = x.intersect(make(-1.0, 1.0))
    if x.is_empty():
        return EMPTY
    lo = -inf if x.lo <= -1.0 else float(erfinv(x.lo))
    hi = inf if x.hi >= 1.0 else float(erfinv(x.hi))
    return make(lo, hi).widened(1e-12)


def _wexpw(w: Interval) -> Interval:
    """Inverse image of lambertw: x = w * exp(w), monotone for w >= -1."""
    w = w.intersect(make(-1.0, inf))
    if w.is_empty():
        return EMPTY
    return (w * w.exp()).widened(1e-14)


def _root_int(y: Interval, n: int, current: Interval) -> Interval:
    """Solve b**n = y for b, intersected with the sign info of ``current``."""
    if n % 2 == 1:
        # odd: monotone bijection on R
        def _nth(v: float) -> float:
            if v == inf or v == -inf:
                return v
            return math.copysign(abs(v) ** (1.0 / n), v)
        return make(_nth(y.lo), _nth(y.hi)).widened(1e-14 * (1.0 + abs(y.lo) + abs(y.hi)))
    # even: |b| = y**(1/n), y >= 0
    y = y.intersect(make(0.0, inf))
    if y.is_empty():
        return EMPTY
    hi_mag = inf if y.hi == inf else y.hi ** (1.0 / n)
    lo_mag = 0.0 if y.lo <= 0.0 else y.lo ** (1.0 / n)
    hi_mag *= 1.0 + 1e-14
    lo_mag *= 1.0 - 1e-14
    pos = make(lo_mag, hi_mag)
    neg = make(-hi_mag, -lo_mag)
    pos_part = pos.intersect(current)
    neg_part = neg.intersect(current)
    return pos_part.hull(neg_part)


def _backward_pow(node: Pow, ivals: dict[int, Interval]) -> bool:
    out = ivals[id(node)]
    base = ivals[id(node.base)]
    expo = ivals[id(node.exponent)]
    if expo.lo != expo.hi:
        # non-constant exponent: propagate through exp(e*log(b)) form
        # log(out) = e * log(b)
        log_out = out.log()
        log_base = base.log()
        if not log_base.is_empty() and not log_out.is_empty():
            # narrow e
            if not (log_base.lo <= 0.0 <= log_base.hi):
                if not _narrow(ivals, node.exponent, log_out / log_base):
                    return False
            # narrow b: log(b) = log(out)/e
            expo2 = ivals[id(node.exponent)]
            if not (expo2.lo <= 0.0 <= expo2.hi):
                if not _narrow(ivals, node.base, (log_out / expo2).exp()):
                    return False
        return True
    p = expo.lo
    if float(p).is_integer() and abs(p) < 2**31:
        n = int(p)
        if n == 0:
            return True
        if n > 0:
            inv = _root_int(out, n, base)
        else:
            recip = out.inverse()
            inv = _root_int(recip, -n, base)
        return _narrow(ivals, node.base, inv)
    # fractional exponent: base >= 0 and monotone
    inv = out.pow_real(1.0 / p)
    return _narrow(ivals, node.base, inv)


def _backward_node(node: Expr, ivals: dict[int, Interval]) -> bool:
    """Push the (already narrowed) enclosure of ``node`` to its children.

    Returns False if some child's enclosure becomes empty (box infeasible).
    """
    out = ivals[id(node)]
    if out.is_empty():
        return False

    if isinstance(node, (Const, Var)):
        return True

    if isinstance(node, Add):
        args = node.args
        n = len(args)
        # prefix[i] = sum of enclosures of args[:i]; suffix[i] = sum args[i+1:]
        prefix = [point(0.0)] * (n + 1)
        for i, arg in enumerate(args):
            prefix[i + 1] = prefix[i] + ivals[id(arg)]
        suffix = [point(0.0)] * (n + 1)
        for i in range(n - 1, -1, -1):
            suffix[i] = suffix[i + 1] + ivals[id(args[i])]
        for i, arg in enumerate(args):
            others = prefix[i] + suffix[i + 1]
            if not _narrow(ivals, arg, out - others):
                return False
        return True

    if isinstance(node, Mul):
        args = node.args
        n = len(args)
        prefix = [point(1.0)] * (n + 1)
        for i, arg in enumerate(args):
            prefix[i + 1] = prefix[i] * ivals[id(arg)]
        suffix = [point(1.0)] * (n + 1)
        for i in range(n - 1, -1, -1):
            suffix[i] = suffix[i + 1] * ivals[id(args[i])]
        for i, arg in enumerate(args):
            others = prefix[i] * suffix[i + 1]
            if others.lo <= 0.0 <= others.hi and others.lo != others.hi:
                continue  # division through zero gives no contraction
            if others.lo == 0.0 and others.hi == 0.0:
                continue
            if not _narrow(ivals, arg, out / others):
                return False
        return True

    if isinstance(node, Pow):
        return _backward_pow(node, ivals)

    if isinstance(node, Func):
        arg = node.arg
        name = node.name
        if name == "exp":
            return _narrow(ivals, arg, out.log())
        if name == "log":
            return _narrow(ivals, arg, out.exp())
        if name == "sqrt":
            return _narrow(ivals, arg, out.intersect(make(0.0, inf)).pow_int(2))
        if name == "cbrt":
            return _narrow(ivals, arg, out.pow_int(3))
        if name == "atan":
            return _narrow(ivals, arg, _tan_restricted(out))
        if name == "abs":
            mag = out.intersect(make(0.0, inf))
            if mag.is_empty():
                return False
            current = ivals[id(arg)]
            pos = mag.intersect(current)
            neg = (-mag).intersect(current)
            return _narrow(ivals, arg, pos.hull(neg))
        if name == "tanh":
            return _narrow(ivals, arg, _atanh_interval(out))
        if name == "erf":
            return _narrow(ivals, arg, _erfinv_interval(out))
        if name == "lambertw":
            return _narrow(ivals, arg, _wexpw(out))
        # sin/cos: non-invertible over wide ranges; skip (sound)
        return True

    if isinstance(node, Ite):
        gap = ivals[id(node.cond.lhs)] - ivals[id(node.cond.rhs)]
        branch = _decide_cond(node.cond.op, gap)
        if branch is True:
            return _narrow(ivals, node.then, out)
        if branch is False:
            return _narrow(ivals, node.orelse, out)
        return True  # undecided: no sound single-branch propagation

    raise TypeError(f"cannot backward-propagate {type(node).__name__}")


# ---------------------------------------------------------------------------
# HC4 contractor for a conjunction of atoms
# ---------------------------------------------------------------------------

@dataclass
class ContractionStats:
    forward_passes: int = 0
    backward_passes: int = 0
    prunes_to_empty: int = 0


class HC4Contractor:
    """Contract boxes against ``residual <= delta`` for every atom.

    ``delta`` is the weakening of the delta-complete framework: pruning uses
    the relaxed atoms, so an UNSAT (empty) outcome certifies unsatisfiability
    of the *original* formula as well.
    """

    def __init__(self, formula: Conjunction, delta: float = 1e-5):
        if delta < 0.0:
            raise ValueError("delta must be non-negative")
        self.formula = formula
        self.delta = delta
        self.stats = ContractionStats()
        self._orders = [list(atom.residual.walk()) for atom in formula.atoms]

    def contract(self, box: Box, rounds: int = 2) -> Box:
        """Iterate HC4-revise over all atoms up to ``rounds`` fixpoint rounds."""
        for _ in range(max(1, rounds)):
            changed = False
            for atom, order in zip(self.formula.atoms, self._orders):
                new_box = self._revise(atom, order, box)
                if new_box.is_empty():
                    self.stats.prunes_to_empty += 1
                    return new_box
                if new_box != box:
                    changed = True
                    box = new_box
            if not changed:
                break
        return box

    def _revise(self, atom: Atom, order: list[Expr], box: Box) -> Box:
        self.stats.forward_passes += 1
        ivals: dict[int, Interval] = {}
        # NB: empty sub-enclosures (domain clipping) are *not* fatal here:
        # they may sit in an untaken ITE branch, where hull() ignores them.
        # Only an empty root enclosure makes the atom unsatisfiable.
        for node in order:
            ivals[id(node)] = _forward_node(node, ivals, box)

        root = atom.residual
        if ivals[id(root)].is_empty():
            return Box({name: EMPTY for name in box.names})
        allowed = make(-inf, self.delta)
        narrowed = ivals[id(root)].intersect(allowed)
        if narrowed.is_empty():
            return Box({name: EMPTY for name in box.names})
        if ivals[id(root)].is_subset(allowed):
            return box  # atom gives no pruning information
        ivals[id(root)] = narrowed

        self.stats.backward_passes += 1
        for node in reversed(order):
            if not _backward_node(node, ivals):
                return Box({name: EMPTY for name in box.names})

        out = {}
        for name in box.names:
            iv = box[name]
            # collect narrowing from var nodes present in this atom
            out[name] = iv
        for node in order:
            if isinstance(node, Var) and node.name in out:
                out[node.name] = out[node.name].intersect(ivals[id(node)])
        return Box(out)

    def certainly_sat(self, box: Box) -> bool:
        """True if every atom holds on the *whole* box (within delta)."""
        allowed = make(-inf, self.delta)
        for atom, order in zip(self.formula.atoms, self._orders):
            ivals: dict[int, Interval] = {}
            for node in order:
                ivals[id(node)] = _forward_node(node, ivals, box)
            root = ivals[id(atom.residual)]
            if root.is_empty() or not root.is_subset(allowed):
                return False
        return True
