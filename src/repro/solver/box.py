"""Axis-aligned boxes over named variables.

A :class:`Box` is the solver's search-state: one interval per input
variable of the DFA (rs, s, and alpha for meta-GGAs).  Boxes are also the
unit of work for the Verifier's domain-splitting recursion (Algorithm 1 of
the paper) and the leaves of the region maps in Figures 1 and 2.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from ..expr.nodes import Var
from .interval import Interval, make


class Box:
    """Immutable mapping from variable names to intervals."""

    __slots__ = ("names", "intervals")

    def __init__(self, assignment: Mapping[str, Interval] | None = None, **kwargs):
        merged: dict[str, Interval] = {}
        if assignment:
            for key, value in assignment.items():
                merged[key.name if isinstance(key, Var) else str(key)] = value
        for key, value in kwargs.items():
            merged[key] = value
        for key, value in merged.items():
            if isinstance(value, tuple):
                merged[key] = make(*value)
        self.names: tuple[str, ...] = tuple(sorted(merged))
        self.intervals: tuple[Interval, ...] = tuple(merged[n] for n in self.names)

    @classmethod
    def from_bounds(cls, bounds: Mapping[str, tuple[float, float]]) -> "Box":
        return cls({name: make(lo, hi) for name, (lo, hi) in bounds.items()})

    # -- access ---------------------------------------------------------------
    def __getitem__(self, name: str | Var) -> Interval:
        if isinstance(name, Var):
            name = name.name
        try:
            return self.intervals[self.names.index(name)]
        except ValueError:
            raise KeyError(name) from None

    def __contains__(self, name: str) -> bool:
        return name in self.names

    def __iter__(self) -> Iterator[str]:
        return iter(self.names)

    def __len__(self) -> int:
        return len(self.names)

    def items(self) -> Iterator[tuple[str, Interval]]:
        return zip(self.names, self.intervals)

    def replace(self, name: str, interval: Interval) -> "Box":
        mapping = dict(self.items())
        mapping[name] = interval
        return Box(mapping)

    # -- geometry ---------------------------------------------------------------
    def is_empty(self) -> bool:
        return any(iv.is_empty() for iv in self.intervals)

    def max_width(self) -> float:
        return max((iv.width() for iv in self.intervals), default=0.0)

    def widest_dim(self) -> str:
        best, best_w = self.names[0], -1.0
        for name, iv in self.items():
            w = iv.width()
            if w > best_w:
                best, best_w = name, w
        return best

    def midpoint(self) -> dict[str, float]:
        return {name: iv.mid() for name, iv in self.items()}

    def corner_lo(self) -> dict[str, float]:
        return {name: iv.lo for name, iv in self.items()}

    def volume(self) -> float:
        out = 1.0
        for iv in self.intervals:
            out *= iv.width()
        return out

    def contains_point(self, point: Mapping[str, float]) -> bool:
        return all(self[name].contains(value) for name, value in point.items())

    def intersect(self, other: "Box") -> "Box":
        if set(self.names) != set(other.names):
            raise ValueError("boxes over different variables")
        return Box({n: self[n].intersect(other[n]) for n in self.names})

    # -- splitting ---------------------------------------------------------------
    def split(self, name: str | None = None) -> tuple["Box", "Box"]:
        """Bisect along ``name`` (default: widest dimension)."""
        if name is None:
            name = self.widest_dim()
        iv = self[name]
        mid = iv.mid()
        left = self.replace(name, make(iv.lo, mid))
        right = self.replace(name, make(mid, iv.hi))
        return left, right

    def split_all(self) -> list["Box"]:
        """Bisect along *every* dimension (2^n children).

        This is the ``split(D)`` of Algorithm 1 in the paper, which
        "partitions each input dimension of D into two equal parts".
        """
        out = [self]
        for name in self.names:
            nxt: list[Box] = []
            for box in out:
                nxt.extend(box.split(name))
            out = nxt
        return out

    def sample_grid(self, per_dim: int) -> list[dict[str, float]]:
        """Uniform grid of sample points (used by probing heuristics)."""
        import itertools
        axes = []
        for iv in self.intervals:
            if per_dim == 1:
                axes.append([iv.mid()])
            else:
                step = iv.width() / (per_dim - 1)
                axes.append([iv.lo + i * step for i in range(per_dim)])
        return [dict(zip(self.names, combo)) for combo in itertools.product(*axes)]

    # -- comparison / display ------------------------------------------------------
    def __eq__(self, other) -> bool:
        if not isinstance(other, Box):
            return NotImplemented
        return self.names == other.names and self.intervals == other.intervals

    def __hash__(self) -> int:
        return hash((self.names, self.intervals))

    def __repr__(self) -> str:  # pragma: no cover
        parts = ", ".join(
            f"{n}=[{iv.lo:.6g}, {iv.hi:.6g}]" for n, iv in self.items()
        )
        return f"Box({parts})"
