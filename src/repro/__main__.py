"""Entry point for ``python -m repro``."""

import sys

from .cli import main

# guarded so spawn-context multiprocessing workers (which re-import the
# parent's __main__ under the name "__mp_main__") never re-run the CLI
if __name__ == "__main__":
    sys.exit(main())
