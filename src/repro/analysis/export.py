"""Machine-readable export of verification artifacts.

The paper's Section VI-B vision is to run XCVerifier inside LibXC's
continuous integration; CI needs artifacts a machine can diff, not ASCII
tables.  This module serialises every campaign product:

* :func:`table_to_json` / :func:`table_to_markdown` -- Table I / Table II
  matrices (both table classes share the ``as_dict`` protocol);
* :func:`report_to_json` -- one verification run: config-free summary,
  outcome fractions, counterexample bounding box, and the full region
  list (via :func:`repro.verifier.render.export_rows`);
* :func:`report_to_csv` / :func:`write_csv` -- the region list as CSV;
* :func:`campaign_to_json` -- a whole {pair: report} campaign in one
  document, ready for regression diffing between library versions.

Everything returns plain strings/dicts; file writing is a thin layer so
the functions stay testable without touching the filesystem.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Mapping

from ..verifier.regions import VerificationReport
from ..verifier.render import export_rows

__all__ = [
    "table_to_json",
    "table_to_markdown",
    "report_to_json",
    "report_to_csv",
    "campaign_to_json",
    "job_result_to_json",
    "write_csv",
    "write_json",
]


def table_to_json(table, indent: int | None = 2) -> str:
    """Serialise a TableOne/TableTwo matrix (anything with ``as_dict``)."""
    payload = {
        "functionals": [f.name for f in table.functionals],
        "conditions": [c.cid for c in table.conditions],
        "cells": table.as_dict(),
    }
    return json.dumps(payload, indent=indent, sort_keys=True)


def table_to_markdown(table) -> str:
    """Render a table matrix as GitHub-flavoured Markdown."""
    cells = table.as_dict()
    names = [f.name for f in table.functionals]
    lines = ["| Local condition | " + " | ".join(names) + " |"]
    lines.append("|" + "---|" * (len(names) + 1))
    for condition in table.conditions:
        row = cells[condition.cid]
        lines.append(
            f"| {condition.name} ({condition.equation}) | "
            + " | ".join(row[n] for n in names)
            + " |"
        )
    return "\n".join(lines)


def report_to_json(report: VerificationReport, indent: int | None = 2) -> str:
    """Serialise one verification report, regions included."""
    return json.dumps(_report_payload(report), indent=indent, sort_keys=True)


def _report_payload(report: VerificationReport) -> dict:
    fractions = {
        outcome.value: fraction
        for outcome, fraction in report.area_fractions().items()
    }
    bbox = report.counterexample_bbox()
    payload = {
        "functional": report.functional_name,
        "condition": report.condition_id,
        "classification": report.classification(),
        "domain": {name: [iv.lo, iv.hi] for name, iv in report.domain.items()},
        "area_fractions": fractions,
        "counterexample_bbox": (
            None
            if bbox is None
            else {name: [iv.lo, iv.hi] for name, iv in bbox.items()}
        ),
        "total_solver_steps": report.total_solver_steps,
        "elapsed_seconds": report.elapsed_seconds,
        "budget_exhausted": report.budget_exhausted,
        "regions": export_rows(report),
    }
    return payload


def report_to_csv(report: VerificationReport) -> str:
    """The region list of one report as CSV text."""
    rows = export_rows(report)
    if not rows:
        return ""
    # union of keys, stable order: core columns first, then sorted extras
    core = ["index", "depth", "outcome", "solver_steps"]
    extras = sorted({k for row in rows for k in row} - set(core))
    fieldnames = core + extras
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=fieldnames, restval="")
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def campaign_to_json(
    reports: Mapping[tuple[str, str], VerificationReport],
    indent: int | None = 2,
) -> str:
    """Serialise a whole campaign keyed ``functional/condition``."""
    payload = {
        f"{fname}/{cid}": _report_payload(report)
        for (fname, cid), report in sorted(reports.items())
    }
    return json.dumps(payload, indent=indent, sort_keys=True)


def table_three_to_json(table, indent: int | None = 2) -> str:
    """Serialise a TableThree (the numerics campaign aggregation).

    Rows are sorted, so two campaigns with bit-identical cells serialise
    bit-identically regardless of completion order -- this is the
    CI-diffed artifact of the numerics-smoke job.
    """
    return json.dumps(table.as_dict(), indent=indent, sort_keys=True)


def job_result_to_json(result: dict, indent: int | None = 2) -> str:
    """Serialise a service job result (cells + provenance), canonically.

    Sorted keys make the document diffable: two jobs over the same slice
    against the same store state serialise identically whatever order
    their cells resolved in -- the service differential corpus and the
    ``service-smoke`` CI job compare these bytes directly.
    """
    return json.dumps(result, indent=indent, sort_keys=True)


def write_json(path, text: str) -> None:
    with open(path, "w") as handle:
        handle.write(text if text.endswith("\n") else text + "\n")


def write_csv(path, text: str) -> None:
    with open(path, "w", newline="") as handle:
        handle.write(text)
