"""Evaluation harnesses: Tables I-III, consistency metrics, export."""

from .tables import (
    PAPER_TABLE_ONE,
    TableOne,
    TableThree,
    applicable_pairs,
    run_table_campaign,
    run_table_one,
    table_one_from_reports,
    table_three_from_cells,
)
from .compare import (
    CONSISTENT,
    MISMATCH,
    NO_COMPARISON,
    NOT_INCONSISTENT,
    PAPER_TABLE_TWO,
    TableTwo,
    classify_consistency,
    pb_points_covered_fraction,
    run_table_two,
)
from .export import (
    campaign_to_json,
    report_to_csv,
    report_to_json,
    table_three_to_json,
    table_to_json,
    table_to_markdown,
)

__all__ = [
    "PAPER_TABLE_ONE", "TableOne", "TableThree", "run_table_one",
    "applicable_pairs", "run_table_campaign", "table_one_from_reports",
    "table_three_from_cells",
    "CONSISTENT", "MISMATCH", "NO_COMPARISON", "NOT_INCONSISTENT",
    "PAPER_TABLE_TWO", "TableTwo", "classify_consistency",
    "pb_points_covered_fraction", "run_table_two",
    "campaign_to_json", "report_to_csv", "report_to_json",
    "table_three_to_json", "table_to_json", "table_to_markdown",
]
