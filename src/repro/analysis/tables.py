"""Table I harness: verification outcomes for every DFA-condition pair.

Runs the campaign engine over the 31 applicable pairs and renders the
paper's Table I (rows = local conditions, columns = DFAs, cells in
{OK, OK*, CEX, ?, -}).  The campaign persists every completed cell to the
result store as it finishes, so an interrupted Table I run resumes where
it stopped and re-runs are cache hits for every unchanged cell.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..conditions.base import Condition
from ..conditions.catalog import PAPER_CONDITIONS, applicable_pairs
from ..functionals.base import Functional
from ..functionals.registry import paper_functionals
from ..verifier.campaign import CampaignResult, run_campaign
from ..verifier.regions import SYMBOL_NOT_APPLICABLE, VerificationReport
from ..verifier.verifier import VerifierConfig

__all__ = [
    "PAPER_TABLE_ONE",
    "TableOne",
    "applicable_pairs",  # re-exported: the canonical list lives in the catalog
    "print_cell",
    "run_table_campaign",
    "run_table_one",
    "table_one_from_reports",
]


@dataclass
class TableOne:
    """Rendered verification matrix plus the underlying reports."""

    functionals: tuple[Functional, ...]
    conditions: tuple[Condition, ...]
    reports: dict[tuple[str, str], VerificationReport] = field(default_factory=dict)

    def symbol(self, functional: Functional, condition: Condition) -> str:
        report = self.reports.get((functional.name, condition.cid))
        if report is None:
            return SYMBOL_NOT_APPLICABLE
        return report.classification()

    def row(self, condition: Condition) -> list[str]:
        return [self.symbol(f, condition) for f in self.functionals]

    def as_dict(self) -> dict[str, dict[str, str]]:
        return {
            c.cid: {f.name: self.symbol(f, c) for f in self.functionals}
            for c in self.conditions
        }

    def render(self) -> str:
        """Plain-text rendering in the paper's layout."""
        name_width = max(len(c.name) + len(c.equation) + 3 for c in self.conditions)
        col_width = max(max(len(f.name) for f in self.functionals) + 2, 9)
        lines = []
        header = " " * name_width + "".join(
            f.name.rjust(col_width) for f in self.functionals
        )
        lines.append("Table I: verifying local conditions for DFT exact conditions")
        lines.append(header)
        lines.append("-" * len(header))
        for condition in self.conditions:
            label = f"{condition.name} ({condition.equation})".ljust(name_width)
            cells = "".join(s.rjust(col_width) for s in self.row(condition))
            lines.append(label + cells)
        lines.append("-" * len(header))
        lines.append(
            "OK = verified on the whole domain; OK* = partially verified "
            "(rest timeout/inconclusive); CEX = counterexample found; "
            "? = timeout/inconclusive everywhere; - = not applicable"
        )
        return "\n".join(lines)


def print_cell(key: tuple[str, str], report, from_store: bool) -> None:
    """Default per-cell progress printer (the ``on_cell`` of verbose runs)."""
    origin = " [store]" if from_store else ""
    print(f"{report.summary()}{origin}")


def run_table_one(
    config: VerifierConfig | None = None,
    functionals: tuple[Functional, ...] | None = None,
    conditions: tuple[Condition, ...] | None = None,
    verbose: bool = False,
    *,
    max_workers: int = 0,
    store=None,
    resume: bool = False,
    on_cell=None,
) -> TableOne:
    """Run the verification campaign and assemble Table I.

    ``max_workers=0`` (default) runs in-process and sequentially --
    bit-identical to driving :class:`Verifier` by hand per pair.  With a
    ``store`` (path or :class:`~repro.verifier.store.CampaignStore`),
    completed cells persist immediately; ``resume=True`` serves unchanged
    cells from the store instead of recomputing them.  An interrupt
    (SIGINT) yields a *partial* table -- cells finished before the
    interrupt are present and already stored; use
    :func:`run_table_campaign` when the caller needs the interrupted
    flag.
    """
    functionals = tuple(functionals or paper_functionals())
    conditions = tuple(conditions or PAPER_CONDITIONS)
    table = TableOne(functionals=functionals, conditions=conditions)
    result = run_table_campaign(
        config,
        functionals,
        conditions,
        verbose=verbose,
        max_workers=max_workers,
        store=store,
        resume=resume,
        on_cell=on_cell,
    )
    table.reports.update(result.reports)
    return table


def run_table_campaign(
    config: VerifierConfig | None = None,
    functionals: tuple[Functional, ...] | None = None,
    conditions: tuple[Condition, ...] | None = None,
    verbose: bool = False,
    *,
    max_workers: int = 0,
    store=None,
    resume: bool = False,
    on_cell=None,
) -> CampaignResult:
    """The raw campaign behind Table I/II: reports for every applicable pair."""
    if verbose and on_cell is None:
        on_cell = print_cell

    return run_campaign(
        applicable_pairs(functionals, conditions),
        config,
        max_workers=max_workers,
        store=store,
        resume=resume,
        on_cell=on_cell,
    )


def table_one_from_reports(
    reports: dict[tuple[str, str], VerificationReport],
    functionals: tuple[Functional, ...] | None = None,
    conditions: tuple[Condition, ...] | None = None,
) -> TableOne:
    """Assemble Table I from already-computed (e.g. stored) reports."""
    table = TableOne(
        functionals=tuple(functionals or paper_functionals()),
        conditions=tuple(conditions or PAPER_CONDITIONS),
    )
    table.reports.update(reports)
    return table


#: the paper's published Table I, used by tests/benches as the reference shape
PAPER_TABLE_ONE: dict[str, dict[str, str]] = {
    "EC1": {"PBE": "OK*", "LYP": "CEX", "AM05": "OK", "SCAN": "?", "VWN RPA": "OK"},
    "EC2": {"PBE": "OK*", "LYP": "CEX", "AM05": "OK*", "SCAN": "?", "VWN RPA": "OK"},
    "EC3": {"PBE": "?", "LYP": "CEX", "AM05": "?", "SCAN": "?", "VWN RPA": "OK"},
    "EC6": {"PBE": "OK*", "LYP": "CEX", "AM05": "OK", "SCAN": "?", "VWN RPA": "OK"},
    "EC7": {"PBE": "CEX", "LYP": "CEX", "AM05": "OK*", "SCAN": "?", "VWN RPA": "OK*"},
    "EC4": {"PBE": "OK*", "LYP": "-", "AM05": "?", "SCAN": "?", "VWN RPA": "-"},
    "EC5": {"PBE": "OK", "LYP": "-", "AM05": "?", "SCAN": "?", "VWN RPA": "-"},
}
