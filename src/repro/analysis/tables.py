"""Table harnesses: verification outcomes and the numerics sweep.

Table I runs the campaign engine over the 31 applicable pairs and renders
the paper's matrix (rows = local conditions, columns = DFAs, cells in
{OK, OK*, CEX, ?, -}).  Table III -- this reproduction's extension --
aggregates the Section VI-C numerics campaign: per (functional,
component) hazard/benign/safe counts under both reachability semantics,
branch-boundary continuity, and peak input sensitivity.  Both campaigns
persist every completed cell to the result store as it finishes, so an
interrupted run resumes where it stopped and re-runs are cache hits for
every unchanged cell.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..conditions.base import Condition
from ..conditions.catalog import PAPER_CONDITIONS, applicable_pairs
from ..functionals.base import Functional
from ..functionals.registry import paper_functionals
from ..verifier.campaign import CampaignResult, run_campaign
from ..verifier.regions import SYMBOL_NOT_APPLICABLE, VerificationReport
from ..verifier.verifier import VerifierConfig

__all__ = [
    "PAPER_TABLE_ONE",
    "TableOne",
    "TableThree",
    "applicable_pairs",  # re-exported: the canonical list lives in the catalog
    "print_cell",
    "run_table_campaign",
    "run_table_one",
    "table_one_from_reports",
    "table_three_from_cells",
]


@dataclass
class TableOne:
    """Rendered verification matrix plus the underlying reports."""

    functionals: tuple[Functional, ...]
    conditions: tuple[Condition, ...]
    reports: dict[tuple[str, str], VerificationReport] = field(default_factory=dict)

    def symbol(self, functional: Functional, condition: Condition) -> str:
        report = self.reports.get((functional.name, condition.cid))
        if report is None:
            return SYMBOL_NOT_APPLICABLE
        return report.classification()

    def row(self, condition: Condition) -> list[str]:
        return [self.symbol(f, condition) for f in self.functionals]

    def as_dict(self) -> dict[str, dict[str, str]]:
        return {
            c.cid: {f.name: self.symbol(f, c) for f in self.functionals}
            for c in self.conditions
        }

    def render(self) -> str:
        """Plain-text rendering in the paper's layout."""
        name_width = max(len(c.name) + len(c.equation) + 3 for c in self.conditions)
        col_width = max(max(len(f.name) for f in self.functionals) + 2, 9)
        lines = []
        header = " " * name_width + "".join(
            f.name.rjust(col_width) for f in self.functionals
        )
        lines.append("Table I: verifying local conditions for DFT exact conditions")
        lines.append(header)
        lines.append("-" * len(header))
        for condition in self.conditions:
            label = f"{condition.name} ({condition.equation})".ljust(name_width)
            cells = "".join(s.rjust(col_width) for s in self.row(condition))
            lines.append(label + cells)
        lines.append("-" * len(header))
        lines.append(
            "OK = verified on the whole domain; OK* = partially verified "
            "(rest timeout/inconclusive); CEX = counterexample found; "
            "? = timeout/inconclusive everywhere; - = not applicable"
        )
        return "\n".join(lines)


def print_cell(key: tuple[str, str], report, from_store: bool) -> None:
    """Default per-cell progress printer (the ``on_cell`` of verbose runs)."""
    origin = " [store]" if from_store else ""
    print(f"{report.summary()}{origin}")


def run_table_one(
    config: VerifierConfig | None = None,
    functionals: tuple[Functional, ...] | None = None,
    conditions: tuple[Condition, ...] | None = None,
    verbose: bool = False,
    *,
    max_workers: int = 0,
    store=None,
    resume: bool = False,
    on_cell=None,
    policy=None,
) -> TableOne:
    """Run the verification campaign and assemble Table I.

    ``max_workers=0`` (default) runs in-process and sequentially --
    bit-identical to driving :class:`Verifier` by hand per pair.  With a
    ``store`` (path or :class:`~repro.verifier.store.CampaignStore`),
    completed cells persist immediately; ``resume=True`` serves unchanged
    cells from the store instead of recomputing them.  An interrupt
    (SIGINT) yields a *partial* table -- cells finished before the
    interrupt are present and already stored; use
    :func:`run_table_campaign` when the caller needs the interrupted
    flag.
    """
    functionals = tuple(functionals or paper_functionals())
    conditions = tuple(conditions or PAPER_CONDITIONS)
    table = TableOne(functionals=functionals, conditions=conditions)
    result = run_table_campaign(
        config,
        functionals,
        conditions,
        verbose=verbose,
        max_workers=max_workers,
        store=store,
        resume=resume,
        on_cell=on_cell,
        policy=policy,
    )
    table.reports.update(result.reports)
    return table


def run_table_campaign(
    config: VerifierConfig | None = None,
    functionals: tuple[Functional, ...] | None = None,
    conditions: tuple[Condition, ...] | None = None,
    verbose: bool = False,
    *,
    max_workers: int = 0,
    store=None,
    resume: bool = False,
    on_cell=None,
    policy=None,
) -> CampaignResult:
    """The raw campaign behind Table I/II: reports for every applicable pair."""
    if verbose and on_cell is None:
        on_cell = print_cell

    return run_campaign(
        applicable_pairs(functionals, conditions),
        config,
        max_workers=max_workers,
        store=store,
        resume=resume,
        on_cell=on_cell,
        policy=policy,
    )


def table_one_from_reports(
    reports: dict[tuple[str, str], VerificationReport],
    functionals: tuple[Functional, ...] | None = None,
    conditions: tuple[Condition, ...] | None = None,
) -> TableOne:
    """Assemble Table I from already-computed (e.g. stored) reports."""
    table = TableOne(
        functionals=tuple(functionals or paper_functionals()),
        conditions=tuple(conditions or PAPER_CONDITIONS),
    )
    table.reports.update(reports)
    return table


@dataclass
class TableThree:
    """Aggregated Section VI-C numerics campaign: one row per analysed
    (functional, component) pair.

    Built from the cell payloads of
    :func:`repro.numerics.campaign.run_numerics_campaign` by
    :func:`table_three_from_cells`.  ``as_dict`` is the canonical
    (CI-diffable) form: rows are sorted, so the table is deterministic
    regardless of the campaign's completion order, and two campaigns
    whose cells are bit-identical render bit-identical tables.
    """

    cells: dict[tuple[str, str, str, str], dict] = field(default_factory=dict)

    def pairs(self) -> list[tuple[str, str]]:
        return sorted({(k[0], k[1]) for k in self.cells})

    def _cell(self, functional: str, component: str, check: str, semantics: str):
        return self.cells.get((functional, component, check, semantics))

    def as_dict(self) -> dict:
        out: dict = {}
        for functional, component in self.pairs():
            row: dict = {}
            hazards = {}
            for semantics in ("branch", "ieee"):
                payload = self._cell(functional, component, "hazards", semantics)
                if payload is not None:
                    hazards[semantics] = {
                        "counts": dict(payload["counts"]),
                        "sites": len(payload["verdicts"]),
                        "total": payload["is_total"],
                    }
            if hazards:
                row["hazards"] = hazards
            payload = self._cell(functional, component, "continuity", "-")
            if payload is not None:
                row["continuity"] = {
                    "boundaries": len(payload["boundaries"]),
                    "max_value_jump": payload["max_value_jump"],
                    "max_slope_jump": payload["max_slope_jump"],
                    "singular": payload["singular_count"],
                    "continuous": payload["continuous"],
                }
            payload = self._cell(functional, component, "sensitivity", "-")
            if payload is not None:
                row["sensitivity"] = {
                    "max_kappa": {
                        var: stats["max"] for var, stats in payload["kappa"].items()
                    }
                }
            out[f"{functional}/{component}"] = row
        return out

    @staticmethod
    def _counts_text(entry) -> str:
        if entry is None:
            return "-"
        counts = entry["counts"]
        order = ("safe", "benign", "hazard", "inconclusive", "timeout")
        short = {"safe": "s", "benign": "b", "hazard": "H", "inconclusive": "?",
                 "timeout": "t"}
        parts = [f"{short[k]}{counts[k]}" for k in order if counts.get(k)]
        return " ".join(parts) if parts else "none"

    def render(self) -> str:
        """Plain-text rendering alongside Table I/II."""
        lines = [
            "Table III: Section VI-C numerics sweep "
            "(s=safe b=benign H=hazard ?=inconclusive t=timeout)",
        ]
        header = (
            f"{'pair':22s} {'hazards[branch]':>16s} {'hazards[ieee]':>16s} "
            f"{'continuity':>22s} {'max kappa':>12s}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        rows = self.as_dict()
        for functional, component in self.pairs():
            row = rows[f"{functional}/{component}"]
            hazards = row.get("hazards", {})
            branch = self._counts_text(hazards.get("branch"))
            ieee = self._counts_text(hazards.get("ieee"))
            continuity = row.get("continuity")
            if continuity is None:
                cont_text = "-"
            elif continuity["boundaries"] == 0:
                cont_text = "analytic"
            elif continuity["singular"]:
                cont_text = f"SINGULAR x{continuity['singular']}"
            elif continuity["continuous"]:
                cont_text = f"C0 ({continuity['boundaries']} bnd)"
            else:
                cont_text = f"jump {continuity['max_value_jump']:.3g}"
            sens = row.get("sensitivity")
            if sens is None or not sens["max_kappa"]:
                kappa_text = "-"
            else:
                kappa_text = f"{max(sens['max_kappa'].values()):.3g}"
            lines.append(
                f"{functional + '/' + component:22s} {branch:>16s} {ieee:>16s} "
                f"{cont_text:>22s} {kappa_text:>12s}"
            )
        return "\n".join(lines)


def table_three_from_cells(
    cells: dict[tuple[str, str, str, str], dict]
) -> TableThree:
    """Assemble Table III from numerics campaign cells (or a store dump)."""
    return TableThree(cells=dict(cells))


#: the paper's published Table I, used by tests/benches as the reference shape
PAPER_TABLE_ONE: dict[str, dict[str, str]] = {
    "EC1": {"PBE": "OK*", "LYP": "CEX", "AM05": "OK", "SCAN": "?", "VWN RPA": "OK"},
    "EC2": {"PBE": "OK*", "LYP": "CEX", "AM05": "OK*", "SCAN": "?", "VWN RPA": "OK"},
    "EC3": {"PBE": "?", "LYP": "CEX", "AM05": "?", "SCAN": "?", "VWN RPA": "OK"},
    "EC6": {"PBE": "OK*", "LYP": "CEX", "AM05": "OK", "SCAN": "?", "VWN RPA": "OK"},
    "EC7": {"PBE": "CEX", "LYP": "CEX", "AM05": "OK*", "SCAN": "?", "VWN RPA": "OK*"},
    "EC4": {"PBE": "OK*", "LYP": "-", "AM05": "?", "SCAN": "?", "VWN RPA": "-"},
    "EC5": {"PBE": "OK", "LYP": "-", "AM05": "?", "SCAN": "?", "VWN RPA": "-"},
}
