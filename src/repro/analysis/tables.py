"""Table I harness: verification outcomes for every DFA-condition pair.

Runs Algorithm 1 over the 31 applicable pairs and renders the paper's
Table I (rows = local conditions, columns = DFAs, cells in
{OK, OK*, CEX, ?, -}).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..conditions.base import Condition
from ..conditions.catalog import PAPER_CONDITIONS
from ..functionals.base import Functional
from ..functionals.registry import paper_functionals
from ..verifier.encoder import encode
from ..verifier.regions import SYMBOL_NOT_APPLICABLE, VerificationReport
from ..verifier.verifier import Verifier, VerifierConfig


@dataclass
class TableOne:
    """Rendered verification matrix plus the underlying reports."""

    functionals: tuple[Functional, ...]
    conditions: tuple[Condition, ...]
    reports: dict[tuple[str, str], VerificationReport] = field(default_factory=dict)

    def symbol(self, functional: Functional, condition: Condition) -> str:
        report = self.reports.get((functional.name, condition.cid))
        if report is None:
            return SYMBOL_NOT_APPLICABLE
        return report.classification()

    def row(self, condition: Condition) -> list[str]:
        return [self.symbol(f, condition) for f in self.functionals]

    def as_dict(self) -> dict[str, dict[str, str]]:
        return {
            c.cid: {f.name: self.symbol(f, c) for f in self.functionals}
            for c in self.conditions
        }

    def render(self) -> str:
        """Plain-text rendering in the paper's layout."""
        name_width = max(len(c.name) + len(c.equation) + 3 for c in self.conditions)
        col_width = max(max(len(f.name) for f in self.functionals) + 2, 9)
        lines = []
        header = " " * name_width + "".join(
            f.name.rjust(col_width) for f in self.functionals
        )
        lines.append("Table I: verifying local conditions for DFT exact conditions")
        lines.append(header)
        lines.append("-" * len(header))
        for condition in self.conditions:
            label = f"{condition.name} ({condition.equation})".ljust(name_width)
            cells = "".join(s.rjust(col_width) for s in self.row(condition))
            lines.append(label + cells)
        lines.append("-" * len(header))
        lines.append(
            "OK = verified on the whole domain; OK* = partially verified "
            "(rest timeout/inconclusive); CEX = counterexample found; "
            "? = timeout/inconclusive everywhere; - = not applicable"
        )
        return "\n".join(lines)


def run_table_one(
    config: VerifierConfig | None = None,
    functionals: tuple[Functional, ...] | None = None,
    conditions: tuple[Condition, ...] | None = None,
    verbose: bool = False,
) -> TableOne:
    """Run XCVerifier on every applicable pair and assemble Table I."""
    functionals = functionals or paper_functionals()
    conditions = conditions or PAPER_CONDITIONS
    table = TableOne(functionals=tuple(functionals), conditions=tuple(conditions))
    for functional in functionals:
        for condition in conditions:
            if not condition.applies_to(functional):
                continue
            verifier = Verifier(config)
            problem = encode(functional, condition)
            report = verifier.verify(problem)
            table.reports[(functional.name, condition.cid)] = report
            if verbose:
                print(report.summary())
    return table


#: the paper's published Table I, used by tests/benches as the reference shape
PAPER_TABLE_ONE: dict[str, dict[str, str]] = {
    "EC1": {"PBE": "OK*", "LYP": "CEX", "AM05": "OK", "SCAN": "?", "VWN RPA": "OK"},
    "EC2": {"PBE": "OK*", "LYP": "CEX", "AM05": "OK*", "SCAN": "?", "VWN RPA": "OK"},
    "EC3": {"PBE": "?", "LYP": "CEX", "AM05": "?", "SCAN": "?", "VWN RPA": "OK"},
    "EC6": {"PBE": "OK*", "LYP": "CEX", "AM05": "OK", "SCAN": "?", "VWN RPA": "OK"},
    "EC7": {"PBE": "CEX", "LYP": "CEX", "AM05": "OK*", "SCAN": "?", "VWN RPA": "OK*"},
    "EC4": {"PBE": "OK*", "LYP": "-", "AM05": "?", "SCAN": "?", "VWN RPA": "-"},
    "EC5": {"PBE": "OK", "LYP": "-", "AM05": "?", "SCAN": "?", "VWN RPA": "-"},
}
