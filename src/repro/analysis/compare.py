"""Table II harness: consistency between the PB baseline and XCVerifier.

Following Section IV-C:

* ``J``  (consistent): both approaches find violations, and the violating
  PB points fall inside the counterexample regions XCVerifier isolated
  (up to one split-threshold of dilation -- region boundaries are only
  resolved to the threshold t);
* ``J*`` (not inconsistent): neither approach finds a violation (PB passes
  everywhere, XCVerifier verifies and/or times out);
* ``?``: XCVerifier timed out on the whole domain, so no comparison is
  possible (the SCAN column);
* ``MISMATCH``: anything else -- one approach finds violations the other
  rules out.  The paper observed none; tests assert we don't either.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..conditions.base import Condition
from ..conditions.catalog import PAPER_CONDITIONS
from ..functionals.base import Functional
from ..functionals.registry import paper_functionals
from ..pb.checker import PBChecker, PBResult
from ..verifier.regions import (
    SYMBOL_NOT_APPLICABLE,
    SYMBOL_UNKNOWN,
    VerificationReport,
)
from ..verifier.verifier import Verifier, VerifierConfig

CONSISTENT = "J"
NOT_INCONSISTENT = "J*"
NO_COMPARISON = "?"
MISMATCH = "MISMATCH"


def pb_points_covered_fraction(
    pb_result: PBResult, report: VerificationReport, dilation: float
) -> float:
    """Fraction of PB-violating grid points inside XCVerifier cex regions."""
    idx = np.argwhere(pb_result.violated)
    if len(idx) == 0:
        return 1.0
    axes = pb_result.grid.axes
    coords = {
        name: axis[idx[:, pos]] for pos, (name, axis) in enumerate(axes.items())
    }
    covered = np.zeros(len(idx), dtype=bool)
    for record in report.counterexamples():
        inside = np.ones(len(idx), dtype=bool)
        for name, values in coords.items():
            iv = record.box[name]
            inside &= (values >= iv.lo - dilation) & (values <= iv.hi + dilation)
        covered |= inside
    return float(covered.mean())


def classify_consistency(
    pb_result: PBResult,
    report: VerificationReport,
    dilation: float,
    coverage_threshold: float = 0.5,
) -> str:
    """One Table II cell."""
    if report.classification() == SYMBOL_UNKNOWN:
        return NO_COMPARISON
    pb_violates = pb_result.any_violation
    xcv_violates = report.has_counterexample()
    if not pb_violates and not xcv_violates:
        return NOT_INCONSISTENT
    if pb_violates and xcv_violates:
        coverage = pb_points_covered_fraction(pb_result, report, dilation)
        return CONSISTENT if coverage >= coverage_threshold else MISMATCH
    if xcv_violates and not pb_violates:
        # XCVerifier found a genuine violation PB's finite grid missed:
        # still consistent in the paper's sense if the region is small,
        # but we surface it as a mismatch for scrutiny.
        return MISMATCH
    return MISMATCH


@dataclass
class TableTwo:
    """Consistency matrix plus the underlying artefacts."""

    functionals: tuple[Functional, ...]
    conditions: tuple[Condition, ...]
    cells: dict[tuple[str, str], str] = field(default_factory=dict)
    pb_results: dict[tuple[str, str], PBResult] = field(default_factory=dict)
    reports: dict[tuple[str, str], VerificationReport] = field(default_factory=dict)

    def symbol(self, functional: Functional, condition: Condition) -> str:
        return self.cells.get(
            (functional.name, condition.cid), SYMBOL_NOT_APPLICABLE
        )

    def as_dict(self) -> dict[str, dict[str, str]]:
        return {
            c.cid: {f.name: self.symbol(f, c) for f in self.functionals}
            for c in self.conditions
        }

    def render(self) -> str:
        name_width = max(len(c.name) + len(c.equation) + 3 for c in self.conditions)
        col_width = max(max(len(f.name) for f in self.functionals) + 2, 10)
        lines = ["Table II: consistency between PB and XCVerifier"]
        header = " " * name_width + "".join(
            f.name.rjust(col_width) for f in self.functionals
        )
        lines.append(header)
        lines.append("-" * len(header))
        for condition in self.conditions:
            label = f"{condition.name} ({condition.equation})".ljust(name_width)
            cells = "".join(
                self.symbol(f, condition).rjust(col_width) for f in self.functionals
            )
            lines.append(label + cells)
        lines.append("-" * len(header))
        lines.append(
            "J = consistent; J* = not inconsistent; ? = XCVerifier timed out; "
            "- = not applicable"
        )
        return "\n".join(lines)


def run_table_two(
    verifier_config: VerifierConfig | None = None,
    checker: PBChecker | None = None,
    functionals: tuple[Functional, ...] | None = None,
    conditions: tuple[Condition, ...] | None = None,
    reports: dict[tuple[str, str], VerificationReport] | None = None,
    verbose: bool = False,
    *,
    max_workers: int = 0,
    store=None,
    resume: bool = False,
    interrupted: bool = False,
) -> TableTwo:
    """Run both approaches on every applicable pair and compare.

    ``reports`` may be passed to reuse the Table I verification runs;
    pairs missing from a partial dict are verified inline, unless
    ``interrupted=True`` says the dict came from a campaign that was cut
    short -- then the missing cells are left unscored instead of being
    silently recomputed against the interrupt.  Alternatively
    ``store``/``resume`` route the verification side through the campaign
    engine and its persistent result store, so the expensive XCVerifier
    half of Table II shares Table I's cached cells (the PB grid check is
    cheap and always re-run).
    """
    from ..verifier.encoder import encode

    functionals = functionals or paper_functionals()
    conditions = conditions or PAPER_CONDITIONS
    checker = checker or PBChecker()
    verifier_config = verifier_config or VerifierConfig()
    dilation = 2.0 * verifier_config.split_threshold

    if reports is None and (store is not None or max_workers > 1):
        from .tables import run_table_campaign

        campaign = run_table_campaign(
            verifier_config,
            tuple(functionals),
            tuple(conditions),
            max_workers=max_workers,
            store=store,
            resume=resume,
        )
        reports = campaign.reports
        interrupted = interrupted or campaign.interrupted

    table = TableTwo(functionals=tuple(functionals), conditions=tuple(conditions))
    for functional in functionals:
        for condition in conditions:
            if not condition.applies_to(functional):
                continue
            key = (functional.name, condition.cid)
            if reports is not None and key in reports:
                report = reports[key]
            elif interrupted:
                continue  # interrupted campaign: leave the cell unscored
            else:
                # no (or a partial caller-supplied) reports dict: verify
                # the missing cell inline
                report = Verifier(verifier_config).verify(
                    encode(functional, condition)
                )
            pb_result = checker.check(functional, condition)
            cell = classify_consistency(pb_result, report, dilation)
            table.cells[key] = cell
            table.pb_results[key] = pb_result
            table.reports[key] = report
            if verbose:
                print(f"{functional.name}/{condition.cid}: {cell}")
    return table


#: the paper's published Table II
PAPER_TABLE_TWO: dict[str, dict[str, str]] = {
    "EC1": {"PBE": "J*", "LYP": "J", "AM05": "J*", "SCAN": "?", "VWN RPA": "J*"},
    "EC2": {"PBE": "J*", "LYP": "J", "AM05": "J*", "SCAN": "?", "VWN RPA": "J*"},
    "EC3": {"PBE": "?", "LYP": "J", "AM05": "?", "SCAN": "?", "VWN RPA": "J*"},
    "EC6": {"PBE": "J*", "LYP": "J", "AM05": "J*", "SCAN": "?", "VWN RPA": "J*"},
    "EC7": {"PBE": "J", "LYP": "J", "AM05": "J*", "SCAN": "?", "VWN RPA": "J*"},
    "EC4": {"PBE": "J*", "LYP": "-", "AM05": "?", "SCAN": "?", "VWN RPA": "-"},
    "EC5": {"PBE": "J*", "LYP": "-", "AM05": "?", "SCAN": "?", "VWN RPA": "-"},
}
