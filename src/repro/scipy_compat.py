"""Lazy accessors for SciPy functions used on solver hot paths.

``scipy.special`` imports are deferred until first use and memoised, so
modules on the interval/point evaluation hot paths neither pay the import
at module load nor re-run the import machinery per call.  Keeping the
pattern in one place also keeps the gating consistent if SciPy is absent.
"""

from __future__ import annotations

from functools import lru_cache


@lru_cache(maxsize=None)
def special(name: str):
    """Return ``scipy.special.<name>``, importing scipy once on first use."""
    from scipy import special as _special

    return getattr(_special, name)
