"""Symbolic differentiation over the expression IR.

The paper's XCEncoder computes the derivatives needed by the local
conditions (EC2-EC4, EC6, EC7 require d/d rs, EC3 additionally d^2/d rs^2)
*symbolically* rather than by numerical approximation.  This module is the
corresponding engine: a single memoised bottom-up pass over the DAG.

Piecewise expressions differentiate branch-wise: ``d ite(c, a, b) =
ite(c, da, db)``.  This matches the treatment of LibXC piecewise forms
(e.g. SCAN's switching function), whose branches agree at the switch point.
"""

from __future__ import annotations

from math import sqrt as _msqrt

from . import builder as b
from .nodes import Add, Const, Expr, Func, Ite, Mul, Pow, Var, ZERO, ONE


def derivative(expr: Expr, wrt: Var, order: int = 1) -> Expr:
    """Return the ``order``-th symbolic derivative of ``expr`` w.r.t. ``wrt``."""
    if order < 0:
        raise ValueError("derivative order must be non-negative")
    out = expr
    for _ in range(order):
        out = _derive_once(out, wrt)
    return out


def gradient(expr: Expr, wrts: tuple[Var, ...]) -> tuple[Expr, ...]:
    """Return the tuple of first partial derivatives of ``expr``."""
    return tuple(_derive_once(expr, v) for v in wrts)


def _derive_once(expr: Expr, wrt: Var) -> Expr:
    d: dict[int, Expr] = {}

    for node in expr.walk():
        if isinstance(node, Const):
            d[id(node)] = ZERO
        elif isinstance(node, Var):
            d[id(node)] = ONE if node is wrt else ZERO
        elif isinstance(node, Add):
            d[id(node)] = b.add(*[d[id(a)] for a in node.args])
        elif isinstance(node, Mul):
            d[id(node)] = _derive_mul(node, d)
        elif isinstance(node, Pow):
            d[id(node)] = _derive_pow(node, d)
        elif isinstance(node, Func):
            d[id(node)] = _derive_func(node, d)
        elif isinstance(node, Ite):
            d[id(node)] = b.ite(node.cond, d[id(node.then)], d[id(node.orelse)])
        else:  # pragma: no cover - defensive
            raise TypeError(f"cannot differentiate {type(node).__name__}")

    return d[id(expr)]


def _derive_mul(node: Mul, d: dict[int, Expr]) -> Expr:
    args = node.args
    terms = []
    for i, arg in enumerate(args):
        darg = d[id(arg)]
        if darg is ZERO:
            continue
        others = args[:i] + args[i + 1:]
        terms.append(b.mul(darg, *others))
    if not terms:
        return ZERO
    return b.add(*terms)


def _derive_pow(node: Pow, d: dict[int, Expr]) -> Expr:
    base, expo = node.base, node.exponent
    dbase = d[id(base)]
    dexpo = d[id(expo)]
    if dexpo is ZERO:
        if dbase is ZERO:
            return ZERO
        # d(b**c) = c * b**(c-1) * db
        return b.mul(expo, b.pow_(base, b.sub(expo, ONE)), dbase)
    # general rule: b**e * (de*log(b) + e*db/b)
    term = b.add(
        b.mul(dexpo, b.log(base)),
        b.mul(expo, b.div(dbase, base)),
    )
    return b.mul(node, term)


def _derive_func(node: Func, d: dict[int, Expr]) -> Expr:
    arg = node.arg
    darg = d[id(arg)]
    if darg is ZERO:
        return ZERO
    name = node.name
    if name == "exp":
        inner = node
    elif name == "log":
        inner = b.div(ONE, arg)
    elif name == "sqrt":
        inner = b.div(Const(0.5), node)
    elif name == "cbrt":
        # d cbrt(x) = 1/(3 cbrt(x)^2)
        inner = b.div(ONE, b.mul(Const(3.0), b.pow_(node, Const(2.0))))
    elif name == "atan":
        inner = b.div(ONE, b.add(ONE, b.pow_(arg, Const(2.0))))
    elif name == "abs":
        inner = b.ite(arg.ge(ZERO), ONE, Const(-1.0))
    elif name == "lambertw":
        # W'(x) = W(x) / (x * (1 + W(x))); rewritten with exp to stay
        # well-defined at x == 0: W'(x) = 1 / (exp(W) * (1 + W))
        inner = b.div(ONE, b.mul(b.exp(node), b.add(ONE, node)))
    elif name == "sin":
        inner = b.cos(arg)
    elif name == "cos":
        inner = b.neg(b.sin(arg))
    elif name == "tanh":
        inner = b.sub(ONE, b.pow_(node, Const(2.0)))
    elif name == "erf":
        inner = b.mul(Const(2.0 / _msqrt(3.141592653589793)), b.exp(b.neg(b.pow_(arg, Const(2.0)))))
    else:  # pragma: no cover - defensive
        raise TypeError(f"no derivative rule for {name}")
    return b.mul(inner, darg)
