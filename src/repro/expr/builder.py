"""Canonicalising constructors for the expression IR.

All expression construction goes through these functions (the operator
overloads on :class:`~repro.expr.nodes.Expr` delegate here).  They perform
the light, always-sound simplifications that keep symbolically
differentiated DFA expressions from exploding:

* constant folding,
* flattening of nested sums/products,
* like-term collection in sums (``2*x + 3*x -> 5*x``),
* identical-base merging in products (``x**a * x**b -> x**(a+b)`` for
  constant exponents),
* identity/annihilator elimination (``x+0``, ``x*1``, ``x*0``, ``x**1``).

Power-of-power collapsing is applied only when sound (integer exponents or
structurally non-negative base) because the DFA input domain facts (rs > 0,
s >= 0) are recorded as ``Var(nonneg=True)`` tags.
"""

from __future__ import annotations

import math

from .nodes import (
    Add,
    Const,
    Expr,
    Func,
    Ite,
    Mul,
    Pow,
    Rel,
    Var,
    ZERO,
    ONE,
    NEG_ONE,
    is_const,
    is_nonneg,
)


def as_expr(value) -> Expr:
    """Coerce Python numbers to :class:`Const`; pass expressions through."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, (int, float)):
        return Const(float(value))
    raise TypeError(f"cannot convert {type(value).__name__} to Expr")


def var(name: str, nonneg: bool = False) -> Var:
    return Var(name, nonneg=nonneg)


def const(value: float) -> Const:
    return Const(value)


# ---------------------------------------------------------------------------
# sums
# ---------------------------------------------------------------------------

def _split_coeff(term: Expr) -> tuple[float, Expr]:
    """Split a term into (constant coefficient, remaining factor)."""
    if isinstance(term, Const):
        return term.value, ONE
    if isinstance(term, Mul):
        coeff = 1.0
        rest = []
        for factor in term.args:
            if isinstance(factor, Const):
                coeff *= factor.value
            else:
                rest.append(factor)
        if not rest:
            return coeff, ONE
        if len(rest) == 1:
            return coeff, rest[0]
        return coeff, Mul(tuple(rest))
    return 1.0, term


def add(*terms) -> Expr:
    """Build a canonical sum of the given terms."""
    flat: list[Expr] = []
    stack = [as_expr(t) for t in reversed(terms)]
    while stack:
        t = stack.pop()
        if isinstance(t, Add):
            stack.extend(reversed(t.args))
        else:
            flat.append(t)

    const_part = 0.0
    # collect like terms: key by the non-constant factor (interned -> id key)
    coeffs: dict[int, float] = {}
    reps: dict[int, Expr] = {}
    order: list[int] = []
    for t in flat:
        if isinstance(t, Const):
            const_part += t.value
            continue
        c, rest = _split_coeff(t)
        if rest is ONE:
            const_part += c
            continue
        key = id(rest)
        if key not in coeffs:
            coeffs[key] = 0.0
            reps[key] = rest
            order.append(key)
        coeffs[key] += c

    out: list[Expr] = []
    for key in order:
        c = coeffs[key]
        if c == 0.0:
            continue
        rest = reps[key]
        if c == 1.0:
            out.append(rest)
        else:
            out.append(mul(Const(c), rest))
    if const_part != 0.0 or not out:
        out.insert(0, Const(const_part))
    if len(out) == 1:
        return out[0]
    return Add(tuple(out))


def sub(a, b) -> Expr:
    return add(as_expr(a), neg(as_expr(b)))


def neg(a) -> Expr:
    a = as_expr(a)
    if isinstance(a, Const):
        return Const(-a.value)
    return mul(NEG_ONE, a)


# ---------------------------------------------------------------------------
# products
# ---------------------------------------------------------------------------

def _split_base_exp(factor: Expr) -> tuple[Expr, Expr]:
    if isinstance(factor, Pow):
        return factor.base, factor.exponent
    return factor, ONE


def mul(*factors) -> Expr:
    """Build a canonical product of the given factors."""
    flat: list[Expr] = []
    stack = [as_expr(f) for f in reversed(factors)]
    while stack:
        f = stack.pop()
        if isinstance(f, Mul):
            stack.extend(reversed(f.args))
        else:
            flat.append(f)

    const_part = 1.0
    exps: dict[int, list[Expr]] = {}
    bases: dict[int, Expr] = {}
    order: list[int] = []
    for f in flat:
        if isinstance(f, Const):
            const_part *= f.value
            continue
        base, expo = _split_base_exp(f)
        key = id(base)
        if key not in exps:
            exps[key] = []
            bases[key] = base
            order.append(key)
        exps[key].append(expo)

    if const_part == 0.0:
        return ZERO

    out: list[Expr] = []
    for key in order:
        base = bases[key]
        exponents = exps[key]
        if len(exponents) == 1:
            expo = exponents[0]
        else:
            # merging x**a * x**b -> x**(a+b) is sound away from x == 0 with
            # negative exponents; functional expressions keep rs, densities
            # strictly positive so we merge unconditionally for same bases.
            expo = add(*exponents)
        out.append(pow_(base, expo))

    # re-flatten: pow_ may have produced constants
    final_const = const_part
    final: list[Expr] = []
    for f in out:
        if isinstance(f, Const):
            final_const *= f.value
        else:
            final.append(f)
    if final_const == 0.0:
        return ZERO
    if final_const != 1.0 or not final:
        final.insert(0, Const(final_const))
    if len(final) == 1:
        return final[0]
    return Mul(tuple(final))


def div(a, b) -> Expr:
    a = as_expr(a)
    b = as_expr(b)
    if isinstance(b, Const):
        if b.value == 0.0:
            raise ZeroDivisionError("symbolic division by constant zero")
        return mul(a, Const(1.0 / b.value))
    return mul(a, pow_(b, NEG_ONE))


# ---------------------------------------------------------------------------
# powers
# ---------------------------------------------------------------------------

def _safe_const_pow(base: float, expo: float) -> float | None:
    try:
        result = math.pow(base, expo)
    except (ValueError, OverflowError):
        return None
    if math.isnan(result) or math.isinf(result):
        return None
    return result


def pow_(base, exponent) -> Expr:
    base = as_expr(base)
    exponent = as_expr(exponent)

    if is_const(exponent, 0.0):
        return ONE
    if is_const(exponent, 1.0):
        return base
    if isinstance(base, Const) and isinstance(exponent, Const):
        folded = _safe_const_pow(base.value, exponent.value)
        if folded is not None:
            return Const(folded)
        return Pow(base, exponent)
    if is_const(base, 1.0):
        return ONE
    if is_const(base, 0.0) and isinstance(exponent, Const) and exponent.value > 0:
        return ZERO
    if isinstance(base, Pow):
        inner_exp = base.exponent
        # (x**a)**b -> x**(a*b) when sound
        if isinstance(inner_exp, Const) and isinstance(exponent, Const):
            a, b = inner_exp.value, exponent.value
            sound = (
                (a.is_integer() and b.is_integer())
                or is_nonneg(base.base)
                or (a.is_integer() and int(a) % 2 != 0)
            )
            if sound:
                return pow_(base.base, Const(a * b))
    if (
        isinstance(base, Mul)
        and isinstance(exponent, Const)
        and (exponent.is_integer() or all(is_nonneg(f) for f in base.args))
    ):
        # (x*y)**c -> x**c * y**c  (sound for integer c, or all-nonneg factors)
        return mul(*[pow_(f, exponent) for f in base.args])
    if isinstance(base, Func) and base.name == "exp" and isinstance(exponent, Const):
        return exp(mul(exponent, base.arg))
    return Pow(base, exponent)


# ---------------------------------------------------------------------------
# functions
# ---------------------------------------------------------------------------

def _func(name: str, arg) -> Expr:
    arg = as_expr(arg)
    if isinstance(arg, Const):
        folded = _fold_unary(name, arg.value)
        if folded is not None:
            return Const(folded)
    return Func(name, arg)


def _fold_unary(name: str, x: float) -> float | None:
    try:
        if name == "exp":
            value = math.exp(x)
        elif name == "log":
            value = math.log(x)
        elif name == "sqrt":
            value = math.sqrt(x)
        elif name == "cbrt":
            value = math.copysign(abs(x) ** (1.0 / 3.0), x)
        elif name == "atan":
            value = math.atan(x)
        elif name == "abs":
            value = abs(x)
        elif name == "sin":
            value = math.sin(x)
        elif name == "cos":
            value = math.cos(x)
        elif name == "tanh":
            value = math.tanh(x)
        elif name == "erf":
            value = math.erf(x)
        elif name == "lambertw":
            from scipy.special import lambertw as _lw
            value = float(_lw(x).real)
        else:
            return None
    except (ValueError, OverflowError):
        return None
    if math.isnan(value) or math.isinf(value):
        return None
    return value


def exp(arg) -> Expr:
    arg = as_expr(arg)
    if isinstance(arg, Func) and arg.name == "log":
        return arg.arg
    return _func("exp", arg)


def log(arg) -> Expr:
    arg = as_expr(arg)
    if isinstance(arg, Func) and arg.name == "exp":
        return arg.arg
    return _func("log", arg)


def sqrt(arg) -> Expr:
    arg = as_expr(arg)
    if isinstance(arg, Const):
        return _func("sqrt", arg)
    # represent as pow for uniform handling downstream
    return pow_(arg, Const(0.5))


def cbrt(arg) -> Expr:
    return _func("cbrt", arg)


def atan(arg) -> Expr:
    return _func("atan", arg)


def abs_(arg) -> Expr:
    arg = as_expr(arg)
    if is_nonneg(arg):
        return arg
    return _func("abs", arg)


def lambertw(arg) -> Expr:
    return _func("lambertw", arg)


def sin(arg) -> Expr:
    return _func("sin", arg)


def cos(arg) -> Expr:
    return _func("cos", arg)


def tanh(arg) -> Expr:
    return _func("tanh", arg)


def erf(arg) -> Expr:
    return _func("erf", arg)


def ite(cond: Rel, then, orelse) -> Expr:
    """Build an if-then-else expression on a relational condition."""
    then = as_expr(then)
    orelse = as_expr(orelse)
    if then is orelse:
        return then
    # decide constant conditions immediately -- by direct operand
    # comparison, like every runtime decider (Rel.compare): the rounded
    # difference turns two same-sign infinite operands into NaN and would
    # fold to the wrong branch.  NaN operands stay unfolded (the
    # evaluators' partial/total semantics differ there).
    if isinstance(cond.lhs, Const) and isinstance(cond.rhs, Const):
        lhs_v, rhs_v = cond.lhs.value, cond.rhs.value
        if not (math.isnan(lhs_v) or math.isnan(rhs_v)):
            return then if cond.compare(lhs_v, rhs_v) else orelse
    return Ite(cond, then, orelse)


def minimum(a, b) -> Expr:
    a, b = as_expr(a), as_expr(b)
    return ite(a.le(b), a, b)


def maximum(a, b) -> Expr:
    a, b = as_expr(a), as_expr(b)
    return ite(a.ge(b), a, b)
