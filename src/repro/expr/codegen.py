"""Compilation of expression DAGs to vectorised NumPy kernels.

The Pederson-Burke grid baseline evaluates every functional on 10^5-scale
meshes; evaluating the interned DAG node-by-node in Python would dominate
the runtime.  Following the HPC guidance (vectorise, exploit common
subexpressions, avoid Python-level loops), we emit one NumPy statement per
*unique* DAG node -- hash-consing gives us common-subexpression elimination
for free -- and ``exec`` the resulting function once.

Generated kernels accept scalars or broadcastable ``ndarray`` inputs and
evaluate with ``errstate(all='ignore')`` so out-of-domain points yield
NaN/inf instead of raising, mirroring how grid checkers treat them.

IEEE-kernel semantics
---------------------
The compiled kernel is *total*: every input produces an IEEE value.  Where
the scalar evaluator (:func:`repro.expr.evaluator.evaluate`) raises
``EvalError`` (NaN in non-strict mode), the kernel silently continues:

* ``np.power`` with a negative base and fractional exponent yields NaN
  (the scalar evaluator raises); zero to a negative power yields inf;
  finite operands overflowing yield inf (the scalar evaluator raises
  ``OverflowError``).  :mod:`repro.numerics.hazards` classifies a hazard
  witness by exactly this rule: a kernel evaluation that comes back NaN
  or inf is a ``hazard``, a finite kernel value is ``benign``.
* ``Ite`` compiles to ``np.where``: **both** branches are evaluated and
  the untaken branch's NaN/inf never leaks into the result -- but also
  never short-circuits, which is the ``branch_aware=False`` reachability
  semantics of the hazard analysis.
* Ite guards compare their operands **directly** (``lhs op rhs``), never
  via the rounded difference ``(lhs - rhs) op 0``: for finite doubles the
  two agree (gradual underflow makes ``lhs - rhs == 0`` iff
  ``lhs == rhs`` and rounding preserves the difference's sign), but when
  both operands overflow to the same infinity the subtraction
  manufactures ``inf - inf = NaN``, every ``op 0`` test fails, and the
  gap encoding silently takes the else branch where the direct
  comparison still orders the operands correctly.  A NaN guard *operand*
  makes the comparison False (else branch) here, while the scalar
  evaluator raises -- a deliberate divergence.
* ``Pow`` values (and hence guard *operands* containing ``Pow``) may
  differ from the scalar evaluator by an ulp: small integer exponents
  lower to multiplication chains and larger ones to ``np.power``, while
  the scalar evaluator goes through libm ``pow`` -- three rounding
  strategies that disagree in the last place (``0.3**4``:
  ``(x*x)*(x*x)`` and ``math.pow`` round up, ``np.power`` rounds down;
  per-element libm in the kernel would defeat vectorisation, exactly
  why the batched tape executor runs Pow per column on Python floats).
  Direct comparison is therefore bit-identical between kernel and scalar
  only for operands built from add/mul/const/var; a guard whose operands
  contain ``Pow`` can pick the other branch at an exact tie (witness:
  ``ite(x**3*y < x**4, 1, -1)`` at ``x = y = 0.3``).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .nodes import Add, Const, Expr, Func, Ite, Mul, Pow, Var

_FUNC_TEMPLATES = {
    "exp": "np.exp({0})",
    "log": "np.log({0})",
    "sqrt": "np.sqrt({0})",
    "cbrt": "np.cbrt({0})",
    "atan": "np.arctan({0})",
    "abs": "np.abs({0})",
    "lambertw": "_lambertw_real({0})",
    "sin": "np.sin({0})",
    "cos": "np.cos({0})",
    "tanh": "np.tanh({0})",
    "erf": "_erf({0})",
}

_OP_STR = {"<=": "<=", "<": "<", ">=": ">=", ">": ">", "==": "=="}


def _lambertw_real(x):
    from scipy.special import lambertw
    return np.real(lambertw(x))


def _erf(x):
    from scipy.special import erf
    return erf(x)


def compile_numpy(
    expr: Expr, arg_order: tuple[Var, ...] | None = None
) -> Callable[..., np.ndarray]:
    """Compile ``expr`` into ``f(*arrays) -> ndarray``.

    ``arg_order`` fixes the positional argument order; by default the free
    variables are sorted by name.  The compiled function's source is kept on
    the ``__source__`` attribute for inspection/debugging.
    """
    if arg_order is None:
        arg_order = tuple(sorted(expr.free_vars(), key=lambda v: v.name))
    names = [v.name for v in arg_order]
    free = {v.name for v in expr.free_vars()}
    missing = free - set(names)
    if missing:
        raise ValueError(f"arg_order is missing variables: {sorted(missing)}")

    lines: list[str] = []
    memo: dict[int, str] = {}
    counter = 0

    def fresh() -> str:
        nonlocal counter
        counter += 1
        return f"_t{counter}"

    for node in expr.walk():
        if isinstance(node, Const):
            # repr() of the non-finite floats ("inf", "nan") is not a
            # defined name inside the kernel; spell them as float() calls
            value = node.value
            if value != value or value in (float("inf"), float("-inf")):
                memo[id(node)] = f"float({str(value)!r})"
            else:
                memo[id(node)] = repr(value)
            continue
        if isinstance(node, Var):
            memo[id(node)] = node.name
            continue
        name = fresh()
        if isinstance(node, Add):
            rhs = " + ".join(memo[id(a)] for a in node.args)
        elif isinstance(node, Mul):
            rhs = " * ".join(f"({memo[id(a)]})" for a in node.args)
        elif isinstance(node, Pow):
            base, expo = node.base, node.exponent
            if isinstance(expo, Const) and expo.is_integer() and 0 < expo.value <= 4:
                rhs = "(" + " * ".join([f"({memo[id(base)]})"] * int(expo.value)) + ")"
            else:
                rhs = f"np.power(np.asarray(({memo[id(base)]}), dtype=float), {memo[id(expo)]})"
        elif isinstance(node, Func):
            rhs = _FUNC_TEMPLATES[node.name].format(memo[id(node.arg)])
        elif isinstance(node, Ite):
            # direct operand comparison, NOT "(lhs - rhs) op 0": when both
            # operands overflow to the same infinity the subtraction is NaN
            # and every comparison against 0 is False (wrong branch)
            cond = (
                f"({memo[id(node.cond.lhs)]})"
                f" {_OP_STR[node.cond.op]} ({memo[id(node.cond.rhs)]})"
            )
            rhs = f"np.where({cond}, {memo[id(node.then)]}, {memo[id(node.orelse)]})"
        else:  # pragma: no cover - defensive
            raise TypeError(f"cannot compile {type(node).__name__}")
        lines.append(f"    {name} = {rhs}")
        memo[id(node)] = name

    result = memo[id(expr)]
    body = "\n".join(lines) if lines else "    pass"
    # broadcast the result to the inputs' common shape *without*
    # arithmetic: the old "+ 0.0*(x+y)" trick poisoned every output to
    # NaN whenever the inputs summed past the overflow boundary
    # (0.0 * inf), which is exactly the regime the hazard analysis
    # evaluates kernels in
    shapes = ["np.shape(_res)"] + [f"np.shape({n})" for n in names]
    source = (
        f"def _kernel({', '.join(names)}):\n"
        "  with np.errstate(all='ignore'):\n"
        f"{body}\n"
        f"    _res = np.asarray({result}, dtype=float)\n"
        f"    return np.broadcast_to(_res, np.broadcast_shapes({', '.join(shapes)})).copy()\n"
    )
    namespace = {"np": np, "_lambertw_real": _lambertw_real, "_erf": _erf}
    exec(compile(source, f"<repro-kernel-{id(expr)}>", "exec"), namespace)
    kernel = namespace["_kernel"]
    kernel.__source__ = source
    kernel.__arg_order__ = tuple(names)
    return kernel
