"""Human-readable (infix) rendering of expression DAGs."""

from __future__ import annotations

import math

from .nodes import Add, Const, Expr, Func, Ite, Mul, Pow, Var


def _fmt_const(value: float) -> str:
    # non-finite constants (constant folding can produce inf) have no
    # integer form; int(inf)/int(nan) would raise here
    if math.isfinite(value) and value == int(value) and abs(value) < 1e16:
        return str(int(value))
    return repr(value)


def to_str(expr: Expr, max_len: int | None = None) -> str:
    """Render ``expr`` as an infix string (memoised over the DAG)."""
    memo: dict[int, str] = {}

    for node in expr.walk():
        if isinstance(node, Const):
            text = _fmt_const(node.value)
            if node.value < 0:
                text = f"({text})"
        elif isinstance(node, Var):
            text = node.name
        elif isinstance(node, Add):
            text = "(" + " + ".join(memo[id(a)] for a in node.args) + ")"
        elif isinstance(node, Mul):
            text = "(" + "*".join(memo[id(a)] for a in node.args) + ")"
        elif isinstance(node, Pow):
            text = f"{memo[id(node.base)]}**{memo[id(node.exponent)]}"
        elif isinstance(node, Func):
            text = f"{node.name}({memo[id(node.arg)]})"
        elif isinstance(node, Ite):
            cond = f"{memo[id(node.cond.lhs)]} {node.cond.op} {memo[id(node.cond.rhs)]}"
            text = f"ite({cond}, {memo[id(node.then)]}, {memo[id(node.orelse)]})"
        else:  # pragma: no cover - defensive
            text = f"<{type(node).__name__}>"
        memo[id(node)] = text

    out = memo[id(expr)]
    if max_len is not None and len(out) > max_len:
        out = out[: max_len - 3] + "..."
    return out
