"""Symbolic expression IR: nodes, constructors, calculus, and evaluators.

This package is the term language shared by every other subsystem:

* :mod:`repro.expr.nodes` -- hash-consed DAG node types,
* :mod:`repro.expr.builder` -- canonicalising constructors,
* :mod:`repro.expr.derivative` -- symbolic differentiation,
* :mod:`repro.expr.substitute` -- capture-free substitution,
* :mod:`repro.expr.simplify` -- global simplification passes (factoring,
  exponential merging, box specialisation),
* :mod:`repro.expr.evaluator` -- scalar point evaluation,
* :mod:`repro.expr.codegen` -- vectorised NumPy compilation,
* :mod:`repro.expr.sympy_bridge` -- SymPy round-trip and cross-checks.
"""

from .nodes import (
    Add,
    Const,
    Expr,
    Func,
    Ite,
    Mul,
    Pow,
    Rel,
    Var,
    UNARY_FUNCTIONS,
    is_const,
    is_nonneg,
    is_positive,
)
from .builder import (
    abs_,
    add,
    as_expr,
    atan,
    cbrt,
    const,
    cos,
    div,
    erf,
    exp,
    ite,
    lambertw,
    log,
    maximum,
    minimum,
    mul,
    neg,
    pow_,
    sin,
    sqrt,
    sub,
    tanh,
    var,
)
from .derivative import derivative, gradient
from .substitute import replace_subexpr, substitute, substitute_rel
from .simplify import SimplifyStats, factor_sums, merge_exponentials, simplify, specialize
from .evaluator import EvalError, evaluate, evaluate_rel
from .codegen import compile_numpy
from .printer import to_str

__all__ = [
    "Add", "Const", "Expr", "Func", "Ite", "Mul", "Pow", "Rel", "Var",
    "UNARY_FUNCTIONS", "is_const", "is_nonneg", "is_positive",
    "abs_", "add", "as_expr", "atan", "cbrt", "const", "cos", "div", "erf",
    "exp", "ite", "lambertw", "log", "maximum", "minimum", "mul", "neg",
    "pow_", "sin", "sqrt", "sub", "tanh", "var",
    "derivative", "gradient", "replace_subexpr", "substitute", "substitute_rel",
    "SimplifyStats", "factor_sums", "merge_exponentials", "simplify", "specialize",
    "EvalError", "evaluate", "evaluate_rel", "compile_numpy", "to_str",
]
