"""Capture-free substitution over expression DAGs."""

from __future__ import annotations

from . import builder
from .nodes import Add, Const, Expr, Func, Ite, Mul, Pow, Rel, Var


def substitute(expr: Expr, mapping: dict[Var, Expr | float]) -> Expr:
    """Replace variables in ``expr`` according to ``mapping``.

    Values may be expressions or Python numbers.  The rebuild goes through
    the canonicalising constructors, so substituting constants also folds
    the expression (used by the encoder to realise the paper's
    ``F_c |_{rs=100}`` limit approximation).
    """
    subs: dict[int, Expr] = {
        id(k): builder.as_expr(v) for k, v in mapping.items()
    }
    memo: dict[int, Expr] = {}

    for node in expr.walk():
        replacement = subs.get(id(node))
        if replacement is not None:
            memo[id(node)] = replacement
            continue
        if isinstance(node, (Const, Var)):
            memo[id(node)] = node
        elif isinstance(node, Add):
            memo[id(node)] = builder.add(*[memo[id(a)] for a in node.args])
        elif isinstance(node, Mul):
            memo[id(node)] = builder.mul(*[memo[id(a)] for a in node.args])
        elif isinstance(node, Pow):
            memo[id(node)] = builder.pow_(
                memo[id(node.base)], memo[id(node.exponent)]
            )
        elif isinstance(node, Func):
            memo[id(node)] = getattr(builder, _CTOR[node.name])(memo[id(node.arg)])
        elif isinstance(node, Ite):
            cond = Rel.make(
                memo[id(node.cond.lhs)], memo[id(node.cond.rhs)], node.cond.op
            )
            memo[id(node)] = builder.ite(
                cond, memo[id(node.then)], memo[id(node.orelse)]
            )
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown node type {type(node).__name__}")

    return memo[id(expr)]


_CTOR = {
    "exp": "exp",
    "log": "log",
    "sqrt": "sqrt",
    "cbrt": "cbrt",
    "atan": "atan",
    "abs": "abs_",
    "lambertw": "lambertw",
    "sin": "sin",
    "cos": "cos",
    "tanh": "tanh",
    "erf": "erf",
}


def substitute_rel(rel: Rel, mapping: dict[Var, Expr | float]) -> Rel:
    """Substitute into both sides of a relational atom."""
    return Rel.make(
        substitute(rel.lhs, mapping), substitute(rel.rhs, mapping), rel.op
    )


def replace_subexpr(expr: Expr, target: Expr, replacement: Expr | float) -> Expr:
    """Replace every occurrence of the subexpression ``target``.

    Like :func:`substitute` but keyed on an arbitrary node rather than a
    variable.  Thanks to hash-consing, "occurrence" means object identity.
    Used by the numerical-issues analysis to isolate the branches of an
    :class:`~repro.expr.nodes.Ite` node: replacing the Ite with one of its
    branch bodies yields the expression "as if that branch were always
    taken".
    """
    repl = builder.as_expr(replacement)
    if expr is target:
        return repl
    memo: dict[int, Expr] = {id(target): repl}

    for node in expr.walk():
        if id(node) in memo:
            continue
        if isinstance(node, (Const, Var)):
            memo[id(node)] = node
        elif isinstance(node, Add):
            memo[id(node)] = builder.add(*[memo[id(a)] for a in node.args])
        elif isinstance(node, Mul):
            memo[id(node)] = builder.mul(*[memo[id(a)] for a in node.args])
        elif isinstance(node, Pow):
            memo[id(node)] = builder.pow_(
                memo[id(node.base)], memo[id(node.exponent)]
            )
        elif isinstance(node, Func):
            memo[id(node)] = getattr(builder, _CTOR[node.name])(memo[id(node.arg)])
        elif isinstance(node, Ite):
            cond = Rel.make(
                memo[id(node.cond.lhs)], memo[id(node.cond.rhs)], node.cond.op
            )
            memo[id(node)] = builder.ite(
                cond, memo[id(node.then)], memo[id(node.orelse)]
            )
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown node type {type(node).__name__}")

    return memo[id(expr)]
