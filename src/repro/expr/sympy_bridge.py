"""Round-trip translation between the expression IR and SymPy.

The paper uses SymPy to compute derivatives symbolically; we implement our
own derivative engine (:mod:`repro.expr.derivative`) but keep this bridge
both as a correctness cross-check (tests compare the two) and as an escape
hatch for users who want SymPy's richer simplification.
"""

from __future__ import annotations

import sympy as sp

from . import builder as b
from .nodes import Add, Const, Expr, Func, Ite, Mul, Pow, Rel, Var


def to_sympy(expr: Expr) -> sp.Expr:
    """Translate an IR expression into a SymPy expression."""
    memo: dict[int, sp.Expr] = {}
    for node in expr.walk():
        memo[id(node)] = _node_to_sympy(node, memo)
    return memo[id(expr)]


def _node_to_sympy(node: Expr, memo: dict[int, sp.Expr]) -> sp.Expr:
    if isinstance(node, Const):
        return sp.Float(node.value)
    if isinstance(node, Var):
        return sp.Symbol(node.name, real=True, nonnegative=node.nonneg or None)
    if isinstance(node, Add):
        return sp.Add(*[memo[id(a)] for a in node.args])
    if isinstance(node, Mul):
        return sp.Mul(*[memo[id(a)] for a in node.args])
    if isinstance(node, Pow):
        return sp.Pow(memo[id(node.base)], memo[id(node.exponent)])
    if isinstance(node, Func):
        arg = memo[id(node.arg)]
        table = {
            "exp": sp.exp,
            "log": sp.log,
            "sqrt": sp.sqrt,
            "cbrt": sp.cbrt,
            "atan": sp.atan,
            "abs": sp.Abs,
            "lambertw": sp.LambertW,
            "sin": sp.sin,
            "cos": sp.cos,
            "tanh": sp.tanh,
            "erf": sp.erf,
        }
        return table[node.name](arg)
    if isinstance(node, Ite):
        lhs = memo[id(node.cond.lhs)]
        rhs = memo[id(node.cond.rhs)]
        rel = {
            "<=": sp.Le,
            "<": sp.Lt,
            ">=": sp.Ge,
            ">": sp.Gt,
            "==": sp.Eq,
        }[node.cond.op](lhs, rhs)
        return sp.Piecewise((memo[id(node.then)], rel), (memo[id(node.orelse)], True))
    raise TypeError(f"cannot translate {type(node).__name__}")  # pragma: no cover


def from_sympy(expr: sp.Expr, nonneg_vars: frozenset[str] = frozenset()) -> Expr:
    """Translate a SymPy expression into the IR."""
    if expr.is_Number or isinstance(expr, sp.NumberSymbol):
        return b.const(float(expr))
    if isinstance(expr, sp.Symbol):
        return b.var(expr.name, nonneg=expr.name in nonneg_vars)
    if isinstance(expr, sp.Add):
        return b.add(*[from_sympy(a, nonneg_vars) for a in expr.args])
    if isinstance(expr, sp.Mul):
        return b.mul(*[from_sympy(a, nonneg_vars) for a in expr.args])
    if isinstance(expr, sp.Pow):
        return b.pow_(
            from_sympy(expr.base, nonneg_vars), from_sympy(expr.exp, nonneg_vars)
        )
    table = {
        sp.exp: b.exp,
        sp.log: b.log,
        sp.atan: b.atan,
        sp.Abs: b.abs_,
        sp.LambertW: b.lambertw,
        sp.sin: b.sin,
        sp.cos: b.cos,
        sp.tanh: b.tanh,
        sp.erf: b.erf,
    }
    for sym_fn, ctor in table.items():
        if isinstance(expr, sym_fn):
            return ctor(from_sympy(expr.args[0], nonneg_vars))
    if isinstance(expr, sp.Piecewise) and len(expr.args) == 2:
        (then, cond), (orelse, other) = expr.args
        if other is not sp.true:
            raise TypeError("only two-branch Piecewise with default is supported")
        rel_table = {sp.Le: "<=", sp.Lt: "<", sp.Ge: ">=", sp.Gt: ">", sp.Eq: "=="}
        for sym_rel, op in rel_table.items():
            if isinstance(cond, sym_rel):
                atom = Rel.make(
                    from_sympy(cond.lhs, nonneg_vars),
                    from_sympy(cond.rhs, nonneg_vars),
                    op,
                )
                return b.ite(
                    atom,
                    from_sympy(then, nonneg_vars),
                    from_sympy(orelse, nonneg_vars),
                )
    raise TypeError(f"cannot translate SymPy node {type(expr).__name__}")


def sympy_derivative(expr: Expr, wrt: Var, order: int = 1) -> Expr:
    """Differentiate via SymPy and translate back (cross-check path)."""
    sym = to_sympy(expr)
    dsym = sp.diff(sym, sp.Symbol(wrt.name, real=True, nonnegative=wrt.nonneg or None), order)
    nonneg = frozenset(v.name for v in expr.free_vars() if v.nonneg)
    return from_sympy(dsym, nonneg)
