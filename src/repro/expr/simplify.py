"""Global simplification passes over expression DAGs.

The canonicalising constructors (:mod:`repro.expr.builder`) apply *local*,
always-sound rewrites at build time.  This module adds the global passes
that need a view of whole subtrees:

* :func:`factor_sums` -- pull maximal common factors out of sums,
  ``a*b + a*c -> a*(b + c)``.  Besides shrinking the term, this is an
  interval-quality rewrite: the factored form evaluates each shared factor
  once, cutting the dependency-problem overestimation that makes HC4
  pruning weak (the same reason Horner form beats expanded polynomials).
* :func:`merge_exponentials` -- ``exp(a) * exp(b) -> exp(a + b)``; sums of
  exponents contract better than products of exponentials.
* :func:`specialize` -- narrow an expression to a :class:`~repro.solver.box.Box`:
  variables pinned to a point interval become constants, and
  :class:`~repro.expr.nodes.Ite` guards decidable from the box's interval
  enclosures are folded away, dropping unreachable branches.  On
  subdomains away from alpha = 1 this collapses SCAN's piecewise
  switching functions into a single analytic piece.
* :func:`simplify` -- fixpoint driver over the above.

Every pass is semantics-preserving on the functionals' input domains
(rs > 0, s >= 0, alpha >= 0); the property tests check equivalence by
random evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass

from . import builder as b
from .nodes import Add, Const, Expr, Func, Ite, Mul, Pow, Rel, Var

__all__ = [
    "factor_sums",
    "merge_exponentials",
    "specialize",
    "simplify",
    "SimplifyStats",
]


@dataclass(frozen=True)
class SimplifyStats:
    """Operation counts before/after a :func:`simplify` run."""

    ops_before: int
    ops_after: int
    rounds: int

    @property
    def reduction(self) -> float:
        if self.ops_before == 0:
            return 0.0
        return 1.0 - self.ops_after / self.ops_before


# ---------------------------------------------------------------------------
# generic bottom-up rebuild
# ---------------------------------------------------------------------------

def _rebuild(expr: Expr, rule) -> Expr:
    """Rebuild the DAG bottom-up, applying ``rule`` at every rebuilt node.

    ``rule(node) -> Expr`` receives a node whose children are already
    rebuilt and may return a replacement (or the node unchanged).
    """
    memo: dict[int, Expr] = {}
    for node in expr.walk():
        if isinstance(node, (Const, Var)):
            out = node
        elif isinstance(node, Add):
            out = b.add(*[memo[id(a)] for a in node.args])
        elif isinstance(node, Mul):
            out = b.mul(*[memo[id(a)] for a in node.args])
        elif isinstance(node, Pow):
            out = b.pow_(memo[id(node.base)], memo[id(node.exponent)])
        elif isinstance(node, Func):
            out = getattr(b, _CTOR[node.name])(memo[id(node.arg)])
        elif isinstance(node, Ite):
            cond = Rel.make(
                memo[id(node.cond.lhs)], memo[id(node.cond.rhs)], node.cond.op
            )
            out = b.ite(cond, memo[id(node.then)], memo[id(node.orelse)])
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown node type {type(node).__name__}")
        memo[id(node)] = rule(out)
    return memo[id(expr)]


_CTOR = {
    "exp": "exp",
    "log": "log",
    "sqrt": "sqrt",
    "cbrt": "cbrt",
    "atan": "atan",
    "abs": "abs_",
    "lambertw": "lambertw",
    "sin": "sin",
    "cos": "cos",
    "tanh": "tanh",
    "erf": "erf",
}


# ---------------------------------------------------------------------------
# pass: factor common terms out of sums
# ---------------------------------------------------------------------------

def _factor_map(term: Expr) -> tuple[float, dict[int, tuple[Expr, float]]]:
    """Decompose a term into (coefficient, {id(base): (base, const_exponent)}).

    Only constant exponents participate in factoring; a plain factor
    counts as exponent 1.
    """
    coeff = 1.0
    factors: dict[int, tuple[Expr, float]] = {}

    def put(base: Expr, expo: float) -> None:
        key = id(base)
        if key in factors:
            factors[key] = (base, factors[key][1] + expo)
        else:
            factors[key] = (base, expo)

    items = term.args if isinstance(term, Mul) else (term,)
    for f in items:
        if isinstance(f, Const):
            coeff *= f.value
        elif isinstance(f, Pow) and isinstance(f.exponent, Const):
            put(f.base, f.exponent.value)
        else:
            put(f, 1.0)
    return coeff, factors


def _factor_add(node: Add) -> Expr:
    terms = node.args
    decomposed = [_factor_map(t) for t in terms]
    # constant terms (empty factor map) block factoring
    if any(not factors for _, factors in decomposed):
        return node

    first = decomposed[0][1]
    common: dict[int, tuple[Expr, float]] = {}
    for key, (base, expo) in first.items():
        common[key] = (base, expo)
    for _, factors in decomposed[1:]:
        nxt: dict[int, tuple[Expr, float]] = {}
        for key, (base, expo) in common.items():
            if key in factors:
                other = factors[key][1]
                shared = min(expo, other)
                # keep only same-sign shared exponents > 0 in magnitude
                if shared > 0.0 or (expo < 0.0 and other < 0.0):
                    shared = min(expo, other) if expo > 0 else max(expo, other)
                    nxt[key] = (base, shared)
        common = nxt
        if not common:
            return node

    common_factors = [b.pow_(base, expo) for base, expo in common.values()]
    reduced_terms = []
    for (coeff, factors), term in zip(decomposed, terms):
        rest = [b.as_expr(coeff)] if coeff != 1.0 else []
        for key, (base, expo) in factors.items():
            remaining = expo - (common[key][1] if key in common else 0.0)
            if remaining != 0.0:
                rest.append(b.pow_(base, remaining))
        reduced_terms.append(b.mul(*rest) if rest else b.as_expr(1.0))
    out = b.mul(*common_factors, b.add(*reduced_terms))
    # factoring can *grow* the DAG (e.g. x + x**3 -> x * (1 + x**2) adds a
    # Mul without removing anything); keep the original in that case so
    # simplify() never increases the operation count
    if out.operation_count() >= node.operation_count():
        return node
    return out


def factor_sums(expr: Expr) -> Expr:
    """Pull maximal common factors out of every sum in the DAG."""

    def rule(node: Expr) -> Expr:
        if isinstance(node, Add):
            return _factor_add(node)
        return node

    return _rebuild(expr, rule)


# ---------------------------------------------------------------------------
# pass: merge exponentials in products
# ---------------------------------------------------------------------------

def _merge_mul_exp(node: Mul) -> Expr:
    exp_args = []
    rest = []
    for f in node.args:
        if isinstance(f, Func) and f.name == "exp":
            exp_args.append(f.arg)
        elif (
            isinstance(f, Pow)
            and isinstance(f.base, Func)
            and f.base.name == "exp"
        ):
            exp_args.append(b.mul(f.exponent, f.base.arg))
        else:
            rest.append(f)
    if len(exp_args) < 2:
        return node
    return b.mul(*rest, b.exp(b.add(*exp_args)))


def merge_exponentials(expr: Expr) -> Expr:
    """Rewrite ``exp(a) * exp(b)`` into ``exp(a + b)`` throughout."""

    def rule(node: Expr) -> Expr:
        if isinstance(node, Mul):
            return _merge_mul_exp(node)
        return node

    return _rebuild(expr, rule)


# ---------------------------------------------------------------------------
# pass: specialise to a box
# ---------------------------------------------------------------------------

def specialize(expr: Expr, box) -> Expr:
    """Narrow ``expr`` to ``box``: pin point variables, fold decided guards.

    Guards are decided with interval enclosures over the box (sound:
    a guard is only folded when its truth value is the same for *every*
    point of the box), so unreachable Ite branches -- and any hazards or
    complexity they carry -- disappear from the expression.
    """
    from ..solver.contractor import enclosure
    from ..solver.contractor import _decide_cond  # shared decision logic

    pins = {}
    for name in box.names:
        iv = box[name]
        if iv.lo == iv.hi:
            pins[name] = iv.lo

    def rule(node: Expr) -> Expr:
        if isinstance(node, Var) and node.name in pins:
            return b.as_expr(pins[node.name])
        if isinstance(node, Ite):
            gap = enclosure(b.sub(node.cond.lhs, node.cond.rhs), box)
            decided = _decide_cond(node.cond.op, gap)
            if decided is True:
                return node.then
            if decided is False:
                return node.orelse
        return node

    return _rebuild(expr, rule)


# ---------------------------------------------------------------------------
# fixpoint driver
# ---------------------------------------------------------------------------

def simplify(
    expr: Expr, box=None, max_rounds: int = 4
) -> tuple[Expr, SimplifyStats]:
    """Run all passes to a fixpoint (bounded by ``max_rounds``).

    Returns the simplified expression and the op-count statistics.  With a
    ``box``, :func:`specialize` runs first so later passes see the pruned
    expression.
    """
    before = expr.operation_count()
    current = expr
    rounds = 0
    for _ in range(max_rounds):
        rounds += 1
        nxt = current
        if box is not None:
            nxt = specialize(nxt, box)
        nxt = merge_exponentials(nxt)
        nxt = factor_sums(nxt)
        if nxt is current:
            break
        current = nxt
    return current, SimplifyStats(
        ops_before=before, ops_after=current.operation_count(), rounds=rounds
    )
