"""Scalar (point) evaluation of expression DAGs.

Used by the verifier's counterexample-validation step (``valid(x)`` in
Algorithm 1 of the paper): candidate models returned by the delta-complete
solver are plugged back into the *original* condition with ordinary
floating-point arithmetic.  It is also the engine behind ``Atom.holds_at``
probing, which runs once per box inside the ICP loop.

Because of that hot-path role, :func:`evaluate` executes a flat compiled
tape (:mod:`repro.solver.tape`) instead of re-walking the DAG; the original
tree-walking implementation is kept as :func:`evaluate_tree`, the
differential-testing oracle.  Both perform the identical sequence of float
operations, so they agree bit for bit.
"""

from __future__ import annotations

import math

from .nodes import Add, Const, Expr, Func, Ite, Mul, Pow, Rel, Var
from ..scipy_compat import special


class EvalError(ValueError):
    """Raised when a point lies outside an operation's domain."""


# ---------------------------------------------------------------------------
# scalar primitives (shared with the tape VM)
# ---------------------------------------------------------------------------

def _scalar_exp(x: float) -> float:
    if x > 709.0:
        raise OverflowError("exp overflow")
    return math.exp(x)


def _scalar_cbrt(x: float) -> float:
    return math.copysign(abs(x) ** (1.0 / 3.0), x)


def _scalar_lambertw(x: float) -> float:
    if x < -1.0 / math.e:
        raise EvalError("lambertw argument below branch point")
    return float(special("lambertw")(x).real)


#: scalar implementation of every unary IR function; the single source of
#: truth for point semantics, used by both execution strategies.
SCALAR_FUNCS = {
    "exp": _scalar_exp,
    "log": math.log,
    "sqrt": math.sqrt,
    "cbrt": _scalar_cbrt,
    "atan": math.atan,
    "abs": abs,
    "lambertw": _scalar_lambertw,
    "sin": math.sin,
    "cos": math.cos,
    "tanh": math.tanh,
    "erf": math.erf,
}


def _env_by_name(env: dict[Var | str, float]) -> dict[str, float]:
    by_name: dict[str, float] = {}
    for key, value in env.items():
        by_name[key.name if isinstance(key, Var) else key] = float(value)
    return by_name


def evaluate(expr: Expr, env: dict[Var | str, float], strict: bool = False) -> float:
    """Evaluate ``expr`` at the point ``env`` (vars may be keyed by name).

    With ``strict=False`` (default) domain errors yield NaN, matching the
    behaviour of grid-based checkers; with ``strict=True`` they raise
    :class:`EvalError`.
    """
    # deferred import: repro.solver.tape imports this module for the
    # scalar primitive table above
    from ..solver.tape import tape_for

    tape = tape_for(expr)
    try:
        return tape.eval_point(_env_by_name(env))
    except (ValueError, OverflowError, ZeroDivisionError) as exc:
        if strict:
            raise EvalError(str(exc)) from exc
        return math.nan


def evaluate_tree(expr: Expr, env: dict[Var | str, float], strict: bool = False) -> float:
    """Tree-walking reference implementation (differential-testing oracle)."""
    by_name = _env_by_name(env)
    memo: dict[int, float] = {}
    try:
        for node in expr.walk():
            memo[id(node)] = _eval_node(node, memo, by_name)
    except (ValueError, OverflowError, ZeroDivisionError) as exc:
        if strict:
            raise EvalError(str(exc)) from exc
        return math.nan
    return memo[id(expr)]


def evaluate_rel(rel: Rel, env: dict[Var | str, float], tol: float = 0.0) -> bool:
    """Evaluate a relational atom at a point (NaN counts as a violation)."""
    gap = evaluate(rel.lhs, env) - evaluate(rel.rhs, env)
    if math.isnan(gap):
        return False
    return rel.holds(gap, tol=tol)


def _eval_node(node: Expr, memo: dict[int, float], env: dict[str, float]) -> float:
    if isinstance(node, Const):
        return node.value
    if isinstance(node, Var):
        try:
            return env[node.name]
        except KeyError:
            raise EvalError(f"unbound variable {node.name!r}") from None
    if isinstance(node, Add):
        return math.fsum(memo[id(a)] for a in node.args)
    if isinstance(node, Mul):
        out = 1.0
        for a in node.args:
            out *= memo[id(a)]
        return out
    if isinstance(node, Pow):
        base = memo[id(node.base)]
        expo = memo[id(node.exponent)]
        if base < 0.0 and not float(expo).is_integer():
            raise EvalError(f"negative base {base} to fractional power {expo}")
        if base == 0.0 and expo < 0.0:
            raise EvalError("zero to a negative power")
        return math.pow(base, expo)
    if isinstance(node, Func):
        return _eval_func(node.name, memo[id(node.arg)])
    if isinstance(node, Ite):
        # direct operand comparison (not the rounded difference): identical
        # for finite operands, and still orders two same-sign infinities,
        # where the gap would be NaN -- mirrors the tape VM and the compiled
        # kernel (see repro.expr.codegen, "IEEE-kernel semantics")
        lhs, rhs = memo[id(node.cond.lhs)], memo[id(node.cond.rhs)]
        if math.isnan(lhs) or math.isnan(rhs):
            raise EvalError("NaN in ite condition")
        taken = node.then if node.cond.compare(lhs, rhs) else node.orelse
        return memo[id(taken)]
    raise TypeError(f"cannot evaluate {type(node).__name__}")  # pragma: no cover


def _eval_func(name: str, x: float) -> float:
    try:
        fn = SCALAR_FUNCS[name]
    except KeyError:  # pragma: no cover
        raise TypeError(f"cannot evaluate function {name}") from None
    return fn(x)
