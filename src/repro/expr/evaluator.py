"""Scalar (point) evaluation of expression DAGs.

Used by the verifier's counterexample-validation step (``valid(x)`` in
Algorithm 1 of the paper): candidate models returned by the delta-complete
solver are plugged back into the *original* condition with ordinary
floating-point arithmetic.
"""

from __future__ import annotations

import math

from .nodes import Add, Const, Expr, Func, Ite, Mul, Pow, Rel, Var


class EvalError(ValueError):
    """Raised when a point lies outside an operation's domain."""


def evaluate(expr: Expr, env: dict[Var | str, float], strict: bool = False) -> float:
    """Evaluate ``expr`` at the point ``env`` (vars may be keyed by name).

    With ``strict=False`` (default) domain errors yield NaN, matching the
    behaviour of grid-based checkers; with ``strict=True`` they raise
    :class:`EvalError`.
    """
    by_name: dict[str, float] = {}
    for key, value in env.items():
        by_name[key.name if isinstance(key, Var) else key] = float(value)

    memo: dict[int, float] = {}
    try:
        for node in expr.walk():
            memo[id(node)] = _eval_node(node, memo, by_name)
    except (ValueError, OverflowError, ZeroDivisionError) as exc:
        if strict:
            raise EvalError(str(exc)) from exc
        return math.nan
    return memo[id(expr)]


def evaluate_rel(rel: Rel, env: dict[Var | str, float], tol: float = 0.0) -> bool:
    """Evaluate a relational atom at a point (NaN counts as a violation)."""
    gap = evaluate(rel.lhs, env) - evaluate(rel.rhs, env)
    if math.isnan(gap):
        return False
    return rel.holds(gap, tol=tol)


def _eval_node(node: Expr, memo: dict[int, float], env: dict[str, float]) -> float:
    if isinstance(node, Const):
        return node.value
    if isinstance(node, Var):
        try:
            return env[node.name]
        except KeyError:
            raise EvalError(f"unbound variable {node.name!r}") from None
    if isinstance(node, Add):
        return math.fsum(memo[id(a)] for a in node.args)
    if isinstance(node, Mul):
        out = 1.0
        for a in node.args:
            out *= memo[id(a)]
        return out
    if isinstance(node, Pow):
        base = memo[id(node.base)]
        expo = memo[id(node.exponent)]
        if base < 0.0 and not float(expo).is_integer():
            raise EvalError(f"negative base {base} to fractional power {expo}")
        if base == 0.0 and expo < 0.0:
            raise EvalError("zero to a negative power")
        return math.pow(base, expo)
    if isinstance(node, Func):
        return _eval_func(node.name, memo[id(node.arg)])
    if isinstance(node, Ite):
        gap = memo[id(node.cond.lhs)] - memo[id(node.cond.rhs)]
        if math.isnan(gap):
            raise EvalError("NaN in ite condition")
        taken = node.then if node.cond.holds(gap) else node.orelse
        return memo[id(taken)]
    raise TypeError(f"cannot evaluate {type(node).__name__}")  # pragma: no cover


def _eval_func(name: str, x: float) -> float:
    if name == "exp":
        if x > 709.0:
            raise OverflowError("exp overflow")
        return math.exp(x)
    if name == "log":
        return math.log(x)
    if name == "sqrt":
        return math.sqrt(x)
    if name == "cbrt":
        return math.copysign(abs(x) ** (1.0 / 3.0), x)
    if name == "atan":
        return math.atan(x)
    if name == "abs":
        return abs(x)
    if name == "lambertw":
        from scipy.special import lambertw as _lw
        if x < -1.0 / math.e:
            raise EvalError("lambertw argument below branch point")
        return float(_lw(x).real)
    if name == "sin":
        return math.sin(x)
    if name == "cos":
        return math.cos(x)
    if name == "tanh":
        return math.tanh(x)
    if name == "erf":
        return math.erf(x)
    raise TypeError(f"cannot evaluate function {name}")  # pragma: no cover
