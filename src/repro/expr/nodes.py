"""Hash-consed symbolic expression IR.

This module is the foundation of the XCVerifier reproduction: density
functional approximations (DFAs), exact-condition predicates, and solver
formulas are all represented as immutable, interned expression DAGs built
from the node kinds defined here.

The IR intentionally mirrors the term language of the dReal solver used in
the paper: real constants and variables, arithmetic (+, *, pow), and the
transcendental functions that appear in LibXC functionals (exp, log, sqrt,
atan, Lambert W, ...), plus an if-then-else node used to encode piecewise
functional forms such as SCAN's alpha-interpolation.

Nodes are *hash-consed*: structurally identical subexpressions are
represented by the same Python object.  This makes the representation a DAG
rather than a tree, which is what keeps symbolic derivatives of the larger
functionals tractable and lets the evaluators/contractors memoise per node.
"""

from __future__ import annotations

import math
from typing import Iterator


class Expr:
    """Base class for all expression nodes.

    Instances are immutable and interned; identity (``is``) coincides with
    structural equality, so ``__eq__`` can return operator-overloaded
    relational *atoms* without breaking hashing (we keep default identity
    hash/eq and expose :meth:`same` for structural equality).
    """

    __slots__ = ("_key", "_depth", "_size")

    # -- interning ---------------------------------------------------------
    _intern_table: dict[tuple, "Expr"] = {}

    @classmethod
    def _intern(cls, key: tuple, factory) -> "Expr":
        table = Expr._intern_table
        node = table.get(key)
        if node is None:
            node = factory()
            node._key = key
            node._depth = 1 + max((c._depth for c in node.children()), default=0)
            node._size = 1 + sum(c._size for c in node.children())
            table[key] = node
        return node

    @classmethod
    def clear_cache(cls) -> None:
        """Drop the intern table (used by tests to bound memory)."""
        Expr._intern_table.clear()

    # -- structural queries -------------------------------------------------
    def children(self) -> tuple["Expr", ...]:
        return ()

    def same(self, other: "Expr") -> bool:
        """Structural equality (identical object thanks to interning)."""
        return self is other

    @property
    def depth(self) -> int:
        """Height of the expression DAG."""
        return self._depth

    @property
    def size(self) -> int:
        """Number of nodes counted with multiplicity (tree size)."""
        return self._size

    def dag_size(self) -> int:
        """Number of *unique* nodes in the DAG."""
        seen: set[int] = set()
        stack: list[Expr] = [self]
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.extend(node.children())
        return len(seen)

    def operation_count(self) -> int:
        """Count of non-leaf operations (paper reports DFA complexity this way)."""
        count = 0
        for node in self.walk():
            if not isinstance(node, (Const, Var)):
                count += 1
        return count

    def walk(self) -> Iterator["Expr"]:
        """Iterate over unique nodes in topological order (children first)."""
        # Iterative postorder over a DAG: state 0 = unvisited, 1 = expanded
        # (children scheduled), 2 = emitted.
        state: dict[int, int] = {}
        order: list[Expr] = []
        stack: list[Expr] = [self]
        while stack:
            node = stack[-1]
            st = state.get(id(node), 0)
            if st == 0:
                state[id(node)] = 1
                for child in node.children():
                    if state.get(id(child), 0) != 2:
                        stack.append(child)
            else:
                stack.pop()
                if st == 1:
                    state[id(node)] = 2
                    order.append(node)
        return iter(order)

    def free_vars(self) -> frozenset["Var"]:
        out = set()
        for node in self.walk():
            if isinstance(node, Var):
                out.add(node)
        return frozenset(out)

    def contains(self, sub: "Expr") -> bool:
        return any(node is sub for node in self.walk())

    # -- operator overloading ------------------------------------------------
    def __add__(self, other):
        from .builder import add
        return add(self, other)

    __radd__ = __add__

    def __sub__(self, other):
        from .builder import sub
        return sub(self, other)

    def __rsub__(self, other):
        from .builder import sub
        return sub(other, self)

    def __mul__(self, other):
        from .builder import mul
        return mul(self, other)

    __rmul__ = __mul__

    def __truediv__(self, other):
        from .builder import div
        return div(self, other)

    def __rtruediv__(self, other):
        from .builder import div
        return div(other, self)

    def __pow__(self, other):
        from .builder import pow_
        return pow_(self, other)

    def __rpow__(self, other):
        from .builder import pow_
        return pow_(other, self)

    def __neg__(self):
        from .builder import neg
        return neg(self)

    def __pos__(self):
        return self

    # relational operators build Rel atoms (see constraint module)
    def le(self, other) -> "Rel":
        return Rel.make(self, other, "<=")

    def lt(self, other) -> "Rel":
        return Rel.make(self, other, "<")

    def ge(self, other) -> "Rel":
        return Rel.make(self, other, ">=")

    def gt(self, other) -> "Rel":
        return Rel.make(self, other, ">")

    def eq(self, other) -> "Rel":
        return Rel.make(self, other, "==")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        from .printer import to_str
        return to_str(self)


class Const(Expr):
    """A real constant (stored as a Python float)."""

    __slots__ = ("value",)

    def __new__(cls, value: float):
        value = float(value)
        if value == 0.0:
            # normalise -0.0 to +0.0 so interning is canonical
            value = 0.0

        def factory():
            node = object.__new__(cls)
            node.value = value
            return node

        return Expr._intern(("const", value), factory)

    def is_integer(self) -> bool:
        return float(self.value).is_integer() and abs(self.value) < 2**53


class Var(Expr):
    """A named real variable, optionally tagged non-negative.

    The ``nonneg`` tag records a physical domain fact (e.g. the reduced
    gradient s >= 0 and Wigner-Seitz radius rs > 0) used by the simplifier
    to justify power-law rewrites that are unsound on all of R.
    """

    __slots__ = ("name", "nonneg")

    def __new__(cls, name: str, nonneg: bool = False):
        def factory():
            node = object.__new__(cls)
            node.name = name
            node.nonneg = nonneg
            return node

        return Expr._intern(("var", name, nonneg), factory)


class Add(Expr):
    """N-ary sum.  Built only through :func:`repro.expr.builder.add`."""

    __slots__ = ("args",)

    def __new__(cls, args: tuple[Expr, ...]):
        args = tuple(args)

        def factory():
            node = object.__new__(cls)
            node.args = args
            return node

        return Expr._intern(("add",) + tuple(id(a) for a in args), factory)

    def children(self):
        return self.args


class Mul(Expr):
    """N-ary product.  Built only through :func:`repro.expr.builder.mul`."""

    __slots__ = ("args",)

    def __new__(cls, args: tuple[Expr, ...]):
        args = tuple(args)

        def factory():
            node = object.__new__(cls)
            node.args = args
            return node

        return Expr._intern(("mul",) + tuple(id(a) for a in args), factory)

    def children(self):
        return self.args


class Pow(Expr):
    """``base ** exponent`` with an arbitrary expression exponent."""

    __slots__ = ("base", "exponent")

    def __new__(cls, base: Expr, exponent: Expr):
        def factory():
            node = object.__new__(cls)
            node.base = base
            node.exponent = exponent
            return node

        return Expr._intern(("pow", id(base), id(exponent)), factory)

    def children(self):
        return (self.base, self.exponent)


#: unary function names supported by the IR.  Every name here must have a
#: derivative rule, an interval extension, a scalar evaluation, a NumPy
#: code-generation template and a SymPy translation.
UNARY_FUNCTIONS = (
    "exp",
    "log",
    "sqrt",
    "cbrt",
    "atan",
    "abs",
    "lambertw",
    "sin",
    "cos",
    "tanh",
    "erf",
)


class Func(Expr):
    """Application of a built-in unary function."""

    __slots__ = ("name", "arg")

    def __new__(cls, name: str, arg: Expr):
        if name not in UNARY_FUNCTIONS:
            raise ValueError(f"unknown function {name!r}")

        def factory():
            node = object.__new__(cls)
            node.name = name
            node.arg = arg
            return node

        return Expr._intern(("func", name, id(arg)), factory)

    def children(self):
        return (self.arg,)


class Rel:
    """A relational atom ``lhs <op> rhs`` with op in {<=, <, >=, >, ==}.

    Atoms are the leaves of solver formulas *and* the conditions of
    :class:`Ite` nodes.  They are normalised to ``expr <op> 0`` form by the
    constraint layer; here we keep both sides for readability.
    """

    __slots__ = ("lhs", "rhs", "op")

    OPS = ("<=", "<", ">=", ">", "==")

    _intern_table: dict[tuple, "Rel"] = {}

    def __init__(self, lhs: Expr, rhs: Expr, op: str):
        self.lhs = lhs
        self.rhs = rhs
        self.op = op

    @classmethod
    def make(cls, lhs, rhs, op: str) -> "Rel":
        from .builder import as_expr
        lhs = as_expr(lhs)
        rhs = as_expr(rhs)
        if op not in cls.OPS:
            raise ValueError(f"unknown relational operator {op!r}")
        key = (id(lhs), id(rhs), op)
        atom = cls._intern_table.get(key)
        if atom is None:
            atom = cls(lhs, rhs, op)
            cls._intern_table[key] = atom
        return atom

    def negate(self) -> "Rel":
        flip = {"<=": ">", "<": ">=", ">=": "<", ">": "<=", "==": "=="}
        if self.op == "==":
            raise ValueError("cannot negate an equality atom into a single atom")
        return Rel.make(self.lhs, self.rhs, flip[self.op])

    def gap(self) -> Expr:
        """Return ``lhs - rhs`` (the residual whose sign decides the atom)."""
        from .builder import sub
        return sub(self.lhs, self.rhs)

    def holds(self, value: float, tol: float = 0.0) -> bool:
        """Check the atom given the numeric value of ``lhs - rhs``.

        ``tol`` implements delta-weakening: the atom is accepted if it holds
        after relaxing the threshold by ``tol``.
        """
        if self.op == "<=":
            return value <= tol
        if self.op == "<":
            return value < tol
        if self.op == ">=":
            return value >= -tol
        if self.op == ">":
            return value > -tol
        return abs(value) <= tol

    def compare(self, lhs: float, rhs: float) -> bool:
        """Check the atom by direct comparison of the operand values.

        Agrees with ``holds(lhs - rhs)`` at ``tol=0`` for finite operands,
        and unlike the rounded difference stays correct when both operands
        are the same infinity (``inf - inf`` is NaN and fails every
        comparison).  This is how Ite guards are decided everywhere
        (tree/tape scalar evaluators and the compiled NumPy kernel).
        """
        if self.op == "<=":
            return lhs <= rhs
        if self.op == "<":
            return lhs < rhs
        if self.op == ">=":
            return lhs >= rhs
        if self.op == ">":
            return lhs > rhs
        return lhs == rhs

    def __repr__(self) -> str:  # pragma: no cover
        from .printer import to_str
        return f"({to_str(self.lhs)} {self.op} {to_str(self.rhs)})"


class Ite(Expr):
    """If-then-else on a relational condition.

    Used by the symbolic-execution front end to encode Python ``if``
    statements in functional model code (e.g. SCAN's piecewise switching
    function f(alpha)); handled natively by the interval contractors.
    """

    __slots__ = ("cond", "then", "orelse")

    def __new__(cls, cond: Rel, then: Expr, orelse: Expr):
        def factory():
            node = object.__new__(cls)
            node.cond = cond
            node.then = then
            node.orelse = orelse
            return node

        return Expr._intern(
            ("ite", id(cond.lhs), id(cond.rhs), cond.op, id(then), id(orelse)),
            factory,
        )

    def children(self):
        # the condition's operands participate in the DAG as well
        return (self.cond.lhs, self.cond.rhs, self.then, self.orelse)


# -- convenience singletons --------------------------------------------------

ZERO = Const(0.0)
ONE = Const(1.0)
TWO = Const(2.0)
HALF = Const(0.5)
NEG_ONE = Const(-1.0)
PI = Const(math.pi)


def is_const(node: Expr, value: float | None = None) -> bool:
    if not isinstance(node, Const):
        return False
    return value is None or node.value == value


def is_nonneg(node: Expr) -> bool:
    """Structural non-negativity check used to justify pow rewrites.

    Sound but incomplete: returns True only when non-negativity follows
    syntactically (nonneg vars, abs/exp/sqrt images, even powers, products
    and sums of non-negative factors/terms).
    """
    if isinstance(node, Const):
        return node.value >= 0.0
    if isinstance(node, Var):
        return node.nonneg
    if isinstance(node, Func):
        return node.name in ("exp", "sqrt", "abs") or (
            node.name == "cbrt" and is_nonneg(node.arg)
        )
    if isinstance(node, Add):
        return all(is_nonneg(a) for a in node.args)
    if isinstance(node, Mul):
        # all factors nonneg, or an even count of known-nonpositive... keep simple
        return all(is_nonneg(a) for a in node.args)
    if isinstance(node, Pow):
        if is_nonneg(node.base):
            return True
        if isinstance(node.exponent, Const) and node.exponent.is_integer():
            return int(node.exponent.value) % 2 == 0
        return False
    return False


def is_positive(node: Expr) -> bool:
    """Structural strict-positivity check (sound, incomplete)."""
    if isinstance(node, Const):
        return node.value > 0.0
    if isinstance(node, Func):
        return node.name == "exp"
    if isinstance(node, Add):
        return all(is_nonneg(a) for a in node.args) and any(
            is_positive(a) for a in node.args
        )
    if isinstance(node, Mul):
        return all(is_positive(a) for a in node.args)
    if isinstance(node, Pow):
        return is_positive(node.base)
    return False
