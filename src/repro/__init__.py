"""XCVerifier reproduction: verifying DFT exact conditions for DFA implementations.

Reproduction of "Towards Verifying Exact Conditions for Implementations of
Density Functional Approximations" (Helal, Tao, Rubio-Gonzalez, Gygi,
Thakur; SC-W 2024 / arXiv:2408.05316), built from scratch in Python:

* :mod:`repro.expr`        -- symbolic expression IR (terms, derivatives,
  NumPy compilation, SymPy bridge),
* :mod:`repro.pysym`       -- symbolic execution of Python DFA model code
  (XCEncoder front end),
* :mod:`repro.solver`      -- delta-complete interval branch-and-prune
  solver (dReal substitute),
* :mod:`repro.functionals` -- PBE, SCAN, LYP, AM05, VWN RPA and LDA
  substrates (LibXC substitute),
* :mod:`repro.conditions`  -- the seven exact conditions in local form,
* :mod:`repro.verifier`    -- XCEncoder + Algorithm 1 driver + region maps,
* :mod:`repro.pb`          -- the Pederson-Burke grid-search baseline,
* :mod:`repro.analysis`    -- Table I / Table II harnesses,
* :mod:`repro.numerics`    -- Section VI-C numerical-issues analyses
  (branch continuity, domain safety, sensitivity),
* :mod:`repro.cli`         -- the ``python -m repro`` command line.

Quickstart::

    from repro import verify_pair, get_functional, get_condition
    report = verify_pair(get_functional("LYP"), get_condition("EC1"))
    print(report.summary())
"""

from .conditions import PAPER_CONDITIONS, get_condition
from .functionals import get_functional, paper_functionals
from .verifier import Verifier, VerifierConfig, ascii_map, encode, verify_pair
from .pb import PBChecker, GridSpec
from .analysis import run_table_one, run_table_two

__version__ = "1.0.0"

__all__ = [
    "PAPER_CONDITIONS", "get_condition", "get_functional",
    "paper_functionals", "Verifier", "VerifierConfig", "ascii_map",
    "encode", "verify_pair", "PBChecker", "GridSpec", "run_table_one",
    "run_table_two", "__version__",
]
