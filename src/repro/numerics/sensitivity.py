"""Input-sensitivity (condition number) analysis of enhancement factors.

Section VI-C of the paper: "the functional form of a DFA may also make it
sensitive to inaccuracies in its input data ... the sensitivity of the
SCAN functional requires the use of extremely fine grids to represent the
electron density in order to avoid large numerical errors".

We quantify that sensitivity with the relative condition number

    kappa_v(f; x) = | v * (df/dv)(x) / f(x) |,

the factor by which a relative error in input ``v`` is amplified into a
relative error of ``f``.  The derivative is computed *symbolically* (same
machinery the encoder uses for the exact conditions) and compiled to a
NumPy kernel, so kappa maps over the full PB input box cost one vectorised
evaluation instead of finite-difference noise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..expr import builder as b
from ..expr.codegen import compile_numpy
from ..expr.derivative import derivative
from ..expr.nodes import Expr, Var
from ..functionals.base import Functional

__all__ = ["condition_number", "SensitivityMap", "sensitivity_map"]


def condition_number(expr: Expr, var: Var) -> Expr:
    """The relative condition number kappa = |var * d expr/d var / expr|."""
    return b.abs_(b.div(b.mul(var, derivative(expr, var)), expr))


@dataclass
class SensitivityMap:
    """Gridded condition numbers of one component of one functional.

    ``kappa[name]`` holds kappa with respect to input ``name`` on the
    tensor grid spanned by ``axes`` (meshgrid ``ij`` indexing).  NaN cells
    mark points where f itself vanishes (kappa is undefined there).
    """

    functional_name: str
    component: str
    axes: dict[str, np.ndarray]
    kappa: dict[str, np.ndarray]

    def max_kappa(self, var: str) -> float:
        grid = self.kappa[var]
        finite = grid[np.isfinite(grid)]
        return float(finite.max()) if finite.size else float("nan")

    def argmax(self, var: str) -> dict[str, float]:
        """Grid point where kappa w.r.t. ``var`` peaks."""
        grid = np.where(np.isfinite(self.kappa[var]), self.kappa[var], -np.inf)
        flat = int(np.argmax(grid))
        idx = np.unravel_index(flat, grid.shape)
        names = sorted(self.axes)
        return {name: float(self.axes[name][i]) for name, i in zip(names, idx)}

    def quantile(self, var: str, q: float) -> float:
        grid = self.kappa[var]
        finite = grid[np.isfinite(grid)]
        return float(np.quantile(finite, q)) if finite.size else float("nan")

    def stats(self, var: str) -> dict[str, float]:
        """``max``/``median``/``q99`` of the finite kappa cells, one pass.

        Bit-identical to calling :meth:`max_kappa` and :meth:`quantile`
        separately -- this is the campaign payload's summary, filtered
        once instead of three times per variable.
        """
        grid = self.kappa[var]
        finite = grid[np.isfinite(grid)]
        if not finite.size:
            nan = float("nan")
            return {"max": nan, "median": nan, "q99": nan}
        return {
            "max": float(finite.max()),
            "median": float(np.quantile(finite, 0.5)),
            "q99": float(np.quantile(finite, 0.99)),
        }

    def summary(self) -> str:
        parts = []
        for var in sorted(self.kappa):
            parts.append(
                f"kappa_{var}: max={self.max_kappa(var):.3g} "
                f"median={self.quantile(var, 0.5):.3g}"
            )
        return f"{self.functional_name}.{self.component}: " + "; ".join(parts)


def sensitivity_map(
    functional: Functional,
    component: str = "fc",
    per_dim: int = 65,
    domain=None,
) -> SensitivityMap:
    """Map the condition numbers of a functional component over its domain.

    ``component`` is ``"fc"``, ``"fx"`` or ``"fxc"``.  The grid covers the
    functional's PB box with ``per_dim`` points per input (the rs axis is
    log-spaced: the box spans four decades and the interesting sensitivity
    sits at its low-density end).
    """
    expr = getattr(functional, component)()
    domain = domain or functional.domain()
    variables = functional.variables

    axes: dict[str, np.ndarray] = {}
    for var in variables:
        iv = domain[var.name]
        if var.name == "rs":
            axes[var.name] = np.geomspace(max(iv.lo, 1e-8), iv.hi, per_dim)
        else:
            axes[var.name] = np.linspace(iv.lo, iv.hi, per_dim)

    names = sorted(axes)
    mesh = np.meshgrid(*[axes[n] for n in names], indexing="ij")
    env = dict(zip(names, mesh))
    arg_arrays = [env[v.name] for v in variables]

    kappa: dict[str, np.ndarray] = {}
    for var in variables:
        kernel = compile_numpy(condition_number(expr, var), arg_order=variables)
        with np.errstate(all="ignore"):
            grid = kernel(*arg_arrays)
        kappa[var.name] = np.asarray(grid, dtype=float)

    return SensitivityMap(
        functional_name=functional.name,
        component=component,
        axes=axes,
        kappa=kappa,
    )
