"""Campaign-scale Section VI-C numerics sweep.

The continuity, hazard and sensitivity analyses of this package started as
one-shot CLI calls on a single (functional, component) pair.  The paper's
Section VI-C, however, attributes *systemic* DFT failures to these exact
evaluation hazards, and the ROADMAP's north star asks the analysis layer
to sweep "as many scenarios as you can imagine" -- every registered
functional, every component, both reachability semantics, under finite
budgets, without losing work to a crash.

This module promotes the analyses to a first-class campaign workload on
the exact machinery PR 3 built for the verifier:

* one **analysis cell** = (functional x component x check x semantics) --
  ``continuity``, ``hazards`` under both ``branch_aware`` semantics
  (scalar-evaluator reachability vs the compiled kernel's ``np.where``
  both-branches semantics), and ``sensitivity`` condition-number maps;
* cells are scheduled over the **same shared work-pulling pool**
  (:func:`repro.verifier.campaign.drive_chunks`) the verification
  campaign uses -- an ``executor`` can literally be shared between a
  Table I run and a numerics sweep -- and hazard-formula solves inside
  each cell run through the PR 2 batched tape backend
  (``NumericsConfig.solver_backend``, a pure perf knob);
* completed cells persist immediately to the **same content-hash-keyed
  store** (:mod:`repro.verifier.store`, generalised from verify-cells to
  arbitrary payload kinds), keyed by the compiled expression tape
  bit-for-bit + domain + the check's semantic parameters, so ``--resume``
  is sound: any change to a functional's model code, the lifter, the
  simplifier or an analysis parameter misses cleanly while perf knobs
  keep hitting;
* results are JSON-safe payload dicts built by pure functions of the
  underlying reports, so the campaign output is **bit-identical to the
  sequential per-pair path** regardless of worker count or completion
  order (pinned by the differential corpus in
  ``tests/numerics/test_campaign.py``), and a SIGINT returns a partial
  result whose completed cells are already durable.

``repro numerics --all`` drives this end to end and renders the
aggregation as Table III (:func:`repro.analysis.tables.table_three_from_cells`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Iterable

from ..functionals.base import Functional
from ..functionals.registry import all_functionals, get_functional
from ..obs.metrics import REGISTRY
from ..obs.trace import SpanRecorder, current_tracer
from ..solver.icp import Budget, ICPSolver
from ..solver.interval import KERNEL_SEMANTICS_VERSION
from ..solver.tape import stable_digest, tape_for
from ..verifier.campaign import CampaignConfig, drive_chunks, effective_workers
from ..verifier.store import SCHEMA_VERSION, CampaignStore, open_store
from .continuity import ContinuityReport, check_continuity
from .hazards import HazardReport, check_hazards
from .sensitivity import SensitivityMap, sensitivity_map

__all__ = [
    "CHECKS",
    "COMPONENTS",
    "NumericsCampaignResult",
    "NumericsConfig",
    "cell_condition_id",
    "cell_content_key",
    "component_applies",
    "continuity_payload",
    "hazards_payload",
    "numerics_cells",
    "run_numerics_campaign",
    "run_numerics_cell",
    "sensitivity_payload",
]

#: the analysis kinds of Section VI-C, in canonical order
CHECKS = ("continuity", "hazards", "sensitivity")

#: analysable enhancement factors
COMPONENTS = ("fc", "fx", "fxc")

#: semantics tags: hazards run under both; the other checks are
#: semantics-free and carry the placeholder tag
SEM_BRANCH = "branch"
SEM_IEEE = "ieee"
SEM_NONE = "-"

#: a cell address: (functional_name, component, check, semantics)
CellKey = tuple[str, str, str, str]


@dataclass(frozen=True)
class NumericsConfig:
    """Semantic and performance knobs of a numerics campaign.

    The semantic fields feed the content-hash key of every cell (scoped
    per check: changing the continuity seed must not invalidate stored
    hazard cells).  ``solver_backend``/``batch_size`` are the PR 2
    bit-identical execution strategies and are excluded, exactly like
    :meth:`repro.verifier.verifier.VerifierConfig.semantic_key` excludes
    them.
    """

    # continuity
    n_base_points: int = 16
    bisection_steps: int = 80
    seed: int = 0
    # hazards
    delta: float = 1e-9
    hazard_budget: int = 5_000
    # sensitivity (grid resolution per input axis, by family arity)
    per_dim: int = 65
    per_dim_mgga: int = 33
    # perf knobs (bit-identical; not part of any semantic key)
    solver_backend: str = "batch"
    batch_size: int = 256

    def __post_init__(self):
        # reject nonsense at construction (the CampaignConfig pattern)
        if self.n_base_points < 2:
            raise ValueError(
                f"n_base_points must be >= 2, got {self.n_base_points}"
            )
        if self.bisection_steps < 1:
            raise ValueError(
                f"bisection_steps must be >= 1, got {self.bisection_steps}"
            )
        if self.seed < 0:
            raise ValueError(f"seed must be >= 0, got {self.seed}")
        if not self.delta > 0.0:
            raise ValueError(f"delta must be > 0, got {self.delta}")
        if self.hazard_budget < 1:
            raise ValueError(
                f"hazard_budget must be >= 1, got {self.hazard_budget}"
            )
        if self.per_dim < 2 or self.per_dim_mgga < 2:
            raise ValueError(
                f"per_dim/per_dim_mgga must be >= 2, got "
                f"{self.per_dim}/{self.per_dim_mgga}"
            )
        if self.solver_backend not in ("batch", "tape", "walk"):
            raise ValueError(
                f"solver_backend must be 'batch', 'tape' or 'walk', "
                f"got {self.solver_backend!r}"
            )
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")

    def semantic_key(self, check: str) -> tuple:
        if check == "continuity":
            return (self.n_base_points, self.bisection_steps, self.seed)
        if check == "hazards":
            return (self.delta, self.hazard_budget)
        if check == "sensitivity":
            return (self.per_dim, self.per_dim_mgga)
        raise ValueError(f"unknown check {check!r}")

    def make_hazard_solver(self) -> ICPSolver:
        return ICPSolver(
            delta=self.delta,
            precision=min(1e-4, self.delta * 100),
            backend=self.solver_backend,
            batch_size=self.batch_size,
        )


def component_applies(functional: Functional, component: str) -> bool:
    """Whether ``functional`` has the pieces ``component`` is built from."""
    if component == "fc":
        return functional.has_correlation
    if component == "fx":
        return functional.has_exchange
    if component == "fxc":
        return functional.has_exchange and functional.has_correlation
    raise ValueError(f"unknown component {component!r}")


def numerics_cells(
    functionals: Iterable[Functional],
    components: Iterable[str] = ("fc",),
    checks: Iterable[str] = CHECKS,
) -> list[CellKey]:
    """Enumerate the campaign's cells, in deterministic order.

    ``hazards`` expands to two cells, one per reachability semantics;
    components a functional lacks (e.g. ``fx`` of the correlation-only
    LYP) are skipped.
    """
    checks = tuple(checks)
    components = tuple(components)
    unknown = set(checks) - set(CHECKS)
    if unknown:
        raise ValueError(f"unknown checks: {sorted(unknown)}")
    unknown = set(components) - set(COMPONENTS)
    if unknown:
        raise ValueError(f"unknown components: {sorted(unknown)}")
    cells: list[CellKey] = []
    for functional in functionals:
        for component in components:
            if not component_applies(functional, component):
                continue
            for check in CHECKS:  # canonical order, not caller order
                if check not in checks:
                    continue
                if check == "hazards":
                    cells.append((functional.name, component, check, SEM_BRANCH))
                    cells.append((functional.name, component, check, SEM_IEEE))
                else:
                    cells.append((functional.name, component, check, SEM_NONE))
    return cells


def cell_content_key(
    functional: Functional,
    component: str,
    check: str,
    semantics: str,
    config: NumericsConfig,
) -> str:
    """Content-hash key of one analysis cell.

    Covers the compiled expression tape bit-for-bit (so any change to the
    functional's model code, the lifter, the simplifier or the tape
    compiler misses cleanly), the input domain, the cell address and the
    check's semantic parameters.  Like the verifier store keys, a hit
    therefore always implies a bit-identical payload -- and even a hit
    pays the lift + tape-compile that soundness of the content addressing
    is bought with.
    """
    expr = getattr(functional, component)()
    bounds = [(name, iv.lo, iv.hi) for name, iv in functional.domain().items()]
    return stable_digest(
        (
            "numerics-cell",
            # interval-kernel semantics version: sound rounding changes
            # (e.g. pow mult-chains) miss cleanly instead of serving
            # payloads computed under the old endpoint arithmetic
            KERNEL_SEMANTICS_VERSION,
            tape_for(expr).fingerprint(),
            bounds,
            functional.name,
            component,
            check,
            semantics,
            list(config.semantic_key(check)),
        )
    )


# ---------------------------------------------------------------------------
# payload builders: pure, deterministic report -> JSON-safe dict
# ---------------------------------------------------------------------------

def _kind(check: str) -> str:
    return f"numerics/{check}"


def continuity_payload(report: ContinuityReport) -> dict:
    """Serialise a continuity report (order and floats preserved exactly)."""
    return {
        "v": SCHEMA_VERSION,
        "kind": _kind("continuity"),
        "boundaries": [b.describe() for b in report.boundaries],
        "findings": [
            {
                "guard": f.boundary.describe(),
                "point": {k: f.point[k] for k in sorted(f.point)},
                "value_jump": f.value_jump,
                "slope_jump": f.slope_jump,
                "bisected_var": f.bisected_var,
                "singular": f.singular,
            }
            for f in report.findings
        ],
        "max_value_jump": report.max_value_jump(),
        "max_slope_jump": report.max_slope_jump(),
        "singular_count": len(report.singular_findings()),
        "continuous": report.is_continuous(),
    }


def hazards_payload(report: HazardReport) -> dict:
    """Serialise a hazard report (verdict order is collection order)."""
    counts = report.counts()
    return {
        "v": SCHEMA_VERSION,
        "kind": _kind("hazards"),
        "branch_aware": report.branch_aware,
        "verdicts": [
            {
                "hazard": v.hazard.kind,
                "requirement": v.hazard.requirement(),
                "status": v.status,
                "witness": (
                    None
                    if v.witness is None
                    else {k: v.witness[k] for k in sorted(v.witness)}
                ),
                "solver_steps": v.solver_steps,
            }
            for v in report.verdicts
        ],
        "counts": {k: counts[k] for k in sorted(counts)},
        "is_total": report.is_total,
    }


def sensitivity_payload(smap: SensitivityMap) -> dict:
    """Serialise a sensitivity map's summary statistics.

    The full kappa grids stay out of the store (tens of thousands of
    floats per cell); the retained quantiles/argmax are what Table III
    and the paper's discussion need, and they are pure deterministic
    functions of the grid.
    """
    return {
        "v": SCHEMA_VERSION,
        "kind": _kind("sensitivity"),
        "kappa": {
            var: {
                **smap.stats(var),
                "argmax": {
                    k: v for k, v in sorted(smap.argmax(var).items())
                },
            }
            for var in sorted(smap.kappa)
        },
        "grid_shape": [len(smap.axes[name]) for name in sorted(smap.axes)],
    }


def payload_summary(key: CellKey, payload: dict) -> str:
    """One-line human summary of a cell payload (campaign progress lines)."""
    functional_name, component, check, semantics = key
    label = f"{functional_name}.{component} {check}"
    if semantics != SEM_NONE:
        label += f"[{semantics}]"
    if check == "continuity":
        n = len(payload["boundaries"])
        if n == 0:
            return f"{label}: analytic (no branch boundaries)"
        tail = f", {payload['singular_count']} singular" if payload["singular_count"] else ""
        return (
            f"{label}: {n} boundaries, max jump "
            f"{payload['max_value_jump']:.3g}{tail}"
        )
    if check == "hazards":
        counts = ", ".join(f"{k}={v}" for k, v in sorted(payload["counts"].items()))
        return f"{label}: {len(payload['verdicts'])} sites ({counts or 'none'})"
    kappas = [stats["max"] for stats in payload["kappa"].values()]
    peak = max(kappas) if kappas else float("nan")
    return f"{label}: max kappa {peak:.3g}"


def run_numerics_cell(
    functional: Functional, component: str, check: str, semantics: str,
    config: NumericsConfig,
) -> dict:
    """Run one analysis cell and return its payload.

    This *is* the sequential per-pair path: the campaign worker calls
    exactly this function, so a campaign's cells are bit-identical to
    driving the analyses by hand in a loop.
    """
    expr = getattr(functional, component)()
    domain = functional.domain()
    if check == "continuity":
        report = check_continuity(
            expr,
            domain,
            n_base_points=config.n_base_points,
            bisection_steps=config.bisection_steps,
            seed=config.seed,
        )
        payload = continuity_payload(report)
    elif check == "hazards":
        report = check_hazards(
            expr,
            domain,
            branch_aware=semantics == SEM_BRANCH,
            delta=config.delta,
            budget=Budget(max_steps=config.hazard_budget),
            solver=config.make_hazard_solver(),
        )
        payload = hazards_payload(report)
    elif check == "sensitivity":
        per_dim = (
            config.per_dim_mgga if functional.family == "MGGA" else config.per_dim
        )
        payload = sensitivity_payload(
            sensitivity_map(functional, component, per_dim=per_dim)
        )
    else:
        raise ValueError(f"unknown check {check!r}")
    payload["functional"] = functional.name
    payload["component"] = component
    payload["semantics"] = semantics
    return payload


def cell_condition_id(key: CellKey) -> str:
    """The store's ``condition_id`` metadata column for one analysis cell.

    Both the campaign's absorb loop and the verification service file
    cells under this same ``component:check:semantics`` label, so a store
    written by either is browsable by the other.
    """
    return f"{key[1]}:{key[2]}:{key[3]}"


def _numerics_worker(args):
    """Run one chunk of analysis cells in a worker process.

    Returns the ``(key, payload)`` list -- with a third dispatch-args
    element (a pickled :class:`~repro.obs.trace.SpanContext`), the worker
    additionally records one pid-stamped ``cell`` span per analysis cell
    under a ``chunk`` span and returns ``(results, records)`` for the
    parent's absorb to reattach to the trace.
    """
    config, items = args[0], args[1]
    recorder = SpanRecorder(args[2]) if len(args) > 2 else None
    out = []
    if recorder is None:
        for key in items:
            functional = get_functional(key[0])
            out.append((key, run_numerics_cell(functional, *key[1:], config)))
        return out
    chunk_span = recorder.begin("chunk", "chunk", cells=len(items))
    for key in items:
        functional = get_functional(key[0])
        with recorder.span(
            f"cell:{key[0]}/{cell_condition_id(key)}", "cell", parent=chunk_span,
            functional=key[0], component=key[1], check=key[2], semantics=key[3],
        ):
            payload = run_numerics_cell(functional, *key[1:], config)
        out.append((key, payload))
    recorder.finish(chunk_span)
    return out, recorder.records


# ---------------------------------------------------------------------------
# result + driver
# ---------------------------------------------------------------------------

#: numerics-engine counters in the process-wide registry (the campaign
#: engine's chunk counter is shared with the verifier campaign)
_CELLS_COUNTER = REGISTRY.counter(
    "repro_numerics_cells_resolved_total",
    "Numerics analysis cells resolved, by how they resolved.",
)
_CHUNKS_COUNTER = REGISTRY.counter(
    "repro_campaign_chunks_total",
    "Work chunks dispatched by the campaign engine.",
)


@dataclass
class NumericsCampaignResult:
    """Everything a numerics campaign produced.

    ``cells`` maps the cell address to its payload dict.  ``store_hits``
    / ``computed`` record provenance; ``interrupted`` is True when the
    run was cut short (SIGINT) -- completed cells are still present and,
    with a store attached, already durable.
    """

    cells: dict[CellKey, dict] = field(default_factory=dict)
    store_hits: list[CellKey] = field(default_factory=list)
    computed: list[CellKey] = field(default_factory=list)
    cell_keys: dict[CellKey, str] = field(default_factory=dict)
    interrupted: bool = False

    def __getitem__(self, key: CellKey) -> dict:
        return self.cells[key]

    def __len__(self) -> int:
        return len(self.cells)

    def __contains__(self, key) -> bool:
        return key in self.cells

    def items(self):
        return self.cells.items()


def run_numerics_campaign(
    functionals: Iterable | None = None,
    *,
    components: Iterable[str] = ("fc",),
    checks: Iterable[str] = CHECKS,
    config: NumericsConfig | None = None,
    max_workers: int | None = 0,
    unit_chunk_size: int = 1,
    store: CampaignStore | str | os.PathLike | None = None,
    resume: bool = False,
    executor=None,
    on_cell: Callable[[CellKey, dict, bool], None] | None = None,
    policy=None,
    tracer=None,
) -> NumericsCampaignResult:
    """Sweep the Section VI-C analyses over whole functional families.

    Parameters mirror :func:`repro.verifier.campaign.run_campaign`:
    ``functionals`` accepts objects or registry names (default: every
    registered functional); ``max_workers`` <= 1 runs in-process and
    deterministically ordered; ``store``/``resume`` persist and serve
    cells by content hash; ``executor`` shares an existing process pool
    (e.g. with a verification campaign -- the caller keeps ownership).
    ``policy`` (a :class:`~repro.verifier.costmodel.SchedulingPolicy`)
    dispatches cells longest-predicted-first -- analysis payloads carry
    no timings by design (they are compared bit-exactly against the
    sequential path), so numerics predictions come from the model's
    structural prior; the reordering is a pure permutation and every
    payload stays bit-identical.  ``tracer`` (default: the ambient
    :func:`~repro.obs.trace.current_tracer`) emits the same span shape
    as the verification campaign -- a ``campaign`` span, per-chunk
    ``dispatch`` spans and worker-side ``chunk``/``cell`` spans -- and
    is purely observational: payloads and store contents are
    byte-identical with tracing on or off.  KeyboardInterrupt yields a
    partial result with ``interrupted`` set and everything completed
    already persisted.
    """
    config = config or NumericsConfig()
    CampaignConfig(  # loud one-line validation, shared with run_campaign
        max_workers=max_workers, unit_chunk_size=unit_chunk_size
    )
    if functionals is None:
        resolved = list(all_functionals())
    else:
        resolved = [
            get_functional(f) if isinstance(f, str) else f for f in functionals
        ]
    seen: set[str] = set()
    uniq: list[Functional] = []
    for f in resolved:
        if f.name in seen:
            continue
        # workers re-resolve cells from the registry by name, so a
        # non-registry object would either crash there or -- worse -- have
        # the registry version's analysis persisted under the passed
        # object's content key, poisoning every later --resume hit
        try:
            registered = get_functional(f.name)
        except KeyError:
            registered = None
        if registered is not f:
            raise ValueError(
                f"functional {f.name!r} is not the registered instance; "
                "numerics campaigns analyse registry functionals "
                "(register() it first)"
            )
        seen.add(f.name)
        uniq.append(f)

    owns_store = isinstance(store, (str, os.PathLike))
    if owns_store:
        store = open_store(store)

    by_name = {f.name: f for f in uniq}
    result = NumericsCampaignResult()
    tracer = tracer if tracer is not None else current_tracer()
    campaign_span = None
    if tracer.enabled:
        campaign_span = tracer.begin(
            "campaign", "campaign", kind="numerics",
            workers=effective_workers(max_workers, executor),
        )
    try:
        work: list[CellKey] = []
        for key in numerics_cells(uniq, components, checks):
            functional_name, component, check, semantics = key
            if store is not None:
                content_key = cell_content_key(
                    by_name[functional_name], component, check, semantics, config
                )
                result.cell_keys[key] = content_key
                if resume:
                    payload = store.get_payload(content_key)
                    if payload is not None and payload.get("kind") == _kind(check):
                        result.cells[key] = payload
                        result.store_hits.append(key)
                        _CELLS_COUNTER.inc(result="store_hit")
                        if on_cell is not None:
                            on_cell(key, payload, True)
                        continue
            work.append(key)

        if policy is not None and policy.adaptive_order:
            # longest-predicted-first over the prior (pure permutation:
            # chunk composition is unchanged at unit_chunk_size=1, and a
            # stable sort keeps canonical order between equal predictions)
            predicted = {
                key: policy.model.predict_cell(by_name[key[0]], *key[1:])
                for key in work
            }
            work = policy.order(work, predicted)

        def absorb(_tag, worker_out):
            if isinstance(worker_out, tuple):
                worker_out, span_records = worker_out
                tracer.emit_records(span_records)
            for key, payload in worker_out:
                result.cells[key] = payload
                result.computed.append(key)
                _CELLS_COUNTER.inc(result="computed")
                content_key = result.cell_keys.get(key)
                if store is not None and content_key is not None:
                    store.put_payload(
                        content_key,
                        payload,
                        functional=key[0],
                        condition_id=cell_condition_id(key),
                    )
                if on_cell is not None:
                    on_cell(key, payload, False)
            return []

        size = max(1, unit_chunk_size)
        chunks = [
            (group[0], (config, group))
            for group in (work[i : i + size] for i in range(0, len(work), size))
        ]
        _CHUNKS_COUNTER.inc(len(chunks))
        drive_chunks(
            chunks,
            _numerics_worker,
            absorb,
            max_workers=max_workers,
            executor=executor,
            tracer=tracer,
            chunk_trace=lambda key: (
                campaign_span, f"{key[0]}/{cell_condition_id(key)}"
            ),
        )
    except KeyboardInterrupt:
        result.interrupted = True
    finally:
        if campaign_span is not None:
            tracer.finish(
                campaign_span,
                computed=len(result.computed),
                store_hits=len(result.store_hits),
                interrupted=result.interrupted,
            )
        if owns_store:
            store.close()
    return result
