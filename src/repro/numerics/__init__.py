"""Numerical-issues analysis for DFA implementations (paper Section VI-C).

The paper's discussion section proposes, as the next application of formal
methods to DFT, the analysis of *numerical* issues in DFA implementations:

* "Some DFAs include different functions that apply to different input
  domains, and must ensure continuity when switching from one domain to
  another" -- and calls out the Perdew-Zunger LDA parametrisation, whose
  published constants "lead to discontinuities of the exchange-correlation
  energy at a given matching point".  :mod:`repro.numerics.continuity`
  locates the branch boundaries of lifted model code and measures value
  and slope jumps across them.

* "This is a challenging problem involving reasoning about floating points
  and dealing with transcendental functions" -- partial operations
  (log, sqrt, division, fractional powers) embedded in the model code can
  leave the IEEE domain.  :mod:`repro.numerics.hazards` enumerates every
  such site in a lifted expression and uses the delta-complete solver to
  either *prove* the operand stays in-domain over the input box or exhibit
  a witness input that leaves it.

* "the sensitivity of the SCAN functional requires the use of extremely
  fine grids ... to avoid large numerical errors" --
  :mod:`repro.numerics.sensitivity` computes relative condition numbers
  kappa = |x f'(x) / f(x)| of the enhancement factors symbolically and
  maps where each functional amplifies input noise.
"""

from .campaign import (
    NumericsCampaignResult,
    NumericsConfig,
    run_numerics_campaign,
    run_numerics_cell,
)
from .continuity import BranchBoundary, ContinuityFinding, ContinuityReport, check_continuity
from .hazards import Hazard, HazardReport, HazardVerdict, check_hazards, collect_hazards
from .sensitivity import SensitivityMap, condition_number, sensitivity_map

__all__ = [
    "BranchBoundary",
    "ContinuityFinding",
    "ContinuityReport",
    "check_continuity",
    "Hazard",
    "HazardReport",
    "HazardVerdict",
    "check_hazards",
    "collect_hazards",
    "NumericsCampaignResult",
    "NumericsConfig",
    "run_numerics_campaign",
    "run_numerics_cell",
    "SensitivityMap",
    "condition_number",
    "sensitivity_map",
]
