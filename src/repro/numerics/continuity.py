"""Branch-boundary continuity analysis (paper Section VI-C).

DFAs with piecewise definitions "must ensure continuity when switching
from one domain to another"; the paper names the Perdew-Zunger LDA, whose
published constants leave a discontinuity at the rs = 1 matching point.

For every :class:`~repro.expr.nodes.Ite` in a lifted expression this
module:

1. isolates the two branch surfaces by replacing the Ite with each of its
   bodies (:func:`repro.expr.substitute.replace_subexpr`), giving the
   expression "as if the branch were always taken";
2. locates points on the guard boundary ``lhs - rhs = 0`` inside the
   input box by scanning for sign changes of the guard residual along a
   coordinate axis and bisecting to the root;
3. measures the **value jump** |then - else| and the **slope jump**
   |d(then)/dv - d(else)/dv| of the full expression across each located
   boundary point.

A jump of ~0 means the branches are glued continuously (SCAN's switching
functions, rSCAN's polynomial/tail crossover); a persistent jump is a
genuine discontinuity of the implementation (PZ81's matching point).
Derivative jumps with zero value jump diagnose C^0-but-not-C^1 gluing,
which matters because the exact conditions differentiate F_c.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..expr.derivative import derivative
from ..expr.evaluator import evaluate
from ..expr.nodes import Expr, Ite, Rel, Var
from ..expr.substitute import replace_subexpr
from ..solver.box import Box

__all__ = [
    "BranchBoundary",
    "ContinuityFinding",
    "ContinuityReport",
    "check_continuity",
]


@dataclass(frozen=True)
class BranchBoundary:
    """One Ite node of the expression and its guard."""

    ite: Ite

    @property
    def guard(self) -> Rel:
        return self.ite.cond

    def residual(self) -> Expr:
        """The guard residual ``lhs - rhs`` whose zero set is the boundary."""
        return self.guard.gap()

    def describe(self) -> str:
        return f"{self.guard!r}"


@dataclass(frozen=True)
class ContinuityFinding:
    """Measured jump across one boundary point.

    ``singular`` marks boundary points where at least one branch surface
    fails to evaluate at the boundary itself (NaN / overflow): the branch
    has a pole or essential singularity exactly at the switch.  SCAN's
    ``exp(-c/(alpha-1))`` tails are the canonical case -- there is no
    finite jump to report, the implementation relies entirely on the guard
    for totality (the numerical fragility Section VI-C describes and the
    rSCAN line was designed to remove).
    """

    boundary: BranchBoundary
    point: dict[str, float]
    value_jump: float
    slope_jump: float
    bisected_var: str
    singular: bool = False

    @property
    def is_discontinuous(self) -> bool:
        return self.singular or self.value_jump > 0.0

    def __repr__(self) -> str:  # pragma: no cover
        loc = ", ".join(f"{k}={v:.5g}" for k, v in sorted(self.point.items()))
        if self.singular:
            return (
                f"ContinuityFinding({self.boundary.describe()} at {loc}: "
                "SINGULAR branch surface)"
            )
        return (
            f"ContinuityFinding({self.boundary.describe()} at {loc}: "
            f"value_jump={self.value_jump:.3g}, slope_jump={self.slope_jump:.3g})"
        )


@dataclass
class ContinuityReport:
    """All boundary findings for one expression over one box."""

    expr: Expr
    domain: Box
    boundaries: list[BranchBoundary] = field(default_factory=list)
    findings: list[ContinuityFinding] = field(default_factory=list)

    def max_value_jump(self) -> float:
        return max(
            (f.value_jump for f in self.findings if not f.singular), default=0.0
        )

    def max_slope_jump(self) -> float:
        jumps = [
            f.slope_jump
            for f in self.findings
            if not f.singular and not math.isnan(f.slope_jump)
        ]
        return max(jumps, default=0.0)

    def singular_findings(self) -> list[ContinuityFinding]:
        return [f for f in self.findings if f.singular]

    def worst(self) -> ContinuityFinding | None:
        return max(
            (f for f in self.findings if not f.singular),
            key=lambda f: f.value_jump,
            default=None,
        )

    def is_continuous(self, tol: float = 1e-9) -> bool:
        """True when no located boundary point jumps by more than ``tol``
        and no branch surface is singular at the boundary."""
        return not self.singular_findings() and self.max_value_jump() <= tol

    def summary(self) -> str:
        if not self.boundaries:
            return "no branch boundaries (expression is a single analytic piece)"
        n_singular = len(self.singular_findings())
        tail = f", {n_singular} singular" if n_singular else ""
        return (
            f"{len(self.boundaries)} boundaries, {len(self.findings)} boundary "
            f"points located{tail}; max value jump {self.max_value_jump():.3g}, "
            f"max slope jump {self.max_slope_jump():.3g}"
        )


def ite_nodes(expr: Expr) -> list[Ite]:
    """All unique Ite nodes of the DAG, in topological (inner-first) order."""
    return [node for node in expr.walk() if isinstance(node, Ite)]


def check_continuity(
    expr: Expr,
    domain: Box,
    *,
    n_base_points: int = 64,
    bisection_steps: int = 80,
    seed: int = 0,
) -> ContinuityReport:
    """Measure branch-boundary jumps of ``expr`` over ``domain``.

    For each Ite, ``n_base_points`` quasi-random points seed axis scans
    along every variable of the guard residual; each sign change of the
    residual is bisected to the boundary (``bisection_steps`` halvings,
    i.e. to ~1 ulp of the axis width) and both branch surfaces are
    evaluated there.
    """
    report = ContinuityReport(expr, domain)
    rng = np.random.default_rng(seed)
    names = list(domain.names)
    lows = np.array([domain[n].lo for n in names])
    highs = np.array([domain[n].hi for n in names])

    for ite in ite_nodes(expr):
        boundary = BranchBoundary(ite)
        report.boundaries.append(boundary)
        residual = boundary.residual()
        residual_vars = sorted(v.name for v in residual.free_vars())
        if not residual_vars:
            continue  # constant guard: no boundary inside the box

        then_expr = replace_subexpr(expr, ite, ite.then)
        else_expr = replace_subexpr(expr, ite, ite.orelse)
        # symbolic slopes, computed once per (boundary, axis)
        slopes = {
            var_name: (
                derivative(then_expr, _interned_var(then_expr, var_name)),
                derivative(else_expr, _interned_var(else_expr, var_name)),
            )
            for var_name in residual_vars
        }

        samples = lows + rng.random((n_base_points, len(names))) * (highs - lows)
        for row in samples:
            base = dict(zip(names, (float(x) for x in row)))
            for var_name in residual_vars:
                root = _bisect_root(
                    residual, base, var_name, domain, bisection_steps
                )
                if root is None:
                    continue
                point = dict(base)
                point[var_name] = root
                finding = _measure_jump(
                    boundary, then_expr, else_expr, slopes[var_name], point, var_name
                )
                if finding is not None:
                    report.findings.append(finding)

    return report


def _interned_var(expr: Expr, var_name: str) -> Var:
    """The Var object named ``var_name`` as interned inside ``expr``.

    Vars carry a ``nonneg`` tag in their intern key, so the derivative must
    be taken with respect to the exact tagged object the functional used.
    Should an expression ever hold *both* tag variants of one name, the
    choice is made deterministically (nonneg first): ``free_vars`` is a
    set, and campaign workers must pick the same Var -- and therefore
    compute the same slope surfaces -- as the sequential path, in every
    process.
    """
    candidates = sorted(
        (v for v in expr.free_vars() if v.name == var_name),
        key=lambda v: not v.nonneg,
    )
    if candidates:
        return candidates[0]
    return Var(var_name)


def _bisect_root(
    residual: Expr,
    base: dict[str, float],
    var_name: str,
    domain: Box,
    steps: int,
) -> float | None:
    """Find a zero of the guard residual along the ``var_name`` axis."""
    iv = domain[var_name]
    lo, hi = iv.lo, iv.hi

    def f(x: float) -> float:
        env = dict(base)
        env[var_name] = x
        return evaluate(residual, env)

    flo, fhi = f(lo), f(hi)
    if math.isnan(flo) or math.isnan(fhi):
        return None
    if flo == 0.0:
        return lo
    if fhi == 0.0:
        return hi
    if (flo > 0) == (fhi > 0):
        return None  # no sign change along this axis line

    for _ in range(steps):
        mid = 0.5 * (lo + hi)
        fmid = f(mid)
        if math.isnan(fmid):
            return None
        if fmid == 0.0:
            return mid
        if (fmid > 0) == (flo > 0):
            lo, flo = mid, fmid
        else:
            hi, fhi = mid, fmid
    return 0.5 * (lo + hi)


def _measure_jump(
    boundary: BranchBoundary,
    then_expr: Expr,
    else_expr: Expr,
    slope_exprs: tuple[Expr, Expr],
    point: dict[str, float],
    var_name: str,
) -> ContinuityFinding | None:
    then_val = evaluate(then_expr, point)
    else_val = evaluate(else_expr, point)
    if math.isnan(then_val) or math.isnan(else_val):
        return ContinuityFinding(
            boundary=boundary,
            point=dict(point),
            value_jump=math.nan,
            slope_jump=math.nan,
            bisected_var=var_name,
            singular=True,
        )
    then_slope = evaluate(slope_exprs[0], point)
    else_slope = evaluate(slope_exprs[1], point)
    slope_jump = (
        abs(then_slope - else_slope)
        if not (math.isnan(then_slope) or math.isnan(else_slope))
        else math.nan
    )
    return ContinuityFinding(
        boundary=boundary,
        point=dict(point),
        value_jump=abs(then_val - else_val),
        slope_jump=slope_jump,
        bisected_var=var_name,
    )
