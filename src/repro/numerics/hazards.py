"""Domain-safety analysis: prove or refute evaluation hazards.

Every partial operation in a lifted DFA expression -- ``log``, ``sqrt``,
division (a negative power), fractional powers, ``lambertw`` -- is a
*hazard site*: an input that drives its operand out of the IEEE domain
produces NaN/inf and, downstream, the "large numerical errors [and] slow
convergence" of the paper's Section VI-C.

For each site this module builds the *hazard formula*

    domain constraints  /\\  path guards  /\\  operand out-of-domain

and hands it to the same delta-complete ICP solver the verifier uses:

* ``UNSAT``  -> the site is **safe**: no input in the box can trigger it;
* delta-SAT with a witness that exactly triggers the hazard ->
  **hazard** (or **benign** when the full expression still evaluates to a
  finite IEEE value through the inf intermediate, e.g. ``exp(-1/0+) = 0``);
* delta-SAT with a near-miss witness -> **inconclusive** (the
  delta-weakening artefact, exactly the paper's spurious-model case);
* budget exhausted -> **timeout**.

Two reachability semantics are offered, matching the two evaluators in
:mod:`repro.expr`:

* ``branch_aware=True`` (scalar evaluator semantics): a site inside an
  :class:`~repro.expr.nodes.Ite` branch is only reachable when the branch
  guards hold, so the guards are conjoined to the hazard formula.
* ``branch_aware=False`` (compiled-kernel / ``np.where`` semantics): both
  branches of every Ite are always evaluated, so guards are ignored.
  This is the semantics under which SCAN's ``exp(-c/(alpha-1))`` branch
  divides by zero at alpha = 1 -- the very hazard that forced the rSCAN
  redesigns the paper cites.  In this mode witness validation also
  evaluates the operand under the kernel's *total* IEEE semantics
  (see "IEEE-kernel semantics" in :mod:`repro.expr.codegen`): a kernel
  NaN counts as out-of-domain, while an overflow-to-inf the scalar
  evaluator would refuse to produce is judged against the site's actual
  domain predicate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..expr.codegen import compile_numpy
from ..expr.evaluator import evaluate
from ..expr.nodes import Const, Expr, Func, Ite, Pow, Rel
from ..solver.box import Box
from ..solver.constraint import Atom, Conjunction
from ..solver.icp import Budget, ICPSolver

__all__ = ["Hazard", "HazardVerdict", "HazardReport", "collect_hazards", "check_hazards"]

#: Lambert W branch point
_LAMBERTW_MIN = -1.0 / math.e


@dataclass(frozen=True)
class Hazard:
    """One partial-operation site in an expression DAG.

    Attributes
    ----------
    kind:
        ``log-domain``, ``sqrt-domain``, ``division-by-zero``,
        ``fractional-pow-domain``, ``lambertw-domain`` or ``pow-domain``.
    operand:
        The subexpression whose value decides whether the operation leaves
        its domain.
    guards:
        Path guards: Ite conditions that hold on *every* path from the
        root to the site (then-branch guards as-is, else-branch guards
        negated).  Else-branches of equality guards are unrepresentable as
        a single atom and tracked in ``excluded`` instead.
    excluded:
        Equality atoms whose *negation* guards the site (``x != c``).
        They are checked exactly during witness validation but not given
        to the interval solver (dropping a constraint only enlarges the
        search space, so safety proofs remain sound).
    """

    kind: str
    operand: Expr
    guards: tuple[Rel, ...] = ()
    excluded: tuple[Rel, ...] = ()

    def requirement(self) -> str:
        """Human-readable in-domain requirement on the operand."""
        return {
            "log-domain": "operand > 0",
            "sqrt-domain": "operand >= 0",
            "division-by-zero": "operand != 0",
            "fractional-pow-domain": "operand >= 0",
            "pow-domain": "operand > 0",
            "lambertw-domain": "operand >= -1/e",
        }[self.kind]

    def violation_rels(self) -> tuple[Rel, ...]:
        """The out-of-domain predicate as relational atoms (conjunction)."""
        operand = self.operand
        if self.kind == "log-domain":
            return (operand.le(0.0),)
        if self.kind == "sqrt-domain":
            return (operand.lt(0.0),)
        if self.kind == "division-by-zero":
            # operand == 0, encoded as the two-sided conjunction
            return (operand.le(0.0), operand.ge(0.0))
        if self.kind == "fractional-pow-domain":
            return (operand.lt(0.0),)
        if self.kind == "pow-domain":
            return (operand.le(0.0),)
        if self.kind == "lambertw-domain":
            return (operand.lt(_LAMBERTW_MIN),)
        raise AssertionError(self.kind)  # pragma: no cover

    def violated_exactly_at(
        self,
        point: dict[str, float],
        zero_tol: float,
        *,
        kernel_semantics: bool = False,
    ) -> bool:
        """Exact floating-point check that the operand leaves its domain.

        With ``kernel_semantics`` the operand is evaluated under the
        compiled-kernel (total IEEE) semantics documented in
        :mod:`repro.expr.codegen` instead of the partial scalar evaluator:
        an operand the scalar evaluator refuses to evaluate (e.g. an
        ``exp`` overflow, raised as ``OverflowError`` and mapped to NaN)
        may be a perfectly in-domain ``inf`` in the kernel, and the
        ``branch_aware=False`` analysis asks about the kernel.  Kernel
        NaN (e.g. ``np.power`` on a negative base with a fractional
        exponent, which the kernel yields silently) still counts as
        out-of-domain: NaN fails every in-domain predicate.
        """
        if kernel_semantics:
            import numpy as np

            arg_order = tuple(
                sorted(self.operand.free_vars(), key=lambda v: v.name)
            )
            fn = compile_numpy(self.operand, arg_order)
            value = float(fn(*[np.asarray(point[v.name], dtype=float) for v in arg_order]))
        else:
            value = evaluate(self.operand, point)
        if math.isnan(value):
            return True  # the operand itself already fails to evaluate
        if self.kind == "log-domain":
            return value <= 0.0
        if self.kind == "sqrt-domain":
            return value < 0.0
        if self.kind == "division-by-zero":
            # equality hazards are measure-zero; accept delta-validated hits
            return abs(value) <= zero_tol
        if self.kind == "fractional-pow-domain":
            return value < 0.0
        if self.kind == "pow-domain":
            return value <= 0.0
        if self.kind == "lambertw-domain":
            return value < _LAMBERTW_MIN
        raise AssertionError(self.kind)  # pragma: no cover

    def guards_hold_at(self, point: dict[str, float]) -> bool:
        # guards are decided by direct operand comparison (Rel.compare),
        # matching every Ite decider: the evaluated gap would turn two
        # operands saturating to the same infinity into NaN and reject a
        # genuinely reachable witness
        for rel in self.guards:
            lhs = evaluate(rel.lhs, point)
            rhs = evaluate(rel.rhs, point)
            if math.isnan(lhs) or math.isnan(rhs) or not rel.compare(lhs, rhs):
                return False
        for rel in self.excluded:
            lhs = evaluate(rel.lhs, point)
            rhs = evaluate(rel.rhs, point)
            # excluded == must NOT hold
            if math.isnan(lhs) or math.isnan(rhs) or rel.compare(lhs, rhs):
                return False
        return True


@dataclass(frozen=True)
class HazardVerdict:
    """Solver outcome for one hazard site."""

    hazard: Hazard
    status: str  # 'safe' | 'hazard' | 'benign' | 'inconclusive' | 'timeout'
    witness: dict[str, float] | None = None
    solver_steps: int = 0

    def __repr__(self) -> str:  # pragma: no cover
        return f"HazardVerdict({self.hazard.kind}: {self.status})"


@dataclass
class HazardReport:
    """All hazard verdicts for one expression over one input box."""

    expr: Expr
    domain: Box
    branch_aware: bool
    verdicts: list[HazardVerdict] = field(default_factory=list)

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for v in self.verdicts:
            out[v.status] = out.get(v.status, 0) + 1
        return out

    @property
    def is_total(self) -> bool:
        """True when every site is proven safe (total IEEE evaluation)."""
        return all(v.status == "safe" for v in self.verdicts)

    def triggered(self) -> list[HazardVerdict]:
        return [v for v in self.verdicts if v.status in ("hazard", "benign")]

    def summary(self) -> str:
        mode = "branch-aware" if self.branch_aware else "ieee (np.where)"
        counts = ", ".join(f"{k}={v}" for k, v in sorted(self.counts().items()))
        return (
            f"{len(self.verdicts)} hazard sites [{mode}]: "
            f"{counts if counts else 'none'}"
        )


def collect_hazards(expr: Expr, branch_aware: bool = True) -> list[Hazard]:
    """Enumerate the partial-operation sites of ``expr``.

    With ``branch_aware`` the Ite path guards of each site are recorded; a
    guard is attached only if *every* path from the root to the site runs
    through the same branch of the same Ite (guard-set intersection over
    paths, computed in one reverse-topological sweep of the DAG).
    """
    order = list(expr.walk())  # children-first; reversed = parents-first
    # per-node path guards: (frozenset of (rel, polarity)), None = unvisited
    paths: dict[int, frozenset] = {id(expr): frozenset()}

    def merge(node: Expr, incoming: frozenset) -> None:
        current = paths.get(id(node))
        paths[id(node)] = incoming if current is None else (current & incoming)

    for node in reversed(order):
        here = paths.get(id(node))
        if here is None:  # unreachable from root (defensive)
            continue  # pragma: no cover
        if isinstance(node, Ite):
            merge(node.cond.lhs, here)
            merge(node.cond.rhs, here)
            merge(node.then, here | {(node.cond, True)})
            merge(node.orelse, here | {(node.cond, False)})
        else:
            for child in node.children():
                merge(child, here)

    hazards: list[Hazard] = []
    for node in order:
        kind_operands = _site_kinds(node)
        if not kind_operands:
            continue
        guards: list[Rel] = []
        excluded: list[Rel] = []
        if branch_aware:
            for rel, polarity in sorted(
                paths.get(id(node), frozenset()),
                key=lambda item: (repr(item[0]), item[1]),
            ):
                if polarity:
                    guards.append(rel)
                elif rel.op == "==":
                    excluded.append(rel)
                else:
                    guards.append(rel.negate())
        for kind, operand in kind_operands:
            hazards.append(
                Hazard(kind, operand, tuple(guards), tuple(excluded))
            )
    return hazards


def _site_kinds(node: Expr) -> list[tuple[str, Expr]]:
    """The hazard kinds contributed by one node (possibly several)."""
    if isinstance(node, Func):
        if node.name == "log":
            return [("log-domain", node.arg)]
        if node.name == "sqrt":
            return [("sqrt-domain", node.arg)]
        if node.name == "lambertw":
            return [("lambertw-domain", node.arg)]
        return []
    if isinstance(node, Pow):
        expo = node.exponent
        if isinstance(expo, Const):
            out: list[tuple[str, Expr]] = []
            if expo.is_integer():
                if expo.value < 0:
                    out.append(("division-by-zero", node.base))
            else:
                out.append(("fractional-pow-domain", node.base))
                if expo.value < 0:
                    out.append(("division-by-zero", node.base))
            return out
        # symbolic exponent: a^b = exp(b log a) needs a > 0
        return [("pow-domain", node.base)]
    return []


def check_hazards(
    expr: Expr,
    domain: Box,
    *,
    branch_aware: bool = True,
    delta: float = 1e-9,
    budget: Budget | None = None,
    solver: ICPSolver | None = None,
) -> HazardReport:
    """Classify every hazard site of ``expr`` over ``domain``.

    ``delta`` doubles as the weakening of the ICP solver and the exact
    tolerance accepted for equality (division) witnesses.
    """
    solver = solver or ICPSolver(delta=delta, precision=min(1e-4, delta * 100))
    budget = budget or Budget(max_steps=5_000)
    report = HazardReport(expr, domain, branch_aware)
    kernel = None  # built lazily, only if a triggered witness needs benign-check

    domain_names = set(domain.names)
    for hazard in collect_hazards(expr, branch_aware=branch_aware):
        free = {v.name for v in hazard.operand.free_vars()}
        for rel in hazard.guards:
            free |= {v.name for v in rel.gap().free_vars()}
        if not free <= domain_names:
            raise ValueError(
                f"domain does not bind {sorted(free - domain_names)}"
            )

        if not free:
            # constant operand: decide exactly without the solver, under
            # the same evaluation semantics as witness validation (a
            # var-free subterm can still overflow the scalar evaluator
            # while the kernel's inf is perfectly in-domain)
            triggered = hazard.violated_exactly_at(
                {}, zero_tol=delta, kernel_semantics=not branch_aware
            )
            status = "hazard" if triggered else "safe"
            report.verdicts.append(HazardVerdict(hazard, status))
            continue

        parts: list = list(hazard.violation_rels())
        parts.extend(hazard.guards)
        formula = Conjunction.of(*[Atom.from_rel(r) for r in parts])
        sub_domain = Box({name: domain[name] for name in sorted(free)})
        result = solver.solve(formula, sub_domain, budget)

        if result.is_unsat:
            report.verdicts.append(
                HazardVerdict(hazard, "safe", None, result.stats.boxes_processed)
            )
            continue
        if result.is_timeout:
            report.verdicts.append(
                HazardVerdict(hazard, "timeout", None, result.stats.boxes_processed)
            )
            continue

        witness = dict(domain.midpoint())
        witness.update(result.model or {})
        valid = hazard.violated_exactly_at(
            witness, zero_tol=delta, kernel_semantics=not branch_aware
        ) and (not branch_aware or hazard.guards_hold_at(witness))
        if not valid:
            report.verdicts.append(
                HazardVerdict(
                    hazard, "inconclusive", witness, result.stats.boxes_processed
                )
            )
            continue

        # triggered: benign if the whole expression still evaluates finite
        # under IEEE kernel semantics at the witness
        if kernel is None:
            arg_order = tuple(
                sorted(expr.free_vars(), key=lambda v: v.name)
            )
            kernel = (compile_numpy(expr, arg_order), arg_order)
        fn, arg_order = kernel
        import numpy as np

        args = [np.asarray(witness[v.name], dtype=float) for v in arg_order]
        value = float(fn(*args))
        # IEEE-kernel semantics (expr/codegen.py): the kernel is total, so
        # a triggered site is benign exactly when the whole expression
        # still comes out finite; a kernel NaN -- including np.power's
        # silent NaN on a negative base with a fractional exponent -- and
        # an inf both mean the hazard reaches the result
        status = "benign" if math.isfinite(value) else "hazard"
        report.verdicts.append(
            HazardVerdict(hazard, status, witness, result.stats.boxes_processed)
        )

    return report
