#!/usr/bin/env python
"""Verify a functional that is *not* in the paper: extensibility demo.

The paper's future work (Section VI-B) is to scale XCVerifier to all 500+
LibXC functionals.  This example shows the full workflow for adding one:
write the model code in reduced variables, register it, and verify.  We
add RPBE (Hammer, Hansen & Norskov 1999), a PBE variant whose exchange
enhancement uses an exponential instead of a rational form:

    F_x^RPBE(s) = 1 + kappa * (1 - exp(-mu s^2 / kappa))

RPBE shares PBE's correlation, so its correlation conditions are inherited
from PBE verbatim -- a nice cross-check: EC1/EC2/EC7 verdicts must match
PBE's, while the Lieb-Oxford checks exercise the new exchange.

Run:  python examples/custom_functional.py
"""

from repro import VerifierConfig, ascii_map, get_condition, get_functional, verify_pair
from repro.functionals import Functional, register
from repro.functionals.lda_x import eps_x_unif
from repro.functionals.pbe import KAPPA, MU, eps_c_pbe
from repro.pysym.intrinsics import exp


# --- 1. model code (plain Python, liftable by the symbolic executor) --------

def fx_rpbe(s):
    """RPBE exchange enhancement factor."""
    return 1.0 + KAPPA * (1.0 - exp(-MU * s * s / KAPPA))


def eps_x_rpbe(rs, s):
    """RPBE exchange energy per particle."""
    return eps_x_unif(rs) * fx_rpbe(s)


def main() -> None:
    # --- 2. register -----------------------------------------------------------
    rpbe = register(
        Functional(
            name="RPBE",
            family="GGA",
            category="non-empirical",
            exchange_model=eps_x_rpbe,
            correlation_model=eps_c_pbe,  # RPBE reuses PBE correlation
        )
    )
    print(f"registered {rpbe}, complexity={rpbe.complexity()}")

    # --- 3. verify ---------------------------------------------------------------
    config = VerifierConfig(
        split_threshold=0.7, per_call_budget=250, global_step_budget=10_000
    )

    print("\ncorrelation conditions (must match PBE, same correlation):")
    for cid in ("EC1", "EC7"):
        cond = get_condition(cid)
        ours = verify_pair(rpbe, cond, config)
        pbe = verify_pair(get_functional("PBE"), cond, config)
        print(
            f"  {cid}: RPBE={ours.classification():4s} PBE={pbe.classification():4s}"
        )
        assert ours.has_counterexample() == pbe.has_counterexample()

    print("\nLieb-Oxford extension (EC5) on the new exchange:")
    report = verify_pair(rpbe, get_condition("EC5"), config)
    print(f"  RPBE EC5: {report.summary()}")
    # RPBE's F_x saturates at 1 + kappa = 1.804 < 2.27, and PBE's
    # correlation keeps F_xc under the bound, so this verifies:
    print(ascii_map(report, resolution=24))


if __name__ == "__main__":
    main()
