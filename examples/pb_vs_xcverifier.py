#!/usr/bin/env python
"""Reproduce Table II: consistency between the PB grid search and XCVerifier.

Runs both approaches on every applicable DFA-condition pair and classifies
each cell as J (consistent violations), J* (neither finds violations), or
? (XCVerifier exhausted its budget everywhere, so no comparison -- the
SCAN column in the paper).

Run:  python examples/pb_vs_xcverifier.py
"""

import time

from repro import GridSpec, PBChecker, VerifierConfig, run_table_two
from repro.analysis.compare import MISMATCH


def main() -> None:
    config = VerifierConfig(
        split_threshold=0.7, per_call_budget=250, global_step_budget=10_000
    )
    checker = PBChecker(spec=GridSpec(n_rs=161, n_s=161, n_alpha=9))

    t0 = time.time()
    table = run_table_two(verifier_config=config, checker=checker, verbose=True)
    print()
    print(table.render())
    print(f"\nelapsed: {time.time() - t0:.1f} s")

    mismatches = [
        key for key, cell in table.cells.items() if cell == MISMATCH
    ]
    print(f"\nmismatching pairs: {mismatches or 'none'}")
    print("paper's finding: PB and XCVerifier are consistent on every pair")

    # where both find violations, report the overlap detail
    print("\nviolation-region overlap detail:")
    for key, cell in sorted(table.cells.items()):
        if cell != "J":
            continue
        pb = table.pb_results[key]
        report = table.reports[key]
        from repro.analysis.compare import pb_points_covered_fraction
        coverage = pb_points_covered_fraction(pb, report, dilation=1.4)
        print(
            f"  {key[0]:8s} {key[1]}: PB={pb.violated.sum()} bad points, "
            f"XCV={len(report.counterexamples())} cex regions, "
            f"coverage={coverage:.1%}"
        )


if __name__ == "__main__":
    main()
