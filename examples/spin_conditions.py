#!/usr/bin/env python
"""Verifying spin-resolved exact conditions with the same pipeline.

The paper verifies LibXC's spin-resolved implementations; the Pederson-
Burke scans (and our Table I reproduction) work in the zeta = 0 reduced
variables.  This example shows the substrate is not the limitation: the
spin-polarised LDA model code of :mod:`repro.functionals.spin` lifts
through the same symbolic executor, and the delta-complete solver proves
spin-resolved conditions over the full (rs, zeta) box:

1. Ec non-positivity of the full PW92 eps_c(rs, zeta);
2. the exchange spin-scaling identity (an exact condition in its own
   right): eps_x(rs, zeta) / eps_x(rs, 0) equals the closed-form factor;
3. polarisation weakens correlation: eps_c(rs, zeta) >= eps_c(rs, 0).

Run:  python examples/spin_conditions.py
"""

from repro.expr import builder as b
from repro.functionals import vars as V
from repro.functionals.spin import (
    ZETA,
    eps_c_pw92_spin,
    eps_x_unif_spin,
    exchange_spin_factor,
)
from repro.pysym import lift
from repro.solver import Atom, Box, Budget, Conjunction, ICPSolver

BOX = Box.from_bounds({"rs": (1e-4, 5.0), "zeta": (-1.0, 1.0)})


def prove(title: str, violation: Conjunction, box: Box = BOX) -> None:
    # delta must sit below the margins being certified (the identity check
    # uses a 1e-6 threshold, so delta = 1e-9 keeps the weakening harmless)
    solver = ICPSolver(delta=1e-9)
    result = solver.solve(violation, box, Budget(max_steps=60_000))
    status = {
        "unsat": "VERIFIED (no violation exists)",
        "delta-sat": f"violated at {result.model}",
        "timeout": "timeout",
    }[result.status.value]
    print(f"{title}\n  -> {status} ({result.stats.boxes_processed} boxes)\n")


def main() -> None:
    eps_c = lift(eps_c_pw92_spin, V.RS, ZETA)
    eps_c_para = lift(eps_c_pw92_spin, V.RS, 0.0)

    # 1. spin-resolved Ec non-positivity: does eps_c > 0 anywhere?
    prove(
        "EC1 (spin-resolved): eps_c(rs, zeta) <= 0 on rs in (0, 5], |zeta| <= 1",
        Conjunction.of(Atom(eps_c, ">")),
    )

    # 2. exchange spin-scaling identity, checked as a two-sided bound:
    #    |eps_x(rs, zeta) - eps_x(rs, 0) * factor(zeta)| <= 1e-6
    # (the threshold must dominate the solver's delta or the weakened
    # formula is trivially delta-SAT -- the spurious-model phenomenon of
    # the paper's Algorithm 1, here by construction)
    eps_x = lift(eps_x_unif_spin, V.RS, ZETA)
    factor = lift(exchange_spin_factor, ZETA)
    eps_x_scaled = b.mul(lift(eps_x_unif_spin, V.RS, 0.0), factor)
    residual = b.sub(eps_x, eps_x_scaled)
    prove(
        "exchange spin-scaling identity (residual == 0 up to 1e-6)",
        Conjunction.of(Atom(b.sub(b.abs_(residual), 1e-6), ">")),
        # rs bounded away from 0 where eps_x itself diverges
        Box.from_bounds({"rs": (1e-2, 5.0), "zeta": (-1.0, 1.0)}),
    )

    # 3. polarisation weakens correlation: eps_c(rs, zeta) >= eps_c(rs, 0).
    # Equality holds exactly ON the zeta = 0 plane, so the claim is not
    # delta-decidable there; prove it on |zeta| >= 0.05 (by symmetry the
    # positive half suffices)
    gap = b.sub(eps_c, eps_c_para)
    prove(
        "polarisation weakens correlation: eps_c(rs, zeta) >= eps_c(rs, 0) "
        "for zeta >= 0.05",
        Conjunction.of(Atom(gap, "<")),
        Box.from_bounds({"rs": (1e-4, 5.0), "zeta": (0.05, 1.0)}),
    )


if __name__ == "__main__":
    main()
