#!/usr/bin/env python
"""SCAN timeout study (Section VI-A of the paper).

The paper reports that dReal times out on *every* SCAN condition, even
with the input domain reduced 32x, because SCAN's implementation exceeds
1000 operations with nested transcendentals.  This script measures the
same phenomenon in our reproduction:

1. formula complexity per functional (SCAN is the largest);
2. per-step solver cost scaling with formula size;
3. verification coverage vs budget -- SCAN needs far more budget per unit
   of domain than any other functional, and under a paper-equivalent
   budget its whole column degenerates to '?';
4. the domain-reduction experiment: even on a 32x smaller box, tight
   budgets still time out on SCAN.

Run:  python examples/scan_timeout_study.py
"""

import time

from repro import VerifierConfig, encode, get_condition, get_functional, verify_pair
from repro.conditions import PAPER_CONDITIONS
from repro.functionals import paper_functionals
from repro.solver.box import Box
from repro.solver.icp import Budget, ICPSolver
from repro.verifier.regions import Outcome


def complexity_table() -> None:
    print("formula complexity (operation count of the encoded negation):")
    header = "          " + "".join(c.cid.rjust(7) for c in PAPER_CONDITIONS)
    print(header)
    for f in paper_functionals():
        cells = []
        for c in PAPER_CONDITIONS:
            if c.applies_to(f):
                cells.append(str(encode(f, c).complexity()).rjust(7))
            else:
                cells.append("-".rjust(7))
        print(f"{f.name:10s}" + "".join(cells))
    print()


def per_step_cost() -> None:
    print("per-step solver cost (ms/step on a mid-domain box):")
    for f in paper_functionals():
        problem = encode(f, get_condition("EC1"))
        bounds = {"rs": (1.0, 2.0)}
        if "s" in problem.domain.names:
            bounds["s"] = (1.0, 2.0)
        if "alpha" in problem.domain.names:
            bounds["alpha"] = (1.0, 2.0)
        box = Box.from_bounds(bounds)
        solver = ICPSolver(use_probing=False)
        t0 = time.perf_counter()
        result = solver.solve(problem.negation, box, Budget(max_steps=300))
        dt = time.perf_counter() - t0
        steps = result.stats.boxes_processed
        print(f"  {f.name:10s} {1000 * dt / max(steps, 1):7.3f} ms/step ({result.status.value})")
    print()


def coverage_vs_budget() -> None:
    print("SCAN EC1 verified coverage vs global budget (t=1.25):")
    scan = get_functional("SCAN")
    ec1 = get_condition("EC1")
    for budget in (1000, 5000, 20000):
        config = VerifierConfig(
            split_threshold=1.25, per_call_budget=200, global_step_budget=budget
        )
        report = verify_pair(scan, ec1, config)
        fr = report.area_fractions()
        print(
            f"  budget={budget:6d}: {report.classification():3s} "
            f"verified={fr[Outcome.VERIFIED]:6.1%} timeout={fr[Outcome.TIMEOUT]:6.1%}"
        )
    print()


def paper_equivalent_column() -> None:
    """Under a per-call budget equivalent to the paper's wall-clock limit
    (our formulas are ~10x smaller than the LibXC Maple translations, so
    the equivalent step budget is proportionally tighter), the SCAN column
    degenerates to '?' exactly as in Table I."""
    print("SCAN column under paper-equivalent (tight) budgets:")
    scan = get_functional("SCAN")
    config = VerifierConfig(
        split_threshold=1.25, per_call_budget=40, global_step_budget=1500
    )
    for cond in PAPER_CONDITIONS:
        report = verify_pair(scan, cond, config)
        print(f"  SCAN {cond.cid}: {report.classification()}")
    print("  (paper Table I: '?' for all seven)")
    print()


def domain_reduction() -> None:
    print("domain-reduction experiment (Sec. VI-A: 'even reduced 32x'):")
    scan = get_functional("SCAN")
    problem = encode(scan, get_condition("EC3"))
    full = problem.domain
    # shrink every dimension ~3.2x => volume ~32x smaller
    small = Box.from_bounds({
        name: (iv.lo, iv.lo + iv.width() / 3.17) for name, iv in full.items()
    })
    solver = ICPSolver()
    for label, box in (("full domain", full), ("32x smaller", small)):
        result = solver.solve(problem.negation, box, Budget(max_steps=2000))
        print(f"  {label:12s}: {result.status.value} "
              f"({result.stats.boxes_processed} steps)")
    print()


def main() -> None:
    complexity_table()
    per_step_cost()
    coverage_vs_budget()
    paper_equivalent_column()
    domain_reduction()


if __name__ == "__main__":
    main()
