#!/usr/bin/env python
"""Reproduce the region maps of Figures 1 and 2 (ASCII + CSV export).

Figure 1: PBE under {EC1, EC5, EC7}; Figure 2: LYP under {EC1, EC2, EC6}.
For each panel the script renders the XCVerifier map (bottom rows of the
paper's figures) next to the PB grid verdict (top rows), and writes the
raw region records to ``region_maps_<functional>_<cid>.csv``.

Run:  python examples/region_maps.py [--resolution N]
"""

import argparse
import csv

from repro import PBChecker, GridSpec, VerifierConfig, ascii_map, get_condition, get_functional, verify_pair
from repro.pb import ascii_pb_map
from repro.verifier.render import export_rows


def panel(functional_name: str, cid: str, config, checker, resolution: int) -> None:
    functional = get_functional(functional_name)
    condition = get_condition(cid)

    report = verify_pair(functional, condition, config)
    pb = checker.check(functional, condition)

    print("=" * 72)
    print(f"{functional_name} / {cid}: XCVerifier={report.classification()}  "
          f"PB={'violated' if pb.any_violation else 'satisfied'}")
    print("-" * 72)
    print(ascii_map(report, resolution=resolution))
    print()
    print(ascii_pb_map(pb, resolution=resolution))
    if pb.any_violation:
        print(f"PB violation bounds: {pb.violation_bounds()}")
    print()

    out_path = f"region_maps_{functional_name.replace(' ', '_')}_{cid}.csv"
    rows = export_rows(report)
    with open(out_path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=sorted({k for r in rows for k in r}))
        writer.writeheader()
        writer.writerows(rows)
    print(f"wrote {len(rows)} region records to {out_path}\n")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--resolution", type=int, default=40)
    args = parser.parse_args()

    config = VerifierConfig(
        split_threshold=0.4, per_call_budget=250, global_step_budget=25_000
    )
    checker = PBChecker(spec=GridSpec(n_rs=201, n_s=201))

    print("Figure 1 (PBE):")
    for cid in ("EC1", "EC5", "EC7"):
        panel("PBE", cid, config, checker, args.resolution)

    print("Figure 2 (LYP):")
    for cid in ("EC1", "EC2", "EC6"):
        panel("LYP", cid, config, checker, args.resolution)


if __name__ == "__main__":
    main()
