#!/usr/bin/env python
"""Numerical-issues analysis of DFA implementations (paper Section VI-C).

The paper's discussion section sketches the *next* application of formal
methods to DFT: finding and explaining numerical issues in DFA
implementations.  This example runs the three analyses of
:mod:`repro.numerics` on the cases the paper itself names:

1. **PZ81's matching point.**  "Even in the simple case of the LDA, the
   Perdew-Zunger parametrisation ... includes potentially inaccurate
   numerical constants that lead to discontinuities of the
   exchange-correlation energy at a given matching point."  We locate the
   rs = 1 branch boundary and measure the jump.

2. **SCAN's alpha = 1 switch vs the rSCAN line.**  "The sensitivity of the
   SCAN functional requires the use of extremely fine grids ... This led
   some authors to modify the SCAN functional."  We show SCAN's branch
   surfaces are *singular* exactly at the switch and its evaluation keeps
   a benign division channel, while rSCAN/r++SCAN are continuous and
   proven total.

3. **Input sensitivity.**  Condition numbers kappa = |x f'/f| of F_c,
   computed symbolically, showing where each functional amplifies noise
   in the density inputs.

Run:  python examples/numerical_issues.py
"""

from repro.functionals import get_functional
from repro.numerics import check_continuity, check_hazards, sensitivity_map


def section(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    # --- 1. the PZ81 matching-point discontinuity ---------------------------------
    section("1. PZ81: discontinuity at the rs = 1 matching point")
    pz81 = get_functional("PZ81")
    report = check_continuity(pz81.eps_c(), pz81.domain(), n_base_points=16)
    print(report.summary())
    worst = report.worst()
    print(f"worst boundary point: {worst!r}")
    print(
        f"-> the published constants glue the branches only to "
        f"{report.max_value_jump():.3g} Ha (value) / "
        f"{report.max_slope_jump():.3g} Ha/bohr (slope)"
    )

    # --- 2. SCAN's switch vs the regularised line ----------------------------------
    section("2. SCAN vs rSCAN/r++SCAN: the alpha = 1 switching hazard")
    for name in ("SCAN", "rSCAN", "r++SCAN"):
        f = get_functional(name)
        cont = check_continuity(f.fc(), f.domain(), n_base_points=6)
        haz = check_hazards(f.fc(), f.domain())
        print(f"{name:8s} continuity: {cont.summary()}")
        print(f"{name:8s} hazards   : {haz.summary()}")
        for verdict in haz.triggered():
            loc = ", ".join(
                f"{k}={v:.4g}" for k, v in sorted((verdict.witness or {}).items())
            )
            print(f"           {verdict.hazard.kind} [{verdict.status}] near {loc}")
    print(
        "-> SCAN's branch surfaces are singular at alpha = 1 (evaluation "
        "relies on the guard);\n   the rSCAN polynomial crossover removes "
        "both the singularity and the division channel."
    )

    # --- 3. sensitivity maps --------------------------------------------------------
    section("3. Condition numbers kappa = |x dF_c/dx / F_c|")
    for name in ("PBE", "LYP", "SCAN"):
        f = get_functional(name)
        per_dim = 33 if f.family == "MGGA" else 65
        smap = sensitivity_map(f, "fc", per_dim=per_dim)
        print(smap.summary())
        for var in sorted(smap.kappa):
            peak = smap.argmax(var)
            loc = ", ".join(f"{k}={v:.4g}" for k, v in sorted(peak.items()))
            print(f"    kappa_{var} peaks at {loc}")
    print(
        "-> LYP's F_c crosses zero inside the domain, so its condition "
        "number diverges near\n   the nodal line -- tiny density noise "
        "flips the sign of the correlation energy\n   exactly where the "
        "EC1 violations live."
    )


if __name__ == "__main__":
    main()
