#!/usr/bin/env python
"""Quickstart: verify one DFT exact condition for one functional.

Checks the Ec non-positivity condition (EC1) for the LYP correlation
functional -- the paper's most clear-cut result: LYP's correlation energy
turns *positive* for reduced gradients s above ~1.7, violating a known
property of the exact functional.

Run:  python examples/quickstart.py
"""

from repro import VerifierConfig, ascii_map, get_condition, get_functional, verify_pair


def main() -> None:
    lyp = get_functional("LYP")
    ec1 = get_condition("EC1")

    print(f"functional : {lyp}")
    print(f"condition  : {ec1}")
    print(f"local form : {ec1.local_condition(lyp)!r}"[:120])
    print()

    config = VerifierConfig(
        split_threshold=0.4,     # the paper uses t = 0.05; coarser is faster
        per_call_budget=300,     # ICP steps per solver call ("2h dReal limit")
        global_step_budget=40_000,
    )
    report = verify_pair(lyp, ec1, config)

    print(report.summary())
    print()
    print(ascii_map(report, resolution=40))
    print()

    cex = report.counterexamples()
    print(f"{len(cex)} counterexample regions; first three models:")
    for record in cex[:3]:
        rs, s = record.model["rs"], record.model["s"]
        print(f"  rs = {rs:.4f}, s = {s:.4f}  (box {record.box})")

    bbox = report.counterexample_bbox()
    print(f"\nviolation bounding box: {bbox}")
    print("paper (Fig. 2d): counterexamples at s > 1.6563, rest verified")


if __name__ == "__main__":
    main()
