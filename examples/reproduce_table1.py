#!/usr/bin/env python
"""Reproduce Table I: verification outcomes for all 31 DFA-condition pairs.

Usage:
    python examples/reproduce_table1.py             # fast preset (~3 min)
    python examples/reproduce_table1.py --full      # closer to paper (~15 min)
    python examples/reproduce_table1.py --parallel  # fan pairs over processes

The fast preset uses a coarse split threshold (0.7) and small solver
budgets; --full tightens both (threshold 0.2).  The paper's exact setting
(t = 0.05, 2-hour dReal calls) is reachable with --threshold/--budget but
takes hours, as it did for the authors.
"""

import argparse
import time

from repro import VerifierConfig, run_table_one
from repro.analysis.tables import PAPER_TABLE_ONE
from repro.conditions import applicable_pairs
from repro.verifier.parallel import verify_pairs_parallel


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="tighter budgets")
    parser.add_argument("--parallel", action="store_true", help="process fan-out")
    parser.add_argument("--threshold", type=float, default=None)
    parser.add_argument("--budget", type=int, default=None)
    args = parser.parse_args()

    if args.full:
        threshold, per_call, global_budget = 0.2, 400, 60_000
    else:
        threshold, per_call, global_budget = 0.7, 250, 10_000
    if args.threshold is not None:
        threshold = args.threshold
    if args.budget is not None:
        global_budget = args.budget

    config = VerifierConfig(
        split_threshold=threshold,
        per_call_budget=per_call,
        global_step_budget=global_budget,
    )
    print(
        f"config: t={threshold}, per-call={per_call} steps, "
        f"global={global_budget} steps, parallel={args.parallel}"
    )

    t0 = time.time()
    if args.parallel:
        reports = verify_pairs_parallel(applicable_pairs(), config)
        from repro.analysis.tables import TableOne
        from repro.conditions import PAPER_CONDITIONS
        from repro.functionals import paper_functionals

        table = TableOne(
            functionals=tuple(paper_functionals()),
            conditions=tuple(PAPER_CONDITIONS),
            reports=reports,
        )
    else:
        table = run_table_one(config, verbose=True)
    elapsed = time.time() - t0

    print()
    print(table.render())
    print(f"\nelapsed: {elapsed:.1f} s")

    # cell-by-cell agreement with the published table
    cells = table.as_dict()
    matches = total = 0
    diffs = []
    for cid, row in PAPER_TABLE_ONE.items():
        for fname, expected in row.items():
            if expected == "-":
                continue
            total += 1
            got = cells[cid][fname]
            if got == expected:
                matches += 1
            else:
                diffs.append(f"  {fname}/{cid}: paper={expected} ours={got}")
    print(f"\nagreement with paper's Table I: {matches}/{total} cells")
    if diffs:
        print("differences (budget-dependent cells, see EXPERIMENTS.md):")
        print("\n".join(diffs))


if __name__ == "__main__":
    main()
