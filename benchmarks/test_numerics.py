"""E11 -- the Section VI-C numerical-issues analyses as a benchmark.

Three measurements the paper's discussion section proposes as future
work, run across the functional families:

1. **PZ81 matching point**: the published constants leave a ~3.2e-5 Ha
   discontinuity of eps_c at rs = 1 ("potentially inaccurate numerical
   constants that lead to discontinuities of the exchange-correlation
   energy at a given matching point").
2. **SCAN's alpha = 1 channel vs the rSCAN line**: SCAN's switching
   functions have essential singularities exactly at the branch boundary
   (singular branch surfaces; benign-but-fragile division channel), which
   rSCAN/r++SCAN remove (continuous crossover, total evaluation).
3. **Hazard totality across all registered DFAs**: every partial
   operation of every lifted F_c proven in-domain or witnessed.
"""

from __future__ import annotations

import pytest

from repro.functionals import all_functionals, get_functional
from repro.numerics import check_continuity, check_hazards

PZ81 = get_functional("PZ81")
SCAN = get_functional("SCAN")
RSCAN = get_functional("rSCAN")


def test_pz81_matching_point(benchmark):
    report = benchmark.pedantic(
        lambda: check_continuity(PZ81.eps_c(), PZ81.domain(), n_base_points=16),
        rounds=1,
        iterations=1,
    )
    jump = report.max_value_jump()
    print(f"\nPZ81 eps_c jump at rs=1: {jump:.4g} Ha (published constants)")
    assert jump == pytest.approx(3.2066e-5, rel=1e-2)


def test_scan_vs_rscan_boundaries(benchmark):
    def run():
        scan_rep = check_continuity(SCAN.fc(), SCAN.domain(), n_base_points=6)
        rscan_rep = check_continuity(RSCAN.fc(), RSCAN.domain(), n_base_points=6)
        return scan_rep, rscan_rep

    scan_rep, rscan_rep = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nSCAN  : {scan_rep.summary()}")
    print(f"rSCAN : {rscan_rep.summary()}")
    assert scan_rep.singular_findings()  # essential singularity at alpha=1
    assert rscan_rep.is_continuous(tol=1e-8)  # polynomial crossover


def test_hazard_totality_sweep(benchmark):
    """Prove/refute every partial operation of every registered F_c."""

    def sweep():
        out = {}
        for functional in all_functionals():
            report = check_hazards(functional.fc(), functional.domain())
            out[functional.name] = report
        return out

    reports = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    fragile = {}
    for name, report in sorted(reports.items()):
        print(f"{name:10s}: {report.summary()}")
        if not report.is_total:
            fragile[name] = report
    # the SCAN family (and only it) carries non-'safe' sites: SCAN's own
    # alpha=1 channel is benign-not-safe; every plain GGA/LDA is total
    for name in ("PBE", "LYP", "AM05", "VWN RPA", "PW91", "BLYP", "PZ81",
                 "Wigner", "VWN5", "PBEsol", "revPBE"):
        assert reports[name].is_total, name
    assert not reports["SCAN"].is_total
    assert all(v.status == "benign" for v in reports["SCAN"].triggered())
