"""Extension bench -- SCAN vs regularized SCAN (paper Section VI-A).

The paper proposes the rSCAN/r2SCAN progression as "a fascinating use
case" for verification, hypothesising that regularisation (removing the
essential singularity of the switching function at alpha = 1) should help
the solver.  This bench measures the comparison and documents the nuanced
outcome we observe:

* rSCAN's model is *totally* evaluable (no diverging untaken branch at
  alpha = 1), eliminating the inconclusive NaN channel, and
* its enclosures across the alpha = 1 plane come from a polynomial rather
  than a hull over an exponential pole -- but
* the degree-7 interpolation polynomial has large alternating
  coefficients, so naive (Horner) interval evaluation suffers exactly the
  dependency problem; at equal budgets plain HC4 does *not* automatically
  verify more of rSCAN than SCAN.  Tightening budgets or enclosures (e.g.
  centered forms) is where the paper's future-work direction actually
  leads.
"""

from __future__ import annotations


from repro.conditions import EC1
from repro.functionals import get_functional
from repro.solver.box import Box
from repro.solver.contractor import enclosure
from repro.verifier import encode, verify_pair
from repro.verifier.regions import Outcome
from repro.verifier.verifier import VerifierConfig

SCAN = get_functional("SCAN")
RSCAN = get_functional("rSCAN")


def test_rscan_total_evaluation():
    """rSCAN removes SCAN's alpha = 1 evaluation hazard entirely."""
    import math
    from repro.expr.evaluator import evaluate

    scan_val = evaluate(SCAN.fc(), {"rs": 2.0, "s": 1.0, "alpha": 1.0})
    rscan_val = evaluate(RSCAN.fc(), {"rs": 2.0, "s": 1.0, "alpha": 1.0})
    print(f"\nscalar F_c at alpha=1: SCAN={scan_val}, rSCAN={rscan_val}")
    # SCAN's DAG evaluation hits the diverging untaken branch (NaN);
    # rSCAN evaluates cleanly
    assert math.isnan(scan_val)
    assert math.isfinite(rscan_val)


def test_enclosure_width_across_alpha_one(benchmark):
    """Enclosure quality of F_c on a box straddling alpha = 1."""
    box = Box.from_bounds({"rs": (1.9, 2.1), "s": (0.9, 1.1), "alpha": (0.9, 1.1)})

    def widths():
        return (
            enclosure(SCAN.fc(), box).width(),
            enclosure(RSCAN.fc(), box).width(),
        )

    scan_w, rscan_w = benchmark.pedantic(widths, rounds=1, iterations=1)
    print(f"\nF_c enclosure width across alpha=1: SCAN={scan_w:.4f}, rSCAN={rscan_w:.4f}")
    # THE finding: SCAN's undecided-Ite hull includes the exponential pole
    # of the untaken branch, so the enclosure across alpha = 1 is unbounded
    # -- no budget can verify such a box without splitting exactly at the
    # switch.  rSCAN's polynomial switching keeps the enclosure finite.
    import math

    assert math.isinf(scan_w)
    assert rscan_w < 10.0


def test_verification_coverage_comparison(benchmark):
    config = VerifierConfig(
        split_threshold=1.25, per_call_budget=200, global_step_budget=8000
    )

    def run():
        return (
            verify_pair(SCAN, EC1, config),
            verify_pair(RSCAN, EC1, config),
        )

    scan_rep, rscan_rep = benchmark.pedantic(run, rounds=1, iterations=1)
    fs = scan_rep.area_fractions()
    fr = rscan_rep.area_fractions()
    print(
        f"\nEC1 coverage at equal budget: "
        f"SCAN verified={fs[Outcome.VERIFIED]:.1%} timeout={fs[Outcome.TIMEOUT]:.1%}; "
        f"rSCAN verified={fr[Outcome.VERIFIED]:.1%} timeout={fr[Outcome.TIMEOUT]:.1%}"
    )
    # neither produces (spurious) counterexamples, both remain hard:
    assert not scan_rep.has_counterexample()
    assert not rscan_rep.has_counterexample()
    assert fs[Outcome.TIMEOUT] > 0.3
    assert fr[Outcome.TIMEOUT] > 0.3


def test_formula_sizes():
    scan_ops = encode(SCAN, EC1).complexity()
    rscan_ops = encode(RSCAN, EC1).complexity()
    print(f"\nEC1 formula ops: SCAN={scan_ops}, rSCAN={rscan_ops}")
    # the polynomial interpolation costs operations but removes the pole
    assert rscan_ops > 0
