"""Microbenchmarks of the verification service.

The service's pitch is that repeated queries are O(lookup) instead of
O(solve): duplicate submissions coalesce onto in-flight computations or
hit the content-hash store, paying only HTTP + key-cache cost.  This
file measures and gates exactly that, publishing the timings into
``BENCH_service.json`` (the ``BENCH_SERVICE_JSON`` environment variable
names the file; CI uploads it next to ``BENCH_solver.json``).
"""

from __future__ import annotations

import json
import os
import platform
import threading
import time

import pytest


def record_bench(section: str, **values) -> None:
    """Merge one section into the service perf artifact (if enabled)."""
    path = os.environ.get("BENCH_SERVICE_JSON")
    if not path:
        return
    doc: dict = {}
    if os.path.exists(path):
        with open(path) as fh:
            doc = json.load(fh)
    doc.setdefault("meta", {}).update(
        {
            "python": platform.python_version(),
            "commit": os.environ.get("GITHUB_SHA", ""),
            "cpus": os.cpu_count(),
        }
    )
    doc.setdefault(section, {}).update(values)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


SPEC = {
    "kind": "table1",
    "functionals": ["LYP", "Wigner"],
    "conditions": ["EC1", "EC6"],
    "config": {"per_call_budget": 100, "global_step_budget": 2000},
}
DUPLICATES = 4


def test_duplicate_submissions_amortize_cold_compute(tmp_path):
    """Gate: coalesced/cached duplicate submissions >= 5x faster than the
    cold compute of the same slice (skips the assertion below 2 CPUs --
    on a single CPU the server thread and the measuring client fight for
    the interpreter and the cold baseline is itself degraded)."""
    from repro.service.client import ServiceClient
    from repro.service.server import ThreadedService

    with ThreadedService(tmp_path / "bench.jsonl", max_workers=0) as svc:
        client = ServiceClient(svc.url, timeout=600)

        t0 = time.perf_counter()
        cold = client.run(SPEC)
        cold_s = time.perf_counter() - t0
        assert cold["state"] == "done"
        assert cold["sources"]["computed"] == 4

        # duplicate burst: all four clients at once, wall-clock for the
        # whole batch (each is pure lookup -- no cell may recompute)
        results: dict = {}

        def go(tag):
            results[tag] = ServiceClient(svc.url, timeout=600).run(SPEC)

        threads = [
            threading.Thread(target=go, args=(i,)) for i in range(DUPLICATES)
        ]
        t0 = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=600)
        warm_s = time.perf_counter() - t0
        assert not any(t.is_alive() for t in threads)

    recomputed = 0
    for result in results.values():
        assert result["state"] == "done"
        recomputed += result["sources"]["computed"]
    assert recomputed == 0, "a duplicate submission recomputed cells"

    ratio = cold_s / warm_s if warm_s > 0 else float("inf")
    print(
        f"\nservice: cold compute {cold_s*1e3:.0f} ms, "
        f"{DUPLICATES} duplicate submissions {warm_s*1e3:.0f} ms, "
        f"amortization {ratio:.1f}x"
    )
    record_bench(
        "service_coalesce",
        cold_ms=cold_s * 1e3,
        warm_batch_ms=warm_s * 1e3,
        duplicates=DUPLICATES,
        speedup=ratio,
    )
    if (os.cpu_count() or 1) < 2:
        pytest.skip("service amortization gate needs >= 2 CPUs")
    assert ratio >= 5.0, (
        f"duplicate submissions only {ratio:.1f}x faster than cold compute"
    )


def test_warm_submission_latency(tmp_path):
    """Informational: end-to-end latency of a fully-cached submission
    (submit + progress stream + result fetch over real HTTP)."""
    from repro.service.client import ServiceClient
    from repro.service.server import ThreadedService

    spec = {
        "kind": "table1",
        "functionals": ["Wigner"],
        "conditions": ["EC1"],
        "config": {"per_call_budget": 100, "global_step_budget": 400},
    }
    with ThreadedService(tmp_path / "lat.jsonl", max_workers=0) as svc:
        client = ServiceClient(svc.url, timeout=600)
        client.run(spec)  # populate store + key cache
        best = float("inf")
        for _ in range(5):
            t0 = time.perf_counter()
            result = client.run(spec)
            best = min(best, time.perf_counter() - t0)
            assert result["sources"] == {
                "computed": 0, "cache": 1, "coalesced": 0,
            }
    print(f"\nservice: warm submission round-trip {best*1e3:.1f} ms")
    record_bench("service_warm_latency", best_ms=best * 1e3)
    # sanity ceiling only -- a cached submission must stay interactive
    assert best < 5.0, f"cached submission took {best:.2f} s"


# ---------------------------------------------------------------------------
# QoS lanes: interactive wait under batch load
# ---------------------------------------------------------------------------

LANE_CELL_DELAY = 0.05
LANE_BATCH_CONDITIONS = ("EC1", "EC2", "EC3", "EC6")
LANE_PROBE_FUNCTIONALS = ("Wigner", "LYP", "VWN RPA", "SCAN")
LANE_TINY = {"per_call_budget": 100, "global_step_budget": 400}


def _lane_stub_compute(self, cell):
    """Store-writing compute stub with a fixed per-cell cost, so the bench
    measures *scheduling* (queue wait), not solver throughput."""
    time.sleep(LANE_CELL_DELAY)
    payload = {"stub": list(cell.address)}
    if cell.kind == "numerics":
        payload["kind"] = f"numerics/{cell.address[2]}"
    self._store.put_payload(cell.content_key, payload)
    return payload


def _probe_latency(tmp_path, qos_lanes):
    """Submit four batch sweeps, then four interactive probes; return the
    slowest probe round-trip and the preemption count."""
    import asyncio

    from repro.service.scheduler import VerificationScheduler
    from repro.verifier.store import open_store

    async def wait_done(job):
        while not job.done:
            await job.wait_change(job.version)

    async def body():
        store = open_store(tmp_path / f"lanes_{int(qos_lanes)}.jsonl")
        sched = VerificationScheduler(
            store, max_workers=0, max_inflight=1, qos_lanes=qos_lanes
        )
        await sched.start()
        batch = [
            await sched.submit(
                {
                    "kind": "table1",
                    "functionals": ["Wigner", "LYP", "VWN RPA"],
                    "conditions": [condition],
                    "config": dict(LANE_TINY),
                }
            )
            for condition in LANE_BATCH_CONDITIONS
        ]
        await asyncio.sleep(LANE_CELL_DELAY / 2)

        t0 = time.monotonic()
        probes = [
            await sched.submit(
                {
                    "kind": "verify",
                    "functional": functional,
                    "condition": "EC7",
                    "config": dict(LANE_TINY),
                }
            )
            for functional in LANE_PROBE_FUNCTIONALS
        ]
        finished = []

        async def watch(job):
            await wait_done(job)
            finished.append(time.monotonic() - t0)

        await asyncio.gather(*(watch(job) for job in probes))
        worst = max(finished)
        for job in batch:
            await wait_done(job)
        preemptions = sched.lane_preemptions
        await sched.drain()
        store.close()
        return worst, preemptions

    return asyncio.run(body())


def test_interactive_probe_wait_drops_with_qos_lanes(tmp_path, monkeypatch):
    """Gate: with QoS lanes, interactive probes submitted behind four
    batch sweeps finish sooner than under the fair single-ring scheduler.
    Compute is stubbed to a fixed per-cell cost, so the comparison is
    deterministic and CPU-count independent."""
    from repro.service.scheduler import VerificationScheduler

    monkeypatch.setattr(
        VerificationScheduler, "_compute_cell", _lane_stub_compute
    )

    worst_without, _ = _probe_latency(tmp_path, qos_lanes=False)
    worst_with, preemptions = _probe_latency(tmp_path, qos_lanes=True)

    ratio = worst_without / worst_with if worst_with > 0 else float("inf")
    print(
        f"\nservice lanes: slowest probe {worst_with*1e3:.0f} ms with lanes, "
        f"{worst_without*1e3:.0f} ms without, {ratio:.1f}x, "
        f"{preemptions} preemptions"
    )
    record_bench(
        "service_qos_lanes",
        interactive_p99_with_lanes_ms=worst_with * 1e3,
        interactive_p99_without_lanes_ms=worst_without * 1e3,
        improvement=ratio,
        preemptions=preemptions,
        batch_jobs=len(LANE_BATCH_CONDITIONS),
        probes=len(LANE_PROBE_FUNCTIONALS),
    )
    assert preemptions >= 1, "interactive probes never preempted batch work"
    assert ratio >= 1.2, (
        f"QoS lanes improved the slowest probe only {ratio:.2f}x"
    )
