"""E1 -- Table I: XCVerifier outcomes for all 31 DFA-condition pairs.

Regenerates the paper's Table I (at benchmark budgets) and checks the
reproduced *shape*: which pairs have counterexamples, which verify, which
exhaust the solver.
"""

from __future__ import annotations


from repro.analysis.tables import PAPER_TABLE_ONE

from _settings import BENCH_CONFIG


def test_table1_regenerate(benchmark, table_one_result):
    """Regenerate Table I (the run itself happens in the session fixture;
    the benchmark times one representative pair re-verification)."""
    from repro.conditions import EC1
    from repro.functionals import get_functional
    from repro.verifier import verify_pair

    def one_pair():
        return verify_pair(get_functional("LYP"), EC1, BENCH_CONFIG)

    report = benchmark.pedantic(one_pair, rounds=1, iterations=1)
    assert report.classification() == "CEX"

    table = table_one_result
    print()
    print(table.render())

    # -- shape assertions against the paper's Table I -------------------------
    cells = table.as_dict()

    # LYP: counterexamples for ALL applicable conditions (the paper's
    # strongest finding: the empirical DFA violates everything somewhere)
    for cid in ("EC1", "EC2", "EC3", "EC6", "EC7"):
        assert cells[cid]["LYP"] == "CEX", f"LYP {cid}"

    # PBE: EC7 is the one genuine violation; EC5 verifies fully
    assert cells["EC7"]["PBE"] == "CEX"
    assert cells["EC5"]["PBE"] == "OK"
    assert cells["EC1"]["PBE"] in ("OK", "OK*")
    # the remaining PBE cells are budget-sensitive between OK* and ?
    # (thin EC margins at large s, see EXPERIMENTS.md) but never CEX
    for cid in ("EC2", "EC3", "EC6", "EC4"):
        assert cells[cid]["PBE"] in ("OK", "OK*", "?"), f"PBE {cid}"

    # VWN RPA: everything verified (EC7 possibly partial, as in the paper)
    for cid in ("EC1", "EC2", "EC3", "EC6"):
        assert cells[cid]["VWN RPA"] == "OK", f"VWN {cid}"
    assert cells["EC7"]["VWN RPA"] in ("OK", "OK*")

    # AM05: no counterexamples anywhere
    for cid in ("EC1", "EC2", "EC3", "EC6", "EC7", "EC4", "EC5"):
        assert cells[cid]["AM05"] != "CEX", f"AM05 {cid}"

    # SCAN: hardest column -- never fully verified, never a counterexample
    for cid in ("EC1", "EC2", "EC3", "EC6", "EC7", "EC4", "EC5"):
        assert cells[cid]["SCAN"] in ("OK*", "?"), f"SCAN {cid}"

    # LO conditions not applicable to correlation-only DFAs
    for cid in ("EC4", "EC5"):
        assert cells[cid]["LYP"] == "-"
        assert cells[cid]["VWN RPA"] == "-"


def test_table1_agreement_count(table_one_result):
    """Count exact cell agreement with the published Table I."""
    cells = table_one_result.as_dict()
    total = matches = 0
    for cid, row in PAPER_TABLE_ONE.items():
        for fname, expected in row.items():
            if expected == "-":
                assert cells[cid][fname] == "-"
                continue
            total += 1
            if cells[cid][fname] == expected:
                matches += 1
    print(f"\nTable I cell agreement with paper: {matches}/{total}")
    # the CEX/OK cells must agree; budget-dependent OK*/? boundaries may
    # drift (documented in EXPERIMENTS.md), so require a strong majority
    assert total == 31
    assert matches >= 20
