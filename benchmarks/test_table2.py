"""E2 -- Table II: consistency between the PB baseline and XCVerifier.

Runs both approaches on every applicable pair, reusing the Table I
verification reports, and checks the paper's headline: *no* mismatches --
wherever both approaches produce a verdict, they agree.
"""

from __future__ import annotations


from repro.analysis.compare import (
    CONSISTENT,
    MISMATCH,
    NOT_INCONSISTENT,
    run_table_two,
)
from repro.functionals import get_functional
from repro.pb.checker import PBChecker

from _settings import BENCH_CONFIG, BENCH_SPEC


def test_table2_regenerate(benchmark, table_one_result):
    checker = PBChecker(spec=BENCH_SPEC)

    def build():
        return run_table_two(
            verifier_config=BENCH_CONFIG,
            checker=checker,
            reports=table_one_result.reports,
        )

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    print()
    print(table.render())

    cells = table.as_dict()

    # the paper's finding: results are never *inconsistent*
    for cid, row in cells.items():
        for fname, cell in row.items():
            assert cell != MISMATCH, f"{fname}/{cid} mismatch"

    # LYP: PB and XCVerifier find the same violation regions
    for cid in ("EC1", "EC2", "EC3", "EC6", "EC7"):
        assert cells[cid]["LYP"] == CONSISTENT, f"LYP {cid}"

    # PBE EC7: both find the upper-left violation region
    assert cells["EC7"]["PBE"] == CONSISTENT

    # clean pairs are "not inconsistent"
    assert cells["EC1"]["VWN RPA"] == NOT_INCONSISTENT
    assert cells["EC5"]["PBE"] == NOT_INCONSISTENT


def test_table2_pb_violation_coverage(table_one_result):
    """PB's violating points must sit inside XCVerifier's cex regions."""
    from repro.analysis.compare import pb_points_covered_fraction
    from repro.conditions import EC1

    checker = PBChecker(spec=BENCH_SPEC)
    pb = checker.check(get_functional("LYP"), EC1)
    report = table_one_result.reports[("LYP", "EC1")]
    coverage = pb_points_covered_fraction(
        pb, report, dilation=2 * BENCH_CONFIG.split_threshold
    )
    print(f"\nLYP/EC1: {coverage:.1%} of PB violations inside XCV cex regions")
    assert coverage > 0.9
