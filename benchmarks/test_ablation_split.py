"""E7 -- ablation: the domain-splitting technique of Algorithm 1.

Section III-B claims domain splitting "greatly improves the performance of
VERIFIER".  We verify the same pair (i) with Algorithm 1's recursion and
(ii) as a single monolithic solver call with the same total budget, and
compare how much of the domain gets decided.
"""

from __future__ import annotations


from repro.conditions import EC1
from repro.functionals import get_functional
from repro.solver.icp import Budget, ICPSolver, SolverStatus
from repro.verifier import encode, verify_pair
from repro.verifier.regions import Outcome
from repro.verifier.verifier import VerifierConfig


PBE = get_functional("PBE")


def test_split_vs_monolithic(benchmark):
    total_budget = 6000

    problem = encode(PBE, EC1)

    # (i) Algorithm 1 with splitting
    config = VerifierConfig(
        split_threshold=0.7, per_call_budget=250, global_step_budget=total_budget
    )

    def with_split():
        return verify_pair(PBE, EC1, config)

    report = benchmark.pedantic(with_split, rounds=1, iterations=1)
    decided = report.area_fractions()[Outcome.VERIFIED]

    # (ii) one monolithic call with the same budget
    solver = ICPSolver()
    mono = solver.solve(problem.negation, problem.domain, Budget(max_steps=total_budget))

    print(f"\nwith splitting : verified {decided:.1%} of the domain")
    print(f"monolithic call: status={mono.status.value} after {mono.stats.boxes_processed} steps")

    # the monolithic call cannot decide the domain within budget...
    assert mono.status is SolverStatus.TIMEOUT
    # ...while the splitting verifier certifies a substantial fraction
    assert decided > 0.1


def test_split_on_counterexample_isolates_regions():
    """Splitting after a valid cex isolates violating subregions (the
    paper's motivation for splitting on SAT too)."""
    from repro.conditions import EC1 as C
    lyp = get_functional("LYP")

    base = dict(split_threshold=0.7, per_call_budget=250, global_step_budget=8000)
    with_split = verify_pair(lyp, C, VerifierConfig(**base, split_on_counterexample=True))
    without = verify_pair(lyp, C, VerifierConfig(**base, split_on_counterexample=False))

    # without splitting, the first cex stops refinement: a single huge region
    assert len(without.counterexamples()) < len(with_split.counterexamples())
    # splitting recovers verified area that the monolithic cex hid
    assert (
        with_split.area_fractions()[Outcome.VERIFIED]
        > without.area_fractions()[Outcome.VERIFIED]
    )
    print(
        f"\ncex regions: split={len(with_split.counterexamples())}, "
        f"no-split={len(without.counterexamples())}; verified area "
        f"{with_split.area_fractions()[Outcome.VERIFIED]:.1%} vs "
        f"{without.area_fractions()[Outcome.VERIFIED]:.1%}"
    )
