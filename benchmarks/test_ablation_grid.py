"""E9 -- ablation: PB grid resolution and derivative error.

Section IV-A: PB uses dense grids and numeric gradients.  This benchmark
sweeps the grid resolution, measuring (i) verdict stability, (ii) the
numeric-derivative error against the symbolic derivative (the approximation
the paper's symbolic encoding eliminates), and (iii) runtime scaling of the
vectorised checker.
"""

from __future__ import annotations

import numpy as np

from repro.conditions import EC1, EC7
from repro.expr.codegen import compile_numpy
from repro.expr.derivative import derivative
from repro.functionals import get_functional
from repro.functionals.vars import RS
from repro.pb.checker import PBChecker
from repro.pb.grid import GridSpec
from repro.pb.gradients import d_drs


def test_grid_resolution_sweep(benchmark):
    lyp = get_functional("LYP")
    verdicts = {}

    def run():
        for n in (51, 101, 201, 401):
            checker = PBChecker(spec=GridSpec(n_rs=n, n_s=n))
            res = checker.check(lyp, EC1)
            verdicts[n] = (res.any_violation, res.violation_bounds()["s"][0])
        return verdicts

    benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nLYP/EC1 violation onset (s) by grid resolution:")
    for n, (violated, onset) in sorted(verdicts.items()):
        print(f"  n={n:4d}: violated={violated}  s_onset={onset:.4f}")

    # verdict is resolution-independent; the onset estimate converges
    assert all(v for v, _ in verdicts.values())
    onsets = [verdict[1] for _, verdict in sorted(verdicts.items())]
    assert abs(onsets[-1] - onsets[-2]) <= abs(onsets[1] - onsets[0]) + 1e-9


def test_derivative_error_shrinks_with_resolution():
    pbe = get_functional("PBE")
    fc_kernel = pbe.fc_kernel()
    exact = compile_numpy(derivative(pbe.fc(), RS), arg_order=pbe.variables)

    errors = {}
    for n in (101, 401, 1601):
        rs = np.linspace(1e-4, 5.0, n)
        s = np.full_like(rs, 2.0)
        approx = d_drs(fc_kernel(rs, s), rs)
        err = np.abs(approx - exact(rs, s))
        errors[n] = float(err[2:-2].max())
    print(f"\nmax |numeric - symbolic| dF_c/drs: {errors}")
    assert errors[401] < errors[101]
    assert errors[1601] < errors[401]

    # near rs -> 0 the derivative is steep: error there dominates, which is
    # the failure mode symbolic differentiation avoids
    rs = np.linspace(1e-4, 5.0, 401)
    s = np.full_like(rs, 2.0)
    err = np.abs(d_drs(fc_kernel(rs, s), rs) - exact(rs, s))
    assert np.nanargmax(err) < 10


def test_checker_runtime_scales_linearly(benchmark):
    """The vectorised checker's cost is O(points) -- one kernel pass."""
    import time
    pbe = get_functional("PBE")
    times = {}

    def run():
        # warm-up: first check pays one-off kernel compilation/caching costs
        PBChecker(spec=GridSpec(n_rs=51, n_s=51)).check(pbe, EC7)
        for n in (101, 202, 404):
            checker = PBChecker(spec=GridSpec(n_rs=n, n_s=n))
            best = float("inf")
            for _ in range(3):  # best-of-3 damps scheduler noise
                t0 = time.perf_counter()
                checker.check(pbe, EC7)
                best = min(best, time.perf_counter() - t0)
            times[n] = best
        return times

    benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nPB checker runtime by resolution: { {k: round(v, 4) for k, v in times.items()} }")
    # 16x the points should cost far less than 64x the time
    assert times[404] < 64 * max(times[101], 1e-3)
