"""E10 -- ablation: the first-order (interval Newton) contractor.

HC4 alone is syntax-directed and stalls on derivative-heavy residuals
where every variable occurs many times (the interval dependency problem).
The mean-value contractor sees the residual through its symbolic
derivative instead.  We prove the *same* UNSAT sub-problem -- the negation
of PBE's Ec scaling inequality (EC2) on a box where the condition holds --
with and without Newton and compare boxes processed.

Expected shape: Newton cuts the box count substantially (measured ~2.4x
on this problem) at a modest per-box cost; the verdict never changes
(it is an accelerator, not a semantics change).
"""

from __future__ import annotations


from repro.conditions import EC2
from repro.functionals import get_functional
from repro.solver import Box, Budget, ICPSolver
from repro.verifier.encoder import encode

PBE = get_functional("PBE")

#: a box on which EC2 holds for PBE: the negation is UNSAT but HC4 needs
#: hundreds of bisections to prove it
SUB_BOX = Box.from_bounds({"rs": (1.25, 2.5), "s": (0.0, 1.25)})

BUDGET = 40_000


def _prove(use_newton: bool):
    problem = encode(PBE, EC2)
    solver = ICPSolver(use_newton=use_newton)
    result = solver.solve(problem.negation, SUB_BOX, Budget(max_steps=BUDGET))
    assert result.is_unsat
    return result


def test_newton_off(benchmark):
    result = benchmark.pedantic(_prove, args=(False,), rounds=1, iterations=1)
    print(f"\nHC4 only      : {result.stats.boxes_processed} boxes")


def test_newton_on(benchmark):
    result = benchmark.pedantic(_prove, args=(True,), rounds=1, iterations=1)
    print(f"\nHC4 + Newton  : {result.stats.boxes_processed} boxes")


def test_newton_reduces_boxes():
    baseline = _prove(False).stats.boxes_processed
    accelerated = _prove(True).stats.boxes_processed
    ratio = baseline / max(accelerated, 1)
    print(
        f"\nboxes processed: HC4={baseline}, HC4+Newton={accelerated} "
        f"({ratio:.2f}x fewer)"
    )
    assert accelerated < baseline


def test_newton_verdicts_unchanged_across_conditions():
    """Accelerator property: same classification with and without Newton
    on quick runs of three PBE conditions."""
    from repro.conditions import get_condition
    from repro.verifier.verifier import Verifier, VerifierConfig

    config = VerifierConfig(
        split_threshold=0.7, per_call_budget=250, global_step_budget=4000
    )
    for cid in ("EC1", "EC5", "EC7"):
        problem = encode(PBE, get_condition(cid))
        outcomes = {}
        for use_newton in (False, True):
            solver = ICPSolver(
                delta=config.delta, precision=config.precision, use_newton=use_newton
            )
            report = Verifier(config, solver=solver).verify(problem)
            outcomes[use_newton] = report.has_counterexample()
        assert outcomes[False] == outcomes[True], cid
