"""E3/E4 -- Figure 1: PBE region maps under PB (top row) and XCVerifier
(bottom row) for Ec non-positivity, the Lieb-Oxford extension, and the
conjectured Tc upper bound.
"""

from __future__ import annotations

import pytest

from repro.conditions import EC1, EC5, EC7
from repro.functionals import get_functional
from repro.pb.checker import PBChecker
from repro.verifier import ascii_map, rasterize, verify_pair
from repro.verifier.render import OUTCOME_CODES
from repro.verifier.regions import Outcome

from _settings import BENCH_CONFIG, BENCH_SPEC

PBE = get_functional("PBE")
CEX = OUTCOME_CODES[Outcome.COUNTEREXAMPLE]
VERIFIED = OUTCOME_CODES[Outcome.VERIFIED]


def test_fig1_pb_row(benchmark):
    """Figure 1 (a-c): PB grid maps for PBE."""
    checker = PBChecker(spec=BENCH_SPEC)

    def run():
        return {
            c.cid: checker.check(PBE, c) for c in (EC1, EC5, EC7)
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    # (a) Ec non-positivity: no hatched region
    assert not results["EC1"].any_violation
    # (b) LO extension: no hatched region
    assert not results["EC5"].any_violation
    # (c) conjectured Tc bound: hatched upper-left region
    assert results["EC7"].any_violation
    bounds = results["EC7"].violation_bounds()
    assert bounds["rs"][0] < 0.5 and bounds["s"][1] == pytest.approx(5.0)
    for cid, res in results.items():
        print(f"\nFig1 PB {cid}: {res.summary()}")


@pytest.mark.parametrize(
    "condition,expect_cex",
    [(EC1, False), (EC5, False), (EC7, True)],
    ids=["EC1", "EC5", "EC7"],
)
def test_fig1_xcverifier_row(benchmark, condition, expect_cex):
    """Figure 1 (d-f): XCVerifier region maps for PBE."""

    def run():
        return verify_pair(PBE, condition, BENCH_CONFIG)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(ascii_map(report, resolution=32))

    assert report.has_counterexample() == expect_cex
    raster = rasterize(report, resolution=16)
    if condition is EC7:
        # (f): counterexample region covers the upper-left diagonal
        assert (raster[12:, :4] == CEX).mean() > 0.8
        assert (raster[:4, 12:] == CEX).mean() < 0.2
    if condition is EC5:
        # (e): verified on the entire input domain
        assert (raster == VERIFIED).all()
    if condition is EC1:
        # (d): verified except a strip of timeouts (thin margins);
        # bottom-right (moderate s, larger rs) verifies
        assert (raster[:4, 8:] == VERIFIED).mean() > 0.6
