"""Benchmark-harness budgets (shared by conftest and the benchmarks)."""

from repro.pb.grid import GridSpec
from repro.verifier.verifier import VerifierConfig

#: verification budget used by the benchmark harness (coarse but faithful)
BENCH_CONFIG = VerifierConfig(
    split_threshold=0.7,
    per_call_budget=250,
    global_step_budget=10_000,
)

#: PB grid used by the benchmark harness
BENCH_SPEC = GridSpec(n_rs=161, n_s=161, n_alpha=9)
