"""E12 -- ablation: per-box formula specialisation (Section VI-A direction).

``VerifierConfig(specialize_boxes=True)`` folds box-decidable Ite guards
out of the formula before each solver call, so piecewise functionals
(SCAN's alpha switches) collapse to a single analytic piece on boxes that
stay on one side of the switch.

Measured outcome (a documented *negative* result): the HC4 contractor
already decides Ite guards natively during its forward pass and
propagates through decided branches on the backward pass, so
specialisation changes no verdicts and saves only the guard-evaluation
overhead -- a few percent of wall time on SCAN, nothing on functionals
without Ite.  The *real* obstruction for SCAN boxes straddling alpha = 1
is the unbounded hull of the pole branch (see
``test_rscan_vs_scan.test_enclosure_width_across_alpha_one``), which no
amount of formula rewriting fixes without splitting at the switch.
"""

from __future__ import annotations

import pytest

from repro.conditions import EC1
from repro.functionals import get_functional
from repro.verifier import encode
from repro.verifier.regions import Outcome
from repro.verifier.verifier import Verifier, VerifierConfig

SCAN = get_functional("SCAN")

BASE = dict(split_threshold=0.7, per_call_budget=250, global_step_budget=6000)


def _run(specialize: bool):
    config = VerifierConfig(**BASE, specialize_boxes=specialize)
    return Verifier(config).verify(encode(SCAN, EC1))


def test_specialize_off(benchmark):
    report = benchmark.pedantic(_run, args=(False,), rounds=1, iterations=1)
    print(f"\nplain      : {report.summary()}")


def test_specialize_on(benchmark):
    report = benchmark.pedantic(_run, args=(True,), rounds=1, iterations=1)
    print(f"\nspecialised: {report.summary()}")


def test_specialisation_changes_no_verdicts():
    plain = _run(False)
    spec = _run(True)
    assert plain.classification() == spec.classification()
    f_plain = plain.area_fractions().get(Outcome.VERIFIED, 0.0)
    f_spec = spec.area_fractions().get(Outcome.VERIFIED, 0.0)
    print(f"\nverified area: plain={f_plain:.1%}, specialised={f_spec:.1%}")
    # HC4 already handles decided guards natively: coverage is identical
    assert f_spec == pytest.approx(f_plain, abs=0.05)


def test_specialised_formulas_are_interned():
    """Boxes on the same side of every switch share one specialised
    formula object (so the solver's contractor cache stays warm)."""
    config = VerifierConfig(**BASE, specialize_boxes=True)
    verifier = Verifier(config)
    verifier.verify(encode(SCAN, EC1))
    n_distinct = len(verifier._specialized_cache)
    print(f"\ndistinct specialised formulas: {n_distinct}")
    # 2 switching guards -> at most a handful of branch combinations,
    # not one formula per box
    assert 0 < n_distinct <= 8
