"""Shared configuration for the benchmark harness.

Every paper artifact (Tables I-II, Figures 1-2) has a benchmark that
regenerates it and prints the reproduced rows.  Budgets are scaled down
from the paper's (2-hour dReal calls, t = 0.05 splitting) so the whole
harness runs in minutes; EXPERIMENTS.md records a full-budget run.

Run with ``pytest benchmarks/ --benchmark-only -s`` to see the tables.
"""

from __future__ import annotations

import pytest

from repro.pb.checker import PBChecker
from repro.verifier.verifier import VerifierConfig

from _settings import BENCH_CONFIG, BENCH_SPEC


@pytest.fixture(scope="session")
def bench_config() -> VerifierConfig:
    return BENCH_CONFIG


@pytest.fixture(scope="session")
def bench_checker() -> PBChecker:
    return PBChecker(spec=BENCH_SPEC)


@pytest.fixture(scope="session")
def table_one_result(bench_config):
    """Run Table I once per session; several benchmarks consume it."""
    from repro.analysis.tables import run_table_one

    return run_table_one(bench_config)
