"""E8 -- ablation: delta, budget, and contractor sensitivity.

Probes the knobs Section VI-A discusses: how solver precision/weakening
and budget interact with verification coverage, and how much the HC4
contractor contributes over pure bisection.
"""

from __future__ import annotations


from repro.conditions import EC1
from repro.functionals import get_functional
from repro.solver.box import Box
from repro.solver.icp import Budget, ICPSolver, SolverStatus
from repro.verifier import encode, verify_pair
from repro.verifier.regions import Outcome
from repro.verifier.verifier import VerifierConfig


def test_budget_scaling_increases_coverage(benchmark):
    """More budget -> monotonically more of the domain decided (PBE/EC1)."""
    pbe = get_functional("PBE")
    coverages = {}

    def run_all():
        for budget in (500, 2000, 8000):
            config = VerifierConfig(
                split_threshold=0.7,
                per_call_budget=250,
                global_step_budget=budget,
            )
            report = verify_pair(pbe, EC1, config)
            coverages[budget] = report.area_fractions()[Outcome.VERIFIED]
        return coverages

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    print(f"\nverified coverage by global budget: {coverages}")
    budgets = sorted(coverages)
    assert coverages[budgets[0]] <= coverages[budgets[-1]]
    assert coverages[budgets[-1]] > 0.1


def test_delta_controls_spurious_models():
    """Large delta yields delta-SAT with spurious models on thin margins.

    PBE's eps_c approaches 0 from below at large s: with a delta wider
    than the margin the solver reports delta-SAT whose model does *not*
    violate EC1 -- exactly the inconclusive case of Algorithm 1.
    """
    pbe = get_functional("PBE")
    problem = encode(pbe, EC1)
    # a region where the EC1 margin is ~1e-3
    domain = Box.from_bounds({"rs": (4.0, 5.0), "s": (4.5, 5.0)})

    tight = ICPSolver(delta=1e-7, precision=1e-4)
    loose = ICPSolver(delta=1e-1, precision=1e-4)

    r_tight = tight.solve(problem.negation, domain, Budget(max_steps=4000))
    r_loose = loose.solve(problem.negation, domain, Budget(max_steps=4000))

    print(f"\ndelta=1e-7: {r_tight.status.value}; delta=1e-1: {r_loose.status.value}")
    assert r_loose.status is SolverStatus.DELTA_SAT
    # the loose model must be spurious (EC1 actually holds there)
    assert not problem.negation.holds_at(r_loose.model)
    # tight delta either proves it or at least does not produce a valid cex
    if r_tight.status is SolverStatus.DELTA_SAT:
        assert not problem.negation.holds_at(r_tight.model)


def test_contractor_vs_bisection(benchmark):
    """HC4 pruning beats pure bisection by orders of magnitude (steps)."""
    lyp = get_functional("LYP")
    problem = encode(lyp, EC1)
    domain = Box.from_bounds({"rs": (1.0, 3.0), "s": (0.0, 1.0)})  # verified region

    def run():
        hc4 = ICPSolver(use_probing=False, use_contraction=True)
        bisect = ICPSolver(use_probing=False, use_contraction=False)
        r1 = hc4.solve(problem.negation, domain, Budget(max_steps=50_000))
        r2 = bisect.solve(problem.negation, domain, Budget(max_steps=50_000))
        return r1, r2

    r1, r2 = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\nHC4: {r1.status.value} in {r1.stats.boxes_processed} steps; "
        f"bisection: {r2.status.value} in {r2.stats.boxes_processed} steps"
    )
    assert r1.status is SolverStatus.UNSAT
    assert r1.stats.boxes_processed * 5 < r2.stats.boxes_processed or (
        r2.status is SolverStatus.TIMEOUT
    )
