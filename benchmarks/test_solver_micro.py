"""Microbenchmarks of the solver and kernel substrates.

Not a paper artifact, but the performance envelope everything else rests
on: HC4 contraction throughput on real DFA formulas, compiled-kernel grid
throughput, and symbolic differentiation cost per functional.

The speedup gates additionally publish their timings: when the
``BENCH_SOLVER_JSON`` environment variable names a file, every measured
walk/tape/batch number is merged into that JSON document (CI uploads it
as the ``BENCH_solver.json`` artifact, giving the perf trajectory one
file per commit).
"""

from __future__ import annotations

import json
import os
import platform
import time

import numpy as np

from repro.conditions import EC1
from repro.expr.derivative import derivative
from repro.functionals import get_functional, paper_functionals
from repro.functionals.vars import RS
from repro.solver.box import Box
from repro.solver.contractor import HC4Contractor
from repro.solver.icp import Budget, ICPSolver
from repro.verifier import encode


def record_bench(section: str, **values) -> None:
    """Merge one benchmark section into the JSON perf artifact (if enabled)."""
    path = os.environ.get("BENCH_SOLVER_JSON")
    if not path:
        return
    doc: dict = {}
    if os.path.exists(path):
        with open(path) as fh:
            doc = json.load(fh)
    doc.setdefault("meta", {}).update(
        {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "commit": os.environ.get("GITHUB_SHA", ""),
        }
    )
    doc.setdefault(section, {}).update(values)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def test_hc4_contraction_throughput(benchmark):
    problem = encode(get_functional("PBE"), EC1)
    contractor = HC4Contractor(problem.negation, delta=1e-5)
    box = Box.from_bounds({"rs": (1.0, 3.0), "s": (0.0, 2.0)})

    result = benchmark(contractor.contract, box)
    assert not result.is_empty() or True


def test_hc4_tree_walk_throughput(benchmark):
    """The legacy tree-walking executor, kept as the comparison baseline."""
    problem = encode(get_functional("PBE"), EC1)
    contractor = HC4Contractor(problem.negation, delta=1e-5, backend="walk")
    box = Box.from_bounds({"rs": (1.0, 3.0), "s": (0.0, 2.0)})

    benchmark(contractor.contract, box)


def test_tape_vm_speedup_over_tree_walk():
    """Acceptance check: tape-compiled HC4 >= 2x the tree walk on PBE-class
    residuals, with identical contraction output."""
    problem = encode(get_functional("PBE"), EC1)
    box = Box.from_bounds({"rs": (1.0, 3.0), "s": (0.0, 2.0)})

    def best_of(contractor, repeats=5, iters=20):
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            for _ in range(iters):
                contractor.contract(box)
            best = min(best, (time.perf_counter() - t0) / iters)
        return best

    tape_c = HC4Contractor(problem.negation, delta=1e-5, backend="tape")
    walk_c = HC4Contractor(problem.negation, delta=1e-5, backend="walk")
    tape_box = tape_c.contract(box)
    walk_box = walk_c.contract(box)
    for name in tape_box.names:
        assert tape_box[name].lo == walk_box[name].lo
        assert tape_box[name].hi == walk_box[name].hi

    t_tape = best_of(tape_c)
    t_walk = best_of(walk_c)
    ratio = t_walk / t_tape
    print(f"\nHC4 contract: walk {t_walk*1e3:.3f} ms, tape {t_tape*1e3:.3f} ms, "
          f"speedup {ratio:.2f}x")
    record_bench(
        "hc4_contract", walk_ms=t_walk * 1e3, tape_ms=t_tape * 1e3, speedup=ratio
    )
    assert ratio >= 2.0, f"tape VM only {ratio:.2f}x faster than tree walk"


def test_solver_call_speedup_over_tree_walk():
    """Full ICP solver calls (contract + probe + split) on the PBE EC1
    negation: the tape backend must at least halve the per-call cost."""
    problem = encode(get_functional("PBE"), EC1)
    box = Box.from_bounds({"rs": (1.0, 3.0), "s": (0.0, 2.0)})
    budget = Budget(max_steps=60)

    def best_of(backend, repeats=3):
        solver = ICPSolver(delta=1e-5, precision=1e-3, backend=backend)
        result = solver.solve(problem.negation, box, budget)  # warm caches
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            solver.solve(problem.negation, box, budget)
            best = min(best, time.perf_counter() - t0)
        return best, result

    t_tape, r_tape = best_of("tape")
    t_walk, r_walk = best_of("walk")
    assert r_tape.status == r_walk.status
    assert r_tape.model == r_walk.model
    ratio = t_walk / t_tape
    print(f"\nICP solve: walk {t_walk*1e3:.1f} ms, tape {t_tape*1e3:.1f} ms, "
          f"speedup {ratio:.2f}x")
    record_bench(
        "icp_solve", walk_ms=t_walk * 1e3, tape_ms=t_tape * 1e3, speedup=ratio
    )
    assert ratio >= 1.5, f"solver calls only {ratio:.2f}x faster than tree walk"


def test_batched_frontier_speedup_over_per_box_tape():
    """Acceptance check: the batched frontier loop (backend="batch") must
    solve a full-domain PBE EC1 run >= 1.5x faster than the per-box tape
    backend, with identical status, model and per-box statistics.

    The budget is sized so the BFS frontier grows a few hundred boxes
    wide -- the regime the batched executors are built for (the verifier
    drives the solver at exactly this scale on the full input domain).
    """
    problem = encode(get_functional("PBE"), EC1)
    domain = problem.domain
    budget = Budget(max_steps=5000)

    def best_of(backend, repeats=3):
        solver = ICPSolver(delta=1e-5, precision=1e-3, backend=backend)
        result = solver.solve(problem.negation, domain, budget)  # warm caches
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            solver.solve(problem.negation, domain, budget)
            best = min(best, time.perf_counter() - t0)
        return best, result

    t_batch, r_batch = best_of("batch")
    t_tape, r_tape = best_of("tape")
    assert r_batch.status == r_tape.status
    assert r_batch.model == r_tape.model
    assert r_batch.stats.boxes_processed == r_tape.stats.boxes_processed
    assert r_batch.stats.boxes_pruned == r_tape.stats.boxes_pruned
    assert r_batch.stats.boxes_split == r_tape.stats.boxes_split
    assert r_batch.stats.batches > 0
    ratio = t_tape / t_batch
    print(f"\nfrontier solve: tape {t_tape*1e3:.1f} ms, batch {t_batch*1e3:.1f} ms, "
          f"speedup {ratio:.2f}x ({r_batch.stats.batches} batches)")
    record_bench(
        "frontier_solve", tape_ms=t_tape * 1e3, batch_ms=t_batch * 1e3, speedup=ratio
    )
    assert ratio >= 1.5, f"batched frontier only {ratio:.2f}x faster than per-box tape"


def test_campaign_work_stealing_beats_static_chunks():
    """Acceptance check: the campaign engine's dynamic work-stealing must
    beat static chunk partitioning >= 1.2x wall-clock on a skewed
    multi-pair workload at >= 4 workers.

    The workload is the skew the old drivers handled worst: one
    SCAN-sized pair (LYP EC1, pre-split into 16 subdomain units) next to
    pairs that verify at the root.  The static baseline dispatches each
    cell as one pre-assigned chunk -- the ``verify_domain_parallel``
    idiom, where whichever worker draws the expensive cell drags the
    whole campaign -- while the stealing run dispatches unit-granularity
    chunks that idle workers pull from the shared queue.  Both runs share
    one warm process pool and must produce bit-identical stitched
    reports.
    """
    import pytest

    from repro.verifier.campaign import run_campaign
    from repro.verifier.verifier import VerifierConfig

    workers = 4
    if (os.cpu_count() or 1) < workers:
        pytest.skip("work-stealing wall-clock gate needs >= 4 CPUs")

    config = VerifierConfig(
        split_threshold=0.04, per_call_budget=150, global_step_budget=24_000
    )
    pairs = [
        ("LYP", "EC1"),      # expensive: deep split tree over 16 units
        ("VWN RPA", "EC1"),  # trivial: verified at the root
        ("Wigner", "EC1"),
        ("VWN RPA", "EC2"),
        ("Wigner", "EC2"),
    ]

    from concurrent.futures import ProcessPoolExecutor

    def best_of(unit_chunk_size, pool, repeats=2):
        best, result = float("inf"), None
        for _ in range(repeats):
            t0 = time.perf_counter()
            result = run_campaign(
                pairs,
                config,
                presplit_levels=2,
                unit_chunk_size=unit_chunk_size,
                executor=pool,
            )
            best = min(best, time.perf_counter() - t0)
        return best, result

    with ProcessPoolExecutor(max_workers=workers) as pool:
        # warm the pool (fork + import cost must not skew either mode)
        for _ in pool.map(abs, range(workers)):
            pass
        t_static, r_static = best_of(unit_chunk_size=64, pool=pool)  # chunk = cell
        t_steal, r_steal = best_of(unit_chunk_size=1, pool=pool)

    for key, static_report in r_static.items():
        assert static_report.identical_to(r_steal.reports[key]), key

    ratio = t_static / t_steal
    print(
        f"\ncampaign wall-clock: static chunks {t_static*1e3:.0f} ms, "
        f"work-stealing {t_steal*1e3:.0f} ms, speedup {ratio:.2f}x"
    )
    record_bench(
        "campaign_steal",
        static_ms=t_static * 1e3,
        steal_ms=t_steal * 1e3,
        speedup=ratio,
        workers=workers,
    )
    assert ratio >= 1.2, (
        f"work-stealing only {ratio:.2f}x faster than static chunking"
    )


def test_campaign_work_stealing_correctness_any_cpu():
    """CPU-count-independent half of the gate: stealing-granularity
    scheduling must reproduce the static partition's reports exactly
    (the wall-clock half skips below 4 CPUs)."""
    from repro.verifier.campaign import run_campaign
    from repro.verifier.verifier import VerifierConfig

    # unlimited global budget: with finite budgets the spill path divides
    # the remainder per child (deterministic, but a different policy than
    # the DFS-shared budget), so exact equality is only pinned budget-free
    config = VerifierConfig(
        split_threshold=0.3, per_call_budget=150, global_step_budget=None
    )
    pairs = [("LYP", "EC1"), ("VWN RPA", "EC1")]
    static = run_campaign(
        pairs, config, presplit_levels=1, unit_chunk_size=64, max_workers=2
    )
    stealing = run_campaign(
        pairs, config, presplit_levels=1, unit_chunk_size=1, max_workers=2,
        steal_depth=2,
    )
    assert set(static.reports) == set(stealing.reports)
    for key, report in static.items():
        assert report.identical_to(stealing.reports[key]), key


def test_scan_contraction_cost(benchmark):
    """SCAN formulas are the most expensive to contract (paper Sec. VI-A)."""
    problem = encode(get_functional("SCAN"), EC1)
    contractor = HC4Contractor(problem.negation, delta=1e-5)
    box = Box.from_bounds({"rs": (1.0, 3.0), "s": (0.0, 2.0), "alpha": (0.0, 2.0)})
    benchmark(contractor.contract, box)


def test_kernel_grid_throughput(benchmark):
    """Vectorised F_c evaluation on a 400x400 mesh."""
    f = get_functional("PBE")
    kernel = f.fc_kernel()
    rs, s = np.meshgrid(
        np.linspace(1e-4, 5, 400), np.linspace(0, 5, 400), indexing="ij"
    )

    out = benchmark(kernel, rs, s)
    assert out.shape == (400, 400)


def test_symbolic_differentiation_cost(benchmark):
    """d2 F_c / d rs2 for SCAN -- the heaviest encoder step (EC3)."""
    f = get_functional("SCAN")
    fc = f.fc()

    def second_derivative():
        return derivative(derivative(fc, RS), RS)

    expr = benchmark.pedantic(second_derivative, rounds=1, iterations=1)
    assert expr.dag_size() > 100


def test_encoding_cost_by_functional(benchmark):
    """Encoding all seven conditions for every functional (cached path
    excluded by re-deriving)."""
    from repro.conditions import PAPER_CONDITIONS

    def encode_all():
        sizes = {}
        for f in paper_functionals():
            for c in PAPER_CONDITIONS:
                if c.applies_to(f):
                    sizes[(f.name, c.cid)] = encode(f, c).complexity()
        return sizes

    sizes = benchmark.pedantic(encode_all, rounds=1, iterations=1)
    assert len(sizes) == 31
    scan_max = max(v for (n, _), v in sizes.items() if n == "SCAN")
    others_max = max(v for (n, _), v in sizes.items() if n != "SCAN")
    print(f"\nlargest SCAN formula: {scan_max} ops; largest other: {others_max} ops")
    assert scan_max > others_max
