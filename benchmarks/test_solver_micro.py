"""Microbenchmarks of the solver and kernel substrates.

Not a paper artifact, but the performance envelope everything else rests
on: HC4 contraction throughput on real DFA formulas, compiled-kernel grid
throughput, and symbolic differentiation cost per functional.

The speedup gates additionally publish their timings: when the
``BENCH_SOLVER_JSON`` environment variable names a file, every measured
walk/tape/batch number is merged into that JSON document (CI uploads it
as the ``BENCH_solver.json`` artifact, giving the perf trajectory one
file per commit).
"""

from __future__ import annotations

import json
import os
import platform
import time

import numpy as np

from repro.conditions import EC1
from repro.expr.derivative import derivative
from repro.functionals import get_functional, paper_functionals
from repro.functionals.vars import RS
from repro.solver.box import Box
from repro.solver.contractor import HC4Contractor
from repro.solver.icp import Budget, ICPSolver
from repro.verifier import encode


def record_bench(section: str, **values) -> None:
    """Merge one benchmark section into the JSON perf artifact (if enabled)."""
    path = os.environ.get("BENCH_SOLVER_JSON")
    if not path:
        return
    doc: dict = {}
    if os.path.exists(path):
        with open(path) as fh:
            doc = json.load(fh)
    doc.setdefault("meta", {}).update(
        {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "commit": os.environ.get("GITHUB_SHA", ""),
        }
    )
    doc.setdefault(section, {}).update(values)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def test_hc4_contraction_throughput(benchmark):
    problem = encode(get_functional("PBE"), EC1)
    contractor = HC4Contractor(problem.negation, delta=1e-5)
    box = Box.from_bounds({"rs": (1.0, 3.0), "s": (0.0, 2.0)})

    result = benchmark(contractor.contract, box)
    assert not result.is_empty() or True


def test_hc4_tree_walk_throughput(benchmark):
    """The legacy tree-walking executor, kept as the comparison baseline."""
    problem = encode(get_functional("PBE"), EC1)
    contractor = HC4Contractor(problem.negation, delta=1e-5, backend="walk")
    box = Box.from_bounds({"rs": (1.0, 3.0), "s": (0.0, 2.0)})

    benchmark(contractor.contract, box)


def test_tape_vm_speedup_over_tree_walk():
    """Acceptance check: tape-compiled HC4 >= 2x the tree walk on PBE-class
    residuals, with identical contraction output."""
    problem = encode(get_functional("PBE"), EC1)
    box = Box.from_bounds({"rs": (1.0, 3.0), "s": (0.0, 2.0)})

    def best_of(contractor, repeats=5, iters=20):
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            for _ in range(iters):
                contractor.contract(box)
            best = min(best, (time.perf_counter() - t0) / iters)
        return best

    tape_c = HC4Contractor(problem.negation, delta=1e-5, backend="tape")
    walk_c = HC4Contractor(problem.negation, delta=1e-5, backend="walk")
    tape_box = tape_c.contract(box)
    walk_box = walk_c.contract(box)
    for name in tape_box.names:
        assert tape_box[name].lo == walk_box[name].lo
        assert tape_box[name].hi == walk_box[name].hi

    t_tape = best_of(tape_c)
    t_walk = best_of(walk_c)
    ratio = t_walk / t_tape
    print(f"\nHC4 contract: walk {t_walk*1e3:.3f} ms, tape {t_tape*1e3:.3f} ms, "
          f"speedup {ratio:.2f}x")
    record_bench(
        "hc4_contract", walk_ms=t_walk * 1e3, tape_ms=t_tape * 1e3, speedup=ratio
    )
    assert ratio >= 2.0, f"tape VM only {ratio:.2f}x faster than tree walk"


def test_solver_call_speedup_over_tree_walk():
    """Full ICP solver calls (contract + probe + split) on the PBE EC1
    negation: the tape backend must at least halve the per-call cost."""
    problem = encode(get_functional("PBE"), EC1)
    box = Box.from_bounds({"rs": (1.0, 3.0), "s": (0.0, 2.0)})
    budget = Budget(max_steps=60)

    def best_of(backend, repeats=3):
        solver = ICPSolver(delta=1e-5, precision=1e-3, backend=backend)
        result = solver.solve(problem.negation, box, budget)  # warm caches
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            solver.solve(problem.negation, box, budget)
            best = min(best, time.perf_counter() - t0)
        return best, result

    t_tape, r_tape = best_of("tape")
    t_walk, r_walk = best_of("walk")
    assert r_tape.status == r_walk.status
    assert r_tape.model == r_walk.model
    ratio = t_walk / t_tape
    print(f"\nICP solve: walk {t_walk*1e3:.1f} ms, tape {t_tape*1e3:.1f} ms, "
          f"speedup {ratio:.2f}x")
    record_bench(
        "icp_solve", walk_ms=t_walk * 1e3, tape_ms=t_tape * 1e3, speedup=ratio
    )
    assert ratio >= 1.5, f"solver calls only {ratio:.2f}x faster than tree walk"


def test_batched_frontier_speedup_over_per_box_tape():
    """Acceptance check: the batched frontier loop (backend="batch") must
    solve a full-domain PBE EC1 run >= 1.5x faster than the per-box tape
    backend, with identical status, model and per-box statistics.

    The budget is sized so the BFS frontier grows a few hundred boxes
    wide -- the regime the batched executors are built for (the verifier
    drives the solver at exactly this scale on the full input domain).
    """
    problem = encode(get_functional("PBE"), EC1)
    domain = problem.domain
    budget = Budget(max_steps=5000)

    def best_of(backend, repeats=3):
        solver = ICPSolver(delta=1e-5, precision=1e-3, backend=backend)
        result = solver.solve(problem.negation, domain, budget)  # warm caches
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            solver.solve(problem.negation, domain, budget)
            best = min(best, time.perf_counter() - t0)
        return best, result

    t_batch, r_batch = best_of("batch")
    t_tape, r_tape = best_of("tape")
    assert r_batch.status == r_tape.status
    assert r_batch.model == r_tape.model
    assert r_batch.stats.boxes_processed == r_tape.stats.boxes_processed
    assert r_batch.stats.boxes_pruned == r_tape.stats.boxes_pruned
    assert r_batch.stats.boxes_split == r_tape.stats.boxes_split
    assert r_batch.stats.batches > 0
    ratio = t_tape / t_batch
    print(f"\nfrontier solve: tape {t_tape*1e3:.1f} ms, batch {t_batch*1e3:.1f} ms, "
          f"speedup {ratio:.2f}x ({r_batch.stats.batches} batches)")
    record_bench(
        "frontier_solve", tape_ms=t_tape * 1e3, batch_ms=t_batch * 1e3, speedup=ratio
    )
    assert ratio >= 1.5, f"batched frontier only {ratio:.2f}x faster than per-box tape"


def test_campaign_work_stealing_beats_static_chunks():
    """Acceptance check: the campaign engine's dynamic work-stealing must
    beat static chunk partitioning >= 1.2x wall-clock on a skewed
    multi-pair workload at >= 4 workers.

    The workload is the skew the old drivers handled worst: one
    SCAN-sized pair (LYP EC1, pre-split into 16 subdomain units) next to
    pairs that verify at the root.  The static baseline dispatches each
    cell as one pre-assigned chunk -- the ``verify_domain_parallel``
    idiom, where whichever worker draws the expensive cell drags the
    whole campaign -- while the stealing run dispatches unit-granularity
    chunks that idle workers pull from the shared queue.  Both runs share
    one warm process pool and must produce bit-identical stitched
    reports.
    """
    import pytest

    from repro.verifier.campaign import run_campaign
    from repro.verifier.verifier import VerifierConfig

    workers = 4
    if (os.cpu_count() or 1) < workers:
        pytest.skip("work-stealing wall-clock gate needs >= 4 CPUs")

    config = VerifierConfig(
        split_threshold=0.04, per_call_budget=150, global_step_budget=24_000
    )
    pairs = [
        ("LYP", "EC1"),      # expensive: deep split tree over 16 units
        ("VWN RPA", "EC1"),  # trivial: verified at the root
        ("Wigner", "EC1"),
        ("VWN RPA", "EC2"),
        ("Wigner", "EC2"),
    ]

    from concurrent.futures import ProcessPoolExecutor

    def best_of(unit_chunk_size, pool, repeats=2):
        best, result = float("inf"), None
        for _ in range(repeats):
            t0 = time.perf_counter()
            result = run_campaign(
                pairs,
                config,
                presplit_levels=2,
                unit_chunk_size=unit_chunk_size,
                executor=pool,
            )
            best = min(best, time.perf_counter() - t0)
        return best, result

    with ProcessPoolExecutor(max_workers=workers) as pool:
        # warm the pool (fork + import cost must not skew either mode)
        for _ in pool.map(abs, range(workers)):
            pass
        t_static, r_static = best_of(unit_chunk_size=64, pool=pool)  # chunk = cell
        t_steal, r_steal = best_of(unit_chunk_size=1, pool=pool)

    for key, static_report in r_static.items():
        assert static_report.identical_to(r_steal.reports[key]), key

    ratio = t_static / t_steal
    print(
        f"\ncampaign wall-clock: static chunks {t_static*1e3:.0f} ms, "
        f"work-stealing {t_steal*1e3:.0f} ms, speedup {ratio:.2f}x"
    )
    record_bench(
        "campaign_steal",
        static_ms=t_static * 1e3,
        steal_ms=t_steal * 1e3,
        speedup=ratio,
        workers=workers,
    )
    assert ratio >= 1.2, (
        f"work-stealing only {ratio:.2f}x faster than static chunking"
    )


def test_campaign_work_stealing_correctness_any_cpu():
    """CPU-count-independent half of the gate: stealing-granularity
    scheduling must reproduce the static partition's reports exactly
    (the wall-clock half skips below 4 CPUs)."""
    from repro.verifier.campaign import run_campaign
    from repro.verifier.verifier import VerifierConfig

    # unlimited global budget: with finite budgets the spill path divides
    # the remainder per child (deterministic, but a different policy than
    # the DFS-shared budget), so exact equality is only pinned budget-free
    config = VerifierConfig(
        split_threshold=0.3, per_call_budget=150, global_step_budget=None
    )
    pairs = [("LYP", "EC1"), ("VWN RPA", "EC1")]
    static = run_campaign(
        pairs, config, presplit_levels=1, unit_chunk_size=64, max_workers=2
    )
    stealing = run_campaign(
        pairs, config, presplit_levels=1, unit_chunk_size=1, max_workers=2,
        steal_depth=2,
    )
    assert set(static.reports) == set(stealing.reports)
    for key, report in static.items():
        assert report.identical_to(stealing.reports[key]), key


def _split_domain(domain, width):
    boxes = [domain]
    while len(boxes) < width:
        boxes = [half for box in boxes for half in box.split()]
    return boxes[:width]


def _assert_batches_identical(got, want):
    boxes_g, sat_g = got
    boxes_w, sat_w = want
    assert np.array_equal(sat_g, sat_w)
    for x, y in zip(boxes_g, boxes_w):
        assert x.is_empty() == y.is_empty()
        if not x.is_empty():
            for name in x.names:
                assert x[name].lo == y[name].lo and x[name].hi == y[name].hi


def test_pow_func_batch_kernel_speedup_over_seed_backend():
    """Tentpole gate: the whole-batch Pow/Func kernels plus tape fusion
    must contract PBE EC1 batches >= 2x faster than the pre-kernel batch
    backend across frontier widths, bit-identically.

    The baseline reconstructs the seed configuration exactly: per-column
    Pow/Func loops (``legacy`` kernel mode, including the original
    stack-and-reduce endpoint multiply), no fusion pass (which also
    disables the cross-atom ``MultiTape``), and the pre-kernel
    ``vector_min = 48`` crossover.  PBE EC1 is the Pow/Func-heavy pair:
    its residual tapes are dominated by integer-power chains, real
    powers and exp/log rows.

    The gate sums times over a width sweep rather than timing one width:
    the per-width ratio depends on alive-set geometry (how many columns
    survive to the backward pass at that split depth), so any single
    width inherits whichever geometry is least favourable plus its
    jitter, while the summed ratio is what a frontier actually pays.
    Whole passes alternate between the two configurations so a transient
    slowdown (GC, a neighbouring test's subprocess) cannot land entirely
    on one side of the ratio.
    """
    from repro.solver.tape import (
        clear_tape_cache, set_batch_kernel_mode, set_tape_fusion,
    )

    problem = encode(get_functional("PBE"), EC1)
    widths = (256, 512, 1024)
    batches = {w: _split_domain(problem.domain, w) for w in widths}

    def sweep(seed_mode, repeats=3):
        clear_tape_cache()  # tapes must be rebuilt under the active flags
        if seed_mode:
            set_tape_fusion(False)
            set_batch_kernel_mode("legacy")
            contractor = HC4Contractor(problem.negation, delta=1e-5, vector_min=48)
        else:
            contractor = HC4Contractor(problem.negation, delta=1e-5)
        times = {}
        outs = {}
        try:
            for w, boxes in batches.items():
                outs[w] = contractor.contract_batch(boxes)  # warm
                best = float("inf")
                for _ in range(repeats):
                    t0 = time.perf_counter()
                    contractor.contract_batch(boxes)
                    best = min(best, time.perf_counter() - t0)
                times[w] = best
        finally:
            set_tape_fusion(True)
            set_batch_kernel_mode("vector")
        return times, outs

    t_kernel, out_kernel = sweep(seed_mode=False)
    t_seed, out_seed = sweep(seed_mode=True)
    for _ in range(2):
        for w, t in sweep(seed_mode=False)[0].items():
            t_kernel[w] = min(t_kernel[w], t)
        for w, t in sweep(seed_mode=True)[0].items():
            t_seed[w] = min(t_seed[w], t)
    for w in widths:
        _assert_batches_identical(out_kernel[w], out_seed[w])

    total_seed = sum(t_seed.values())
    total_kernel = sum(t_kernel.values())
    ratio = total_seed / total_kernel
    per_width = ", ".join(f"{w}: {t_seed[w] / t_kernel[w]:.2f}x" for w in widths)
    print(f"\npow/func batch kernels: seed backend {total_seed*1e3:.2f} ms, "
          f"kernels {total_kernel*1e3:.2f} ms, speedup {ratio:.2f}x "
          f"({per_width})")
    record_bench(
        "pow_func_kernels",
        seed_ms=total_seed * 1e3,
        kernel_ms=total_kernel * 1e3,
        speedup=ratio,
        **{f"speedup_w{w}": t_seed[w] / t_kernel[w] for w in widths},
    )
    assert ratio >= 2.0, (
        f"batch kernels only {ratio:.2f}x faster than the seed batch backend"
    )


def test_pow_func_frontier_speedup_over_seed_backend():
    """Regression bench: the same seed-vs-kernels comparison on a full
    frontier solve (contract + probe + split), where splitting and point
    probes dilute the kernel win; gated looser, recorded for trend."""
    from repro.solver.tape import (
        clear_tape_cache, set_batch_kernel_mode, set_tape_fusion,
    )

    problem = encode(get_functional("PBE"), EC1)
    budget = Budget(max_steps=1200)

    def best_of(seed_mode, repeats=3):
        clear_tape_cache()
        if seed_mode:
            set_tape_fusion(False)
            set_batch_kernel_mode("legacy")
            solver = ICPSolver(
                delta=1e-5, precision=1e-3, backend="batch", vector_min=48
            )
        else:
            solver = ICPSolver(delta=1e-5, precision=1e-3, backend="batch")
        try:
            result = solver.solve(problem.negation, problem.domain, budget)
            best = float("inf")
            for _ in range(repeats):
                t0 = time.perf_counter()
                solver.solve(problem.negation, problem.domain, budget)
                best = min(best, time.perf_counter() - t0)
        finally:
            set_tape_fusion(True)
            set_batch_kernel_mode("vector")
        return best, result

    t_kernel, r_kernel = best_of(seed_mode=False)
    t_seed, r_seed = best_of(seed_mode=True)
    # one more alternation evens out one-sided scheduling jitter
    t_kernel = min(t_kernel, best_of(seed_mode=False)[0])
    t_seed = min(t_seed, best_of(seed_mode=True)[0])
    assert r_kernel.status == r_seed.status
    assert r_kernel.model == r_seed.model
    assert r_kernel.stats.boxes_processed == r_seed.stats.boxes_processed

    ratio = t_seed / t_kernel
    print(f"\npow/func frontier: seed backend {t_seed*1e3:.1f} ms, "
          f"kernels {t_kernel*1e3:.1f} ms, speedup {ratio:.2f}x")
    record_bench(
        "pow_func_frontier",
        seed_ms=t_seed * 1e3,
        kernel_ms=t_kernel * 1e3,
        speedup=ratio,
    )
    assert ratio >= 1.3, (
        f"frontier solve only {ratio:.2f}x faster than the seed batch backend"
    )


def test_per_op_kernel_timings():
    """Publish per-op forward/backward kernel timings (vector vs the
    per-column Interval loops) into the perf artifact.

    No speedup gate per op -- narrow rows legitimately favour the scalar
    loops -- but each vector kernel must stay bit-identical to its
    per-column counterpart, and at frontier width (256) the vector side
    must not regress past the scalar loop.
    """
    from repro.solver import kernels
    from repro.solver.interval import Interval

    width = 256
    rng = np.random.default_rng(7)
    lo = np.abs(rng.normal(1.0, 0.7, width)) + 1e-3
    hi = lo + np.abs(rng.normal(0.5, 0.3, width))

    def per_column(method, *args):
        def run():
            out_lo = np.empty(width)
            out_hi = np.empty(width)
            for j in range(width):
                iv = method(Interval(lo[j], hi[j]), *args)
                out_lo[j] = iv.lo
                out_hi[j] = iv.hi
            return out_lo, out_hi
        return run

    cases = {
        "pow_int3": (lambda: kernels.fwd_pow_int(lo, hi, 3),
                     per_column(Interval.pow_int, 3)),
        "pow_real": (lambda: kernels.fwd_pow_real(lo, hi, 1.5),
                     per_column(Interval.pow_real, 1.5)),
        "exp": (lambda: kernels.FWD_FUNC["exp"](lo, hi),
                per_column(Interval.exp)),
        "log": (lambda: kernels.FWD_FUNC["log"](lo, hi),
                per_column(Interval.log)),
    }

    def best_us(fn, repeats=5, iters=20):
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            for _ in range(iters):
                fn()
            best = min(best, (time.perf_counter() - t0) / iters)
        return best * 1e6

    values = {}
    for name, (vector_fn, scalar_fn) in cases.items():
        v_lo, v_hi = vector_fn()
        s_lo, s_hi = scalar_fn()
        assert np.array_equal(v_lo, s_lo) and np.array_equal(v_hi, s_hi), name
        t_vector = best_us(vector_fn)
        t_scalar = best_us(scalar_fn)
        values[f"{name}_vector_us"] = t_vector
        values[f"{name}_scalar_us"] = t_scalar
        print(f"\n{name}: vector {t_vector:.1f} us, per-column {t_scalar:.1f} us "
              f"({t_scalar / t_vector:.1f}x) at width {width}")
        assert t_vector < t_scalar, (
            f"{name} vector kernel slower than the per-column loop at width {width}"
        )

    # backward pass at op granularity: a Pow/Func-heavy tape end to end,
    # vector (vector_min=0) vs forced per-column (vector_min > width)
    from repro.solver.tape import clear_tape_cache, tape_for

    clear_tape_cache()
    problem = encode(get_functional("PBE"), EC1)
    tape = tape_for(problem.negation.atoms[0].residual)
    boxes = _split_domain(problem.domain, width)
    lo_mat, hi_mat = tape.load_batch(boxes)
    tape.forward_batch(lo_mat, hi_mat, 0)
    root = tape.root

    def backward(vector_min):
        def run():
            blo, bhi = lo_mat.copy(), hi_mat.copy()
            np.copyto(bhi[root], 1e-5, where=bhi[root] > 1e-5)
            tape.backward_batch(blo, bhi, vector_min)
        return run

    values["backward_vector_us"] = best_us(backward(0), iters=5)
    values["backward_scalar_us"] = best_us(backward(width + 1), iters=5)
    print(f"backward pass: vector {values['backward_vector_us']:.1f} us, "
          f"per-column {values['backward_scalar_us']:.1f} us at width {width}")
    record_bench("kernel_ops", width=width, **values)


def test_tape_fusion_and_multitape_timings():
    """Publish fused-vs-unfused forward timings and the cross-atom
    MultiTape's win over per-tape classification; fusion must never lose
    (it only removes instructions).

    The conjunction is a PBE EC1 residual next to its rs-derivative --
    the gradient-condition shape where atoms share the whole F_c
    subgraph, which is what the MultiTape's cross-atom interning is for.
    """
    from repro.solver.tape import (
        MultiTape, clear_tape_cache, set_tape_fusion, tape_for,
    )

    problem = encode(get_functional("PBE"), EC1)
    residual = problem.negation.atoms[0].residual
    exprs = [residual, derivative(residual, RS)]
    boxes = _split_domain(problem.domain, 256)

    def build_tapes(fused):
        clear_tape_cache()
        set_tape_fusion(fused)
        try:
            return [tape_for(e) for e in exprs]
        finally:
            set_tape_fusion(True)

    def forward_us(tapes, repeats=5, iters=10):
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            for _ in range(iters):
                for tape in tapes:
                    lo_mat, hi_mat = tape.load_batch(boxes)
                    tape.forward_batch(lo_mat, hi_mat, 0)
            best = min(best, (time.perf_counter() - t0) / iters)
        return best * 1e6

    fused = build_tapes(fused=True)
    unfused = build_tapes(fused=False)
    multi = MultiTape.from_tapes(fused)

    def multi_forward(m=multi):
        lo_mat, hi_mat = m.load_batch(boxes)
        m.forward_batch(lo_mat, hi_mat, 0)

    def multi_us(repeats=5, iters=10):
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            for _ in range(iters):
                multi_forward()
            best = min(best, (time.perf_counter() - t0) / iters)
        return best * 1e6

    # alternate passes: the three variants see the same load transients
    t_fused = t_unfused = t_multi = float("inf")
    for _ in range(3):
        t_fused = min(t_fused, forward_us(fused))
        t_unfused = min(t_unfused, forward_us(unfused))
        t_multi = min(t_multi, multi_us())

    print(f"\nPBE EC1 residual+derivative forward x{len(fused)} atoms at "
          f"width 256: unfused {t_unfused:.0f} us, fused {t_fused:.0f} us, "
          f"multitape {t_multi:.0f} us")
    record_bench(
        "tape_fusion",
        unfused_us=t_unfused,
        fused_us=t_fused,
        multitape_us=t_multi,
        atoms=len(fused),
        multitape_instrs=len(multi._fwd),
        pertape_instrs=sum(len(t._fwd) for t in fused),
    )
    # fusion strictly removes instructions; allow measurement jitter only
    assert t_fused <= t_unfused * 1.10
    # the shared forward must beat running each atom tape separately
    assert t_multi <= t_fused * 1.05


def test_disabled_tracer_overhead_on_solver_calls():
    """Observability gate: with tracing off, the campaign's per-call
    tracer pattern (ambient ``current_tracer()`` lookup + ``enabled``
    check + no-op span) must cost <= 2% on top of bare ICP solve calls.

    This is the exact shape the traced hot paths use -- the solver inner
    loop itself carries no tracing code, so this bounds the *total*
    disabled-tracing tax a campaign pays per cell/unit.  Whole passes
    alternate between the two loops so load transients land on both
    sides of the ratio.
    """
    from repro.obs.trace import current_tracer

    problem = encode(get_functional("PBE"), EC1)
    box = Box.from_bounds({"rs": (1.0, 3.0), "s": (0.0, 2.0)})
    budget = Budget(max_steps=60)
    solver = ICPSolver(delta=1e-5, precision=1e-3, backend="tape")
    solver.solve(problem.negation, box, budget)  # warm caches

    def bare(iters):
        t0 = time.perf_counter()
        for _ in range(iters):
            solver.solve(problem.negation, box, budget)
        return time.perf_counter() - t0

    def gated(iters):
        t0 = time.perf_counter()
        for _ in range(iters):
            tracer = current_tracer()
            if tracer.enabled:  # off: the one branch the hot path pays
                span = tracer.begin("solve", "solve")
            solver.solve(problem.negation, box, budget)
            if tracer.enabled:
                tracer.finish(span)
        return time.perf_counter() - t0

    iters = 20
    t_bare = t_gated = float("inf")
    for _ in range(5):
        t_bare = min(t_bare, bare(iters))
        t_gated = min(t_gated, gated(iters))

    overhead = t_gated / t_bare
    print(f"\ndisabled tracing: bare {t_bare / iters * 1e3:.2f} ms/solve, "
          f"gated {t_gated / iters * 1e3:.2f} ms/solve, "
          f"overhead {overhead:.4f}x")
    record_bench(
        "tracing_off_overhead",
        bare_ms=t_bare / iters * 1e3,
        gated_ms=t_gated / iters * 1e3,
        overhead_ratio=overhead,
    )
    assert overhead <= 1.02, (
        f"disabled tracing costs {(overhead - 1) * 100:.2f}% (> 2% budget)"
    )


def test_scan_contraction_cost(benchmark):
    """SCAN formulas are the most expensive to contract (paper Sec. VI-A)."""
    problem = encode(get_functional("SCAN"), EC1)
    contractor = HC4Contractor(problem.negation, delta=1e-5)
    box = Box.from_bounds({"rs": (1.0, 3.0), "s": (0.0, 2.0), "alpha": (0.0, 2.0)})
    benchmark(contractor.contract, box)


def test_kernel_grid_throughput(benchmark):
    """Vectorised F_c evaluation on a 400x400 mesh."""
    f = get_functional("PBE")
    kernel = f.fc_kernel()
    rs, s = np.meshgrid(
        np.linspace(1e-4, 5, 400), np.linspace(0, 5, 400), indexing="ij"
    )

    out = benchmark(kernel, rs, s)
    assert out.shape == (400, 400)


def test_symbolic_differentiation_cost(benchmark):
    """d2 F_c / d rs2 for SCAN -- the heaviest encoder step (EC3)."""
    f = get_functional("SCAN")
    fc = f.fc()

    def second_derivative():
        return derivative(derivative(fc, RS), RS)

    expr = benchmark.pedantic(second_derivative, rounds=1, iterations=1)
    assert expr.dag_size() > 100


def test_encoding_cost_by_functional(benchmark):
    """Encoding all seven conditions for every functional (cached path
    excluded by re-deriving)."""
    from repro.conditions import PAPER_CONDITIONS

    def encode_all():
        sizes = {}
        for f in paper_functionals():
            for c in PAPER_CONDITIONS:
                if c.applies_to(f):
                    sizes[(f.name, c.cid)] = encode(f, c).complexity()
        return sizes

    sizes = benchmark.pedantic(encode_all, rounds=1, iterations=1)
    assert len(sizes) == 31
    scan_max = max(v for (n, _), v in sizes.items() if n == "SCAN")
    others_max = max(v for (n, _), v in sizes.items() if n != "SCAN")
    print(f"\nlargest SCAN formula: {scan_max} ops; largest other: {others_max} ops")
    assert scan_max > others_max
