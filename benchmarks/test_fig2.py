"""E5/E6 -- Figure 2: LYP region maps under PB (top row) and XCVerifier
(bottom row) for Ec non-positivity, the Ec scaling inequality, and the Tc
upper bound.
"""

from __future__ import annotations

import pytest

from repro.conditions import EC1, EC2, EC6
from repro.functionals import get_functional
from repro.pb.checker import PBChecker
from repro.verifier import ascii_map, rasterize, verify_pair
from repro.verifier.render import OUTCOME_CODES
from repro.verifier.regions import Outcome

from _settings import BENCH_CONFIG, BENCH_SPEC

LYP = get_functional("LYP")
CEX = OUTCOME_CODES[Outcome.COUNTEREXAMPLE]
VERIFIED = OUTCOME_CODES[Outcome.VERIFIED]


def test_fig2_pb_row(benchmark):
    """Figure 2 (a-c): PB grid maps for LYP -- all three hatched."""
    checker = PBChecker(spec=BENCH_SPEC)

    def run():
        return {c.cid: checker.check(LYP, c) for c in (EC1, EC2, EC6)}

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    # (a) EC1: violations at s above ~1.7 for every rs
    b1 = results["EC1"].violation_bounds()
    assert 1.3 < b1["s"][0] < 2.1
    assert b1["rs"][1] == pytest.approx(5.0, abs=0.1)

    # (b) EC2: violations at small rs, large s (paper: rs<2.5, s>1.48)
    b2 = results["EC2"].violation_bounds()
    assert b2["rs"][1] < 3.0
    assert 1.2 < b2["s"][0] < 1.9

    # (c) EC6: small corner at large rs, large s (paper: rs>4.84, s>2.42)
    b6 = results["EC6"].violation_bounds()
    assert b6["rs"][0] > 4.0
    assert b6["s"][0] > 2.0
    assert results["EC6"].violation_fraction < 0.05

    for cid, res in results.items():
        print(f"\nFig2 PB {cid}: {res.summary()} bounds={res.violation_bounds()}")


@pytest.mark.parametrize("condition", [EC1, EC2, EC6], ids=["EC1", "EC2", "EC6"])
def test_fig2_xcverifier_row(benchmark, condition):
    """Figure 2 (d-f): XCVerifier maps for LYP -- cex regions isolated."""

    def run():
        return verify_pair(LYP, condition, BENCH_CONFIG)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(ascii_map(report, resolution=32))

    assert report.classification() == "CEX"
    raster = rasterize(report, resolution=16)

    if condition is EC1:
        # (d): violations fill the top, verified at the bottom
        assert (raster[13:, :] == CEX).mean() > 0.8
        assert (raster[:3, :] == VERIFIED).mean() > 0.8
    if condition is EC2:
        # (e): violations in the upper-left (small rs, large s)
        assert (raster[12:, :6] == CEX).mean() > 0.5
        assert (raster[:4, :] == CEX).mean() < 0.1
    if condition is EC6:
        # (f): small counterexample region in the upper-right corner
        bbox = report.counterexample_bbox()
        assert bbox["rs"].hi > 4.2
        assert bbox["s"].hi > 2.4
