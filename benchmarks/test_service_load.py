"""Load generator for the hardened service: tail latency + backpressure.

Two gates, both through the authed ``/v1`` path:

* **Duplicate-heavy load** -- thousands of concurrent submissions whose
  cells collapse onto four distinct content keys.  Gated: p99 submit
  latency (client-measured AND the server's own histogram), zero cells
  double-computed, zero cells lost, and the histogram invariant (bucket
  counts sum to the request count) holding at full load.
* **Backpressure convergence** -- a flood into a tiny high-water mark:
  submissions must be shed with 503 + Retry-After, ``submit_with_retry``
  must ride it out, and once the dust settles every distinct cell is
  durable exactly once.

Results land in ``BENCH_service.json`` (``BENCH_SERVICE_JSON`` env var)
next to the microbenchmarks.  ``REPRO_LOAD_SUBMISSIONS`` scales the
duplicate-heavy run (default 2000; CI's load-smoke uses a smaller one).
"""

from __future__ import annotations

import os
import threading
import time

from test_service_micro import record_bench

CONFIG = {"per_call_budget": 100, "global_step_budget": 800}
TOKEN = "bench-l0adgen"

#: the duplicate-heavy mix: 4 single-cell verify specs + one table1
#: slice -- every cell in every spec maps to one of the SAME four
#: content keys, so correctness is "exactly 4 computes, ever"
PAIRS = [("LYP", "EC1"), ("LYP", "EC6"), ("Wigner", "EC1"), ("Wigner", "EC6")]
VERIFY_SPECS = [
    {"kind": "verify", "functional": fname, "condition": cid,
     "config": CONFIG}
    for fname, cid in PAIRS
]
TABLE1_SPEC = {
    "kind": "table1", "functionals": ["LYP", "Wigner"],
    "conditions": ["EC1", "EC6"], "config": CONFIG,
}
MIX = [(spec, 1) for spec in VERIFY_SPECS] + [(TABLE1_SPEC, 4)]


def percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, int(q * len(ordered)) - 1))
    return ordered[index]


def wait_all_jobs_done(client, timeout: float = 120.0) -> dict:
    """Poll /v1/metrics until no job is active; returns the final scrape."""
    deadline = time.monotonic() + timeout
    while True:
        metrics = client.metrics()
        if metrics["jobs"]["active"] == 0:
            return metrics
        assert time.monotonic() < deadline, (
            f"jobs still active after {timeout}s: {metrics['jobs']}"
        )
        time.sleep(0.05)


def test_duplicate_heavy_load_p99(tmp_path):
    """>= 2000 concurrent duplicate-heavy submissions through the authed
    /v1 path: gated p99, zero double-computes, zero lost cells."""
    from repro.service.client import ServiceClient
    from repro.service.server import ThreadedService

    total = int(os.environ.get("REPRO_LOAD_SUBMISSIONS", "2000"))
    threads_n = min(32, max(4, total // 50))
    p99_gate = float(os.environ.get("REPRO_LOAD_P99_GATE", "2.0"))

    with ThreadedService(
        tmp_path / "load.jsonl", max_workers=0,
        tokens={TOKEN: "loadgen"},
    ) as svc:
        warm_client = ServiceClient(svc.url, timeout=600, token=TOKEN)
        warm = warm_client.run(TABLE1_SPEC)
        assert warm["state"] == "done"
        assert warm["sources"]["computed"] == len(PAIRS)

        shares = [total // threads_n] * threads_n
        shares[0] += total - sum(shares)
        latencies: list[list[float]] = [[] for _ in range(threads_n)]
        cells_sent = [0] * threads_n
        errors: list = []

        def loadgen(worker: int, count: int) -> None:
            try:
                with ServiceClient(svc.url, timeout=600, token=TOKEN) as client:
                    for index in range(count):
                        spec, cells = MIX[(worker + index) % len(MIX)]
                        t0 = time.perf_counter()
                        snapshot = client.submit(spec)
                        latencies[worker].append(time.perf_counter() - t0)
                        cells_sent[worker] += cells
                        assert snapshot["state"] in (
                            "queued", "running", "done"
                        ), snapshot
            except BaseException as exc:  # surfaced to the main thread
                errors.append((worker, exc))

        workers = [
            threading.Thread(target=loadgen, args=(index, share))
            for index, share in enumerate(shares)
        ]
        t0 = time.perf_counter()
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=600)
        wall = time.perf_counter() - t0
        assert not any(w.is_alive() for w in workers), "load generator hung"
        assert not errors, f"submissions failed: {errors[:3]}"

        metrics = wait_all_jobs_done(warm_client)

    flat = [sample for bucket in latencies for sample in bucket]
    assert len(flat) == total
    client_p50 = percentile(flat, 0.50)
    client_p99 = percentile(flat, 0.99)

    # -- zero double-computes, zero lost cells ----------------------------
    cells = metrics["cells"]
    expected_cells = sum(cells_sent) + len(PAIRS)  # + the warm-up run
    assert cells["computed"] == len(PAIRS), (
        f"duplicate submissions recomputed cells: {cells}"
    )
    assert (
        cells["computed"] + cells["cache"] + cells["coalesced"]
        == expected_cells
    ), f"cells went missing: {cells} vs {expected_cells} submitted"
    assert metrics["store"]["keys"] == len(PAIRS)
    assert metrics["jobs"]["submitted"] == total + 1

    # -- the histogram invariant holds at full load -----------------------
    by_kind = metrics["latency"]["submit_seconds"]
    histogram_count = 0
    server_p99 = 0.0
    for kind, histogram in by_kind.items():
        assert sum(histogram["buckets"].values()) == histogram["count"], kind
        histogram_count += histogram["count"]
        server_p99 = max(server_p99, histogram["p99"])
    assert histogram_count == total + 1

    throughput = total / wall if wall > 0 else float("inf")
    print(
        f"\nservice load: {total} duplicate-heavy submissions over "
        f"{threads_n} clients in {wall:.2f}s ({throughput:.0f}/s), "
        f"client p50 {client_p50*1e3:.1f} ms / p99 {client_p99*1e3:.1f} ms, "
        f"server p99 {server_p99*1e3:.1f} ms"
    )
    record_bench(
        "service_load",
        submissions=total,
        clients=threads_n,
        wall_s=round(wall, 3),
        throughput_per_s=round(throughput, 1),
        client_p50_ms=round(client_p50 * 1e3, 3),
        client_p99_ms=round(client_p99 * 1e3, 3),
        server_p99_ms=round(server_p99 * 1e3, 3),
        computed=cells["computed"],
        cache=cells["cache"],
        coalesced=cells["coalesced"],
        p99_gate_s=p99_gate,
    )
    assert client_p99 <= p99_gate, (
        f"client p99 {client_p99:.3f}s over the {p99_gate}s gate"
    )
    assert server_p99 <= p99_gate, (
        f"server-side p99 {server_p99:.3f}s over the {p99_gate}s gate"
    )


def test_backpressure_503_retry_converges(tmp_path, monkeypatch):
    """Flood a tiny high-water mark: 503s fire, retries converge, and
    every distinct cell is computed exactly once and durable."""
    from repro.service.client import ServiceClient
    from repro.service.scheduler import VerificationScheduler
    from repro.service.server import ThreadedService

    def slow_stub(self, cell):
        time.sleep(0.1)
        payload = {"stub": list(cell.address)}
        self._store.put_payload(cell.content_key, payload)
        return payload

    monkeypatch.setattr(VerificationScheduler, "_compute_cell", slow_stub)

    functionals = ["LYP", "Wigner", "PZ81", "PW91", "AM05", "PBESOL"]
    specs = [
        {"kind": "verify", "functional": fname, "condition": cid,
         "config": CONFIG}
        for fname in functionals
        for cid in ("EC1", "EC6")
    ]
    threads_n, per_thread = 16, 15
    retries: list[int] = [0] * threads_n
    errors: list = []

    with ThreadedService(
        tmp_path / "bp.jsonl", max_workers=0, high_water=4,
    ) as svc:
        def loadgen(worker: int) -> None:
            def counting_sleep(seconds: float) -> None:
                retries[worker] += 1
                time.sleep(min(seconds, 0.5))

            try:
                with ServiceClient(svc.url, timeout=600) as client:
                    for index in range(per_thread):
                        spec = specs[(worker + index) % len(specs)]
                        client.submit_with_retry(
                            spec, max_attempts=50, max_backoff=0.5,
                            sleep=counting_sleep,
                        )
            except BaseException as exc:
                errors.append((worker, exc))

        workers = [
            threading.Thread(target=loadgen, args=(index,))
            for index in range(threads_n)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=600)
        assert not any(w.is_alive() for w in workers), "load generator hung"
        assert not errors, (
            f"submissions failed to converge: {errors[:3]}"
        )

        metrics = wait_all_jobs_done(ServiceClient(svc.url))

    shed = metrics["admission"]["shed"]
    assert shed >= 1, "the high-water mark never shed a submission"
    # convergence with ZERO loss: every distinct cell computed exactly
    # once (no duplicate ever recomputed), all of them durable
    assert metrics["cells"]["computed"] == len(specs)
    assert metrics["store"]["keys"] == len(specs)
    assert metrics["jobs"]["submitted"] == threads_n * per_thread
    assert metrics["requests"]["by_status"].get("503", 0) == shed

    print(
        f"\nservice backpressure: {threads_n * per_thread} submissions "
        f"against high_water=4: {shed} shed with 503, "
        f"{sum(retries)} retries, all {len(specs)} cells durable"
    )
    record_bench(
        "service_backpressure",
        submissions=threads_n * per_thread,
        shed_503=shed,
        retries=sum(retries),
        distinct_cells=len(specs),
        converged=True,
    )
