"""E13 -- extended Table I: all fourteen registered DFAs.

The paper's Section VI-B goal is scaling XCVerifier to every LibXC
functional.  This bench runs the Table I harness over the full registry
(the paper's five plus the nine extensions) at the bench budgets and
prints the extended matrix -- a preview of what the paper's CI vision
would output.

Expected shape: the extra empirical correlation (BLYP = B88 + LYP)
inherits LYP's CEX row; revPBE inherits PBE's EC7 counterexample; the
extra LDAs behave like VWN RPA (all OK); the regularised SCANs stay
budget-hard like SCAN.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import run_table_one
from repro.functionals import all_functionals
from repro.verifier.verifier import VerifierConfig

#: lighter than BENCH_CONFIG: 14 functionals x ~5 conditions is ~70 pairs,
#: so the per-pair budget is scaled down to keep the whole extended sweep
#: in the minutes range (the paper-accuracy run is E1, on the five DFAs)
EXTENDED_CONFIG = VerifierConfig(
    split_threshold=1.25, per_call_budget=200, global_step_budget=3000
)


@pytest.fixture(scope="module")
def extended_table():
    return run_table_one(EXTENDED_CONFIG, functionals=all_functionals())


def test_extended_table_regenerate(benchmark, extended_table):
    table = benchmark.pedantic(lambda: extended_table, rounds=1, iterations=1)
    print("\n" + table.render())


def test_extension_rows_shape(extended_table):
    cells = extended_table.as_dict()
    # empirical correlation: BLYP inherits LYP's EC1 counterexample
    assert cells["EC1"]["BLYP"] == "CEX"
    assert cells["EC1"]["LYP"] == "CEX"
    # revPBE shares PBE's correlation: same EC7 counterexample verdict
    assert cells["EC7"]["revPBE"] == cells["EC7"]["PBE"] == "CEX"
    # the LDA extensions all satisfy EC1
    for name in ("PZ81", "VWN5", "Wigner"):
        assert cells["EC1"][name] in ("OK", "OK*"), name
    # PBEsol keeps EC1; PW91 carries a genuine high-density violation
    # sliver (rs < 3e-4) that the verifier may or may not pin at bench
    # budgets -- any verdict except a clean full-domain OK is credible
    assert cells["EC1"]["PBEsol"] in ("OK", "OK*")
    assert cells["EC1"]["PW91"] in ("OK*", "CEX", "?")


def test_lieb_oxford_column_widens(extended_table):
    # with B88/PW91/PBEsol/revPBE registered, the LO conditions now apply
    # to nine functionals instead of three
    applicable = [
        f for f in all_functionals() if f.has_exchange and f.has_correlation
    ]
    assert len(applicable) == 9
    cells = extended_table.as_dict()
    assert cells["EC5"]["LYP"] == "-"
    assert cells["EC5"]["BLYP"] != "-"
