"""Adaptive (cost-model-driven) scheduling benchmarks.

Two halves, mirroring the work-stealing gate in ``test_solver_micro``:

* **Bit-identity, any CPU count** -- adaptive ordering is a pure
  permutation of chunk submission, so every report, Table I render and
  Table III cell must be byte-identical to the static and sequential
  paths.  These assertions run unconditionally.
* **Makespan, >= 4 CPUs** -- on a skewed campaign (one pair dominating
  the runtime, submitted *last*), dispatching longest-predicted-first
  with per-pair split knobs must cut the pool makespan by >= 1.3x.
  The timing gate is inactive below 4 CPUs (it still runs and records
  its timings with a 2-worker pool there; only the ratio assertion is
  conditional, so the tier-1 skip count never grows).

The measured numbers publish into ``BENCH_solver.json`` under the
``adaptive_makespan`` section when ``BENCH_SOLVER_JSON`` names a file.
"""

from __future__ import annotations

import json
import os
import platform
import time

import numpy as np

from repro.analysis.tables import (
    run_table_one,
    table_one_from_reports,
    table_three_from_cells,
)
from repro.conditions import get_condition
from repro.functionals import get_functional
from repro.numerics.campaign import run_numerics_campaign
from repro.verifier.campaign import run_campaign
from repro.verifier.costmodel import CostModel, SchedulingPolicy
from repro.verifier.verifier import VerifierConfig


def record_bench(section: str, **values) -> None:
    """Merge one benchmark section into the JSON perf artifact (if enabled)."""
    path = os.environ.get("BENCH_SOLVER_JSON")
    if not path:
        return
    doc: dict = {}
    if os.path.exists(path):
        with open(path) as fh:
            doc = json.load(fh)
    doc.setdefault("meta", {}).update(
        {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "commit": os.environ.get("GITHUB_SHA", ""),
        }
    )
    doc.setdefault(section, {}).update(values)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


#: skewed slice: LYP/EC1 dominates the runtime and is submitted LAST,
#: the worst case for static FIFO dispatch on a pool
SKEWED_PAIRS = [
    ("VWN RPA", "EC1"),
    ("Wigner", "EC1"),
    ("VWN RPA", "EC2"),
    ("Wigner", "EC2"),
    ("LYP", "EC1"),
]

TINY = VerifierConfig(
    split_threshold=0.7, per_call_budget=100, global_step_budget=800
)
SKEWED_CONFIG = VerifierConfig(
    split_threshold=0.04, per_call_budget=150, global_step_budget=24_000
)


def _warm_policy(pairs, config, store_path):
    """Learn a cost model from a sequential run persisted to the store."""
    sequential = run_campaign(pairs, config, max_workers=0, store=store_path)
    return SchedulingPolicy(model=CostModel.from_store(store_path)), sequential


def _table_one_text(reports, functionals, conditions):
    return table_one_from_reports(
        reports,
        tuple(get_functional(name) for name in functionals),
        tuple(get_condition(name) for name in conditions),
    ).render()


def test_adaptive_table_one_byte_identical_any_cpu(tmp_path):
    """Table I rendered from sequential, static-pool and adaptive-pool
    campaigns over the same slice must be byte-identical."""
    functionals = ("LYP", "Wigner", "VWN RPA")
    conditions = ("EC1", "EC2")
    store = tmp_path / "history.jsonl"

    policy, sequential = _warm_policy(SKEWED_PAIRS, TINY, store)
    static = run_campaign(SKEWED_PAIRS, TINY, max_workers=2)
    adaptive = run_campaign(SKEWED_PAIRS, TINY, max_workers=2, policy=policy)

    assert set(static.reports) == set(adaptive.reports) == set(sequential.reports)
    seq_text = _table_one_text(sequential.reports, functionals, conditions)
    static_text = _table_one_text(static.reports, functionals, conditions)
    adaptive_text = _table_one_text(adaptive.reports, functionals, conditions)
    assert adaptive_text == static_text == seq_text

    # the full-table path accepts the policy too and stays byte-identical
    baseline = run_table_one(
        TINY,
        tuple(get_functional(name) for name in functionals),
        tuple(get_condition(name) for name in conditions),
    )
    adapted = run_table_one(
        TINY,
        tuple(get_functional(name) for name in functionals),
        tuple(get_condition(name) for name in conditions),
        policy=policy,
    )
    assert adapted.render() == baseline.render()


def test_adaptive_table_three_byte_identical_any_cpu():
    """Numerics payloads carry no timings by design: the adaptive
    permutation must leave every Table III cell (and the rendered table)
    byte-identical to the sequential path."""
    kwargs = dict(
        functionals=["LYP", "Wigner"], checks=("continuity", "hazards")
    )
    sequential = run_numerics_campaign(max_workers=0, **kwargs)
    policy = SchedulingPolicy(model=CostModel())
    adaptive = run_numerics_campaign(max_workers=2, policy=policy, **kwargs)

    assert set(sequential.cells) == set(adaptive.cells)
    seq_doc = json.dumps(
        {"/".join(k): v for k, v in sequential.cells.items()}, sort_keys=True
    )
    ada_doc = json.dumps(
        {"/".join(k): v for k, v in adaptive.cells.items()}, sort_keys=True
    )
    assert ada_doc == seq_doc
    assert (
        table_three_from_cells(adaptive.cells).render()
        == table_three_from_cells(sequential.cells).render()
    )


def test_adaptive_makespan_speedup(tmp_path):
    """Gate: cost-model scheduling >= 1.3x faster than static dispatch on
    the skewed slice at 4 workers.  Table I byte-identity between the two
    timed modes is asserted before the (CPU-gated) timing assertion."""
    from concurrent.futures import ProcessPoolExecutor

    workers = 4
    store = tmp_path / "warmup.jsonl"
    policy, _ = _warm_policy(SKEWED_PAIRS, SKEWED_CONFIG, store)
    functionals = ("LYP", "Wigner", "VWN RPA")
    conditions = ("EC1", "EC2")

    # below the CPU gate a 2-worker pool still exercises the identity half
    pool_workers = workers if (os.cpu_count() or 1) >= workers else 2

    def best_of(pool, policy=None, repeats=2):
        best, result = float("inf"), None
        for _ in range(repeats):
            t0 = time.perf_counter()
            result = run_campaign(
                SKEWED_PAIRS, SKEWED_CONFIG, executor=pool, policy=policy
            )
            best = min(best, time.perf_counter() - t0)
        return best, result

    with ProcessPoolExecutor(max_workers=pool_workers) as pool:
        # warm the pool: fork + import cost must not skew either mode
        for _ in pool.map(abs, range(pool_workers)):
            pass
        t_static, r_static = best_of(pool, repeats=1 if pool_workers < workers else 2)
        t_adaptive, r_adaptive = best_of(
            pool, policy=policy, repeats=1 if pool_workers < workers else 2
        )

    # identity half -- unconditional, CPU-count independent
    static_text = _table_one_text(r_static.reports, functionals, conditions)
    adaptive_text = _table_one_text(r_adaptive.reports, functionals, conditions)
    assert adaptive_text == static_text

    ratio = t_static / t_adaptive if t_adaptive > 0 else float("inf")
    print(
        f"\nadaptive makespan: static {t_static*1e3:.0f} ms, "
        f"adaptive {t_adaptive*1e3:.0f} ms, speedup {ratio:.2f}x "
        f"({pool_workers} workers)"
    )
    record_bench(
        "adaptive_makespan",
        static_ms=t_static * 1e3,
        adaptive_ms=t_adaptive * 1e3,
        speedup=ratio,
        workers=pool_workers,
    )
    if (os.cpu_count() or 1) < workers:
        # the identity half above ran in full; the timing gate only
        # applies at the worker count it was calibrated for
        print(f"adaptive makespan gate inactive below {workers} CPUs")
        return
    assert ratio >= 1.3, (
        f"adaptive scheduling only {ratio:.2f}x faster than static dispatch"
    )
